"""Setuptools shim enabling legacy editable installs in offline environments
(the sandbox lacks the ``wheel`` package PEP 660 editable builds require)."""

from setuptools import setup

setup()
