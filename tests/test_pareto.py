"""Pareto machinery: the non-dominated sort, the archive, pareto-ga, and
the adaptive-dispatch satellite.

The sort is property-tested (duplicates, single points, all-dominated
chains, random clouds); the GA is pinned on registration, front
reproducibility for fixed seeds, mutual non-domination, and JSON
round-tripping through :class:`~repro.search.session.SessionResult`.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.objectives import (
    ParetoArchive,
    crowding_distance,
    domination_matrix,
    non_dominated_mask,
    non_dominated_sort,
)
from repro.search import SearchSession, SearchSpec, get_method

# ----------------------------------------------------------------------
# Non-dominated sort properties
# ----------------------------------------------------------------------
finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                   width=32)


@st.composite
def value_matrices(draw):
    n = draw(st.integers(min_value=0, max_value=24))
    k = draw(st.integers(min_value=1, max_value=4))
    rows = draw(st.lists(
        st.lists(finite, min_size=k, max_size=k),
        min_size=n, max_size=n))
    return np.array(rows, dtype=np.float64).reshape(n, k)


def _dominates(a, b) -> bool:
    return bool((a <= b).all() and (a < b).any())


@settings(max_examples=120, deadline=None)
@given(values=value_matrices())
def test_front_zero_is_exactly_the_non_dominated_set(values):
    ranks = non_dominated_sort(values)
    mask = non_dominated_mask(values)
    assert len(ranks) == len(mask) == len(values)
    np.testing.assert_array_equal(ranks == 0, mask)


@settings(max_examples=120, deadline=None)
@given(values=value_matrices())
def test_ranks_are_consistent_with_pairwise_domination(values):
    """No point is dominated by a point of the same or a later rank, and
    every point of rank r > 0 is dominated by some rank r-1 point."""
    ranks = non_dominated_sort(values)
    n = len(values)
    for i in range(n):
        for j in range(n):
            if _dominates(values[i], values[j]):
                assert ranks[i] < ranks[j]
    for j in range(n):
        if ranks[j] > 0:
            assert any(_dominates(values[i], values[j])
                       and ranks[i] == ranks[j] - 1
                       for i in range(n))


@settings(max_examples=80, deadline=None)
@given(values=value_matrices(), data=st.data())
def test_duplicates_share_a_rank(values, data):
    """Exact duplicates never dominate each other: duplicating any row
    keeps both copies on one rank."""
    if len(values) == 0:
        return
    row = data.draw(st.integers(min_value=0, max_value=len(values) - 1))
    doubled = np.vstack([values, values[row]])
    ranks = non_dominated_sort(doubled)
    assert ranks[row] == ranks[-1]


def test_single_point_and_empty():
    assert non_dominated_sort(np.empty((0, 3))).tolist() == []
    assert non_dominated_mask(np.empty((0, 2))).tolist() == []
    single = np.array([[3.0, 4.0]])
    assert non_dominated_sort(single).tolist() == [0]
    assert non_dominated_mask(single).tolist() == [True]
    assert crowding_distance(single).tolist() == [np.inf]


def test_all_dominated_chain_ranks_sequentially():
    """A strictly worsening chain peels one front per point."""
    chain = np.array([[i, i] for i in range(6)], dtype=np.float64)
    assert non_dominated_sort(chain).tolist() == list(range(6))
    assert non_dominated_mask(chain).tolist() == [True] + [False] * 5


def test_domination_matrix_matches_definition():
    values = np.array([[1.0, 2.0], [2.0, 1.0], [2.0, 2.0], [1.0, 2.0]])
    matrix = domination_matrix(values)
    for i in range(len(values)):
        for j in range(len(values)):
            assert matrix[i, j] == _dominates(values[i], values[j])


def test_infeasible_inf_rows_fall_behind_feasible_points():
    values = np.array([[1.0, 2.0], [np.inf, np.inf], [np.inf, np.inf]])
    ranks = non_dominated_sort(values)
    assert ranks[0] == 0
    assert ranks[1] == ranks[2] == 1


def test_crowding_boundary_points_are_infinite():
    values = np.array([[0.0, 3.0], [1.0, 1.0], [2.0, 0.5], [3.0, 0.0]])
    crowding = crowding_distance(values)
    assert crowding[0] == np.inf and crowding[-1] == np.inf
    assert np.all(crowding[1:-1] > 0) and np.all(np.isfinite(crowding[1:-1]))


class TestParetoArchive:
    def test_keeps_only_non_dominated_and_dedupes(self):
        archive = ParetoArchive()
        assert archive.add([2.0, 2.0], "a")
        assert not archive.add([3.0, 3.0], "worse")
        assert archive.add([1.0, 3.0], "b")
        assert not archive.add([2.0, 2.0], "duplicate")
        assert archive.add([0.0, 0.0], "dominates-all")
        front = archive.front()
        assert [payload for _, payload in front] == ["dominates-all"]

    def test_max_size_prunes_most_crowded(self):
        archive = ParetoArchive(max_size=3)
        points = [[0.0, 4.0], [1.0, 2.9], [2.0, 2.0], [3.0, 1.5],
                  [4.0, 0.0]]
        for index, point in enumerate(points):
            archive.add(point, index)
        assert len(archive) == 3
        payloads = {payload for _, payload in archive.front()}
        # The extremes always survive crowding pruning.
        assert {0, 4} <= payloads


# ----------------------------------------------------------------------
# Constraint-aware dominance (satellite): infeasible points rank by
# violation magnitude instead of collapsing into one all-inf bucket.
# ----------------------------------------------------------------------
class TestConstrainedDominance:
    def test_feasible_rows_are_bit_identical(self):
        from repro.objectives import constrained_rows

        values = np.array([[1.0, 2.0], [3.0, 0.5], [2.0, 2.0]])
        rows = constrained_rows(values, [True] * 3, [0.0] * 3)
        np.testing.assert_array_equal(rows, values)

    def test_input_matrix_is_not_mutated(self):
        from repro.objectives import constrained_rows

        values = np.array([[1.0, 2.0], [3.0, 0.5]])
        kept = values.copy()
        constrained_rows(values, [True, False], [0.0, 1.0])
        np.testing.assert_array_equal(values, kept)

    def test_every_feasible_point_dominates_every_infeasible(self):
        from repro.objectives import INFEASIBLE_BASE, constrained_rows

        values = np.array([[9e5, 9e5], [1.0, 1.0]])
        rows = constrained_rows(values, [True, False], [0.0, 0.0])
        ranks = non_dominated_sort(rows)
        # The feasible point leads despite far worse raw objectives.
        assert ranks[0] == 0 and ranks[1] == 1
        assert (rows[1] >= INFEASIBLE_BASE).all()

    def test_infeasible_points_rank_by_violation(self):
        from repro.objectives import constrained_rows

        values = np.array([[5.0, 5.0], [1.0, 1.0], [2.0, 2.0]])
        rows = constrained_rows(values, [True, False, False],
                                [0.0, 0.5, 0.1])
        ranks = non_dominated_sort(rows)
        assert ranks[0] == 0
        assert ranks[2] < ranks[1]  # smaller violation ranks ahead

    def test_equal_violations_share_a_front(self):
        from repro.objectives import constrained_rows

        values = np.array([[1.0, 4.0], [4.0, 1.0]])
        rows = constrained_rows(values, [False, False], [0.3, 0.3])
        ranks = non_dominated_sort(rows)
        assert ranks[0] == ranks[1]

    def test_negative_violation_clamps_to_zero(self):
        from repro.objectives import constrained_rows

        values = np.array([[1.0, 1.0], [1.0, 1.0]])
        rows = constrained_rows(values, [False, False], [-1.0, 0.0])
        np.testing.assert_array_equal(rows[0], rows[1])

    def test_length_mismatch_raises(self):
        from repro.objectives import constrained_rows

        with pytest.raises(ValueError):
            constrained_rows(np.ones((2, 2)), [True], [0.0, 0.0])

    @settings(max_examples=60, deadline=None)
    @given(values=value_matrices(), data=st.data())
    def test_front_zero_parity_with_legacy_inf_encoding(self, values,
                                                        data):
        """Feasible-only fronts are unchanged: front 0 under the
        violation encoding equals front 0 under the old all-inf
        encoding whenever any feasible point exists, and feasible rows
        pass through untouched."""
        from repro.objectives import constrained_rows

        n = len(values)
        if n == 0:
            return
        feasible = np.array(data.draw(st.lists(
            st.booleans(), min_size=n, max_size=n)))
        violation = np.where(feasible, 0.0, data.draw(st.lists(
            st.floats(0.0, 50.0, allow_nan=False),
            min_size=n, max_size=n)))
        rows = constrained_rows(values, feasible, violation)
        np.testing.assert_array_equal(rows[feasible], values[feasible])
        if not feasible.any():
            return
        legacy = values.copy()
        legacy[~feasible] = np.inf
        np.testing.assert_array_equal(
            non_dominated_sort(rows) == 0,
            non_dominated_sort(legacy) == 0)


# ----------------------------------------------------------------------
# The registered pareto-ga method
# ----------------------------------------------------------------------
def _pareto_spec(**overrides) -> SearchSpec:
    base = dict(model="mobilenet_v2", method="pareto-ga",
                objective="multi:latency,energy", budget=150, seed=0,
                layer_slice=4)
    base.update(overrides)
    return SearchSpec(**base)


class TestParetoGA:
    def test_registered_and_discoverable(self):
        info = get_method("pareto-ga")
        assert info.kind == "genome"
        assert info.batchable
        assert "pareto-ga" in repro.method_names()

    def test_front_is_reproducible_and_non_dominated(self):
        first = SearchSession(_pareto_spec()).run()
        second = SearchSession(_pareto_spec()).run()
        front = first.pareto_front
        assert front, "expected a non-empty front"
        assert front == second.pareto_front
        assert first.best_cost == second.best_cost
        values = np.array([[p["objectives"]["latency"],
                            p["objectives"]["energy"]] for p in front])
        assert non_dominated_mask(values).all()
        # Swept along the primary axis, deterministically.
        assert values[:, 0].tolist() == sorted(values[:, 0].tolist())

    def test_front_serializes_with_the_session(self, tmp_path):
        outcome = SearchSession(_pareto_spec()).run()
        path = tmp_path / "pareto.json"
        outcome.save(path)
        loaded = repro.SessionResult.load(path)
        assert loaded.pareto_front == outcome.pareto_front
        assert loaded.result.extra["objective_names"] \
            == ["latency", "energy"]

    def test_front_points_reevaluate_to_their_claimed_objectives(self):
        outcome = SearchSession(_pareto_spec()).run()
        task = outcome.spec.task()
        cost_model = repro.CostModel()
        evaluator = task.make_evaluator(cost_model)
        for point in outcome.pareto_front:
            result = evaluator.evaluate_genome(point["genome"])
            assert result.feasible
            assert result.report.latency_cycles \
                == point["objectives"]["latency"]
            assert result.report.energy_nj == point["objectives"]["energy"]

    def test_scalar_objective_degenerates_to_best_point(self):
        outcome = SearchSession(_pareto_spec(objective="latency")).run()
        front = outcome.pareto_front
        assert len(front) == 1
        assert front[0]["objectives"]["latency"] == outcome.best_cost

    def test_three_axis_front(self):
        outcome = SearchSession(_pareto_spec(
            objective="multi:latency,energy,area", budget=120)).run()
        front = outcome.pareto_front
        assert front
        assert set(front[0]["objectives"]) == {"latency", "energy", "area"}

    def test_tiny_budget_still_reports_a_front(self):
        outcome = SearchSession(_pareto_spec(budget=8,
                                             platform="cloud")).run()
        assert outcome.result.evaluations == 8
        assert outcome.pareto_front is not None

    @pytest.mark.parametrize("budget", [37, 120])
    def test_truncated_final_generation_still_enters_the_front(self,
                                                               budget):
        """Every charged evaluation counts: even when the budget cuts a
        generation short, the front must cover those outcomes -- in
        particular it can never be dominated by ``best_cost`` (the best
        feasible primary component ever evaluated)."""
        outcome = SearchSession(_pareto_spec(budget=budget,
                                             platform="cloud")).run()
        front = outcome.pareto_front
        assert front
        assert min(point["objectives"]["latency"] for point in front) \
            == outcome.best_cost

    def test_observers_and_early_stop_work(self):
        from repro.search import EarlyStopping

        stopper = EarlyStopping(patience=20)
        outcome = SearchSession(_pareto_spec(budget=400)).run(
            callbacks=[stopper])
        assert outcome.stopped_early
        assert outcome.result.evaluations < 400


# ----------------------------------------------------------------------
# Adaptive dispatch (satellite): small batches skip the IPC
# ----------------------------------------------------------------------
class TestAdaptiveDispatch:
    def test_below_threshold_runs_inline_without_spawning(self):
        from repro.costmodel.batched import LayerTable
        from repro.parallel import ProcessBackend

        layers = repro.get_model("mobilenet_v2")[:3]
        table = LayerTable.build(layers)
        model = repro.CostModel()
        backend = ProcessBackend(workers=2, min_batch_per_worker=64)
        try:
            model.set_executor(backend)
            small = model.batched.evaluate(
                table, np.zeros(8, dtype=np.int64), 0,
                np.full(8, 16, dtype=np.int64),
                np.full(8, 64, dtype=np.int64))
            assert len(small) == 8
            assert backend.inline_batches == 1
            assert backend.sharded_batches == 0
            assert backend.alive_workers == 0
            big = model.batched.evaluate(
                table, np.zeros(256, dtype=np.int64), 0,
                np.full(256, 16, dtype=np.int64),
                np.full(256, 64, dtype=np.int64))
            assert len(big) == 256
            assert backend.sharded_batches == 1
            assert backend.alive_workers == 2
            # Inline and sharded answers agree with each other.
            assert big.latency_cycles[:8].tolist() \
                == small.latency_cycles.tolist()
        finally:
            backend.shutdown()

    def test_threshold_zero_always_shards(self):
        from repro.costmodel.batched import LayerTable
        from repro.parallel import ThreadBackend

        layers = repro.get_model("mobilenet_v2")[:2]
        table = LayerTable.build(layers)
        model = repro.CostModel()
        backend = ThreadBackend(workers=2, min_batch_per_worker=0)
        model.set_executor(backend)
        report = model.batched.evaluate(
            table, np.zeros(4, dtype=np.int64), 0,
            np.full(4, 8, dtype=np.int64), np.full(4, 32, dtype=np.int64))
        assert len(report) == 4
        assert backend.sharded_batches == 1
        backend.shutdown()

    def test_spec_exposes_and_resolves_threshold(self, monkeypatch):
        spec = SearchSpec(model="mobilenet_v2", dispatch_min_batch=17)
        assert spec.resolved_dispatch_min_batch() == 17
        spec = SearchSpec(model="mobilenet_v2")
        monkeypatch.setenv("REPRO_DISPATCH_MIN", "33")
        assert spec.resolved_dispatch_min_batch() == 33
        monkeypatch.delenv("REPRO_DISPATCH_MIN")
        # Unset, the threshold resolves per transport: each executor
        # gets its calibrated break-even, not one global constant.
        from repro.parallel import TRANSPORT_MIN_BATCH

        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        for executor, want in TRANSPORT_MIN_BATCH.items():
            spec = SearchSpec(model="mobilenet_v2", executor=executor)
            assert spec.resolved_dispatch_min_batch() == want
        with pytest.raises(ValueError, match="dispatch_min_batch"):
            SearchSpec(model="mobilenet_v2", dispatch_min_batch=-1)

    def test_adaptive_session_bit_identical_to_forced_sharding(self):
        """The whole point: dispatch is a latency knob, never a results
        knob.  One spec, three thresholds, one answer."""
        results = []
        for threshold in (0, 10_000, None):
            spec = SearchSpec(model="mobilenet_v2", method="ga", budget=60,
                              seed=3, layer_slice=4, executor="process",
                              workers=2, dispatch_min_batch=threshold)
            outcome = SearchSession(spec).run()
            results.append((outcome.best_cost,
                            outcome.result.history,
                            outcome.result.best_genome))
        assert results[0] == results[1] == results[2]

    def test_calibration_sweep_matches_scalar_loop(self, cost_model,
                                                   tiny_model):
        """platform_constraint now calibrates through the batched kernel;
        the budget must be bit-identical to the scalar per-layer loop."""
        from repro.core.constraints import measure_max_consumption
        from repro.env.spaces import ActionSpace

        space = ActionSpace.build("dla")
        decoded = space.decode(space.max_action())
        pes, l1_bytes = decoded[0], decoded[1]
        for kind in ("area", "power"):
            want = 0.0
            for layer in tiny_model:
                report = cost_model.evaluate_layer(layer, "dla", pes,
                                                   l1_bytes)
                want += report.constraint(kind)
            got = measure_max_consumption(tiny_model, "dla", kind,
                                          cost_model, space)
            assert got == want
