"""Behavioural tests for every RL search algorithm.

Each agent must run, respect the epoch budget, report memory, and -- on a
small loose-constraint task -- find a feasible solution.  REINFORCE
additionally gets learning-progress tests (it is the paper's agent).
"""

import numpy as np
import pytest

from repro.core.constraints import platform_constraint
from repro.env import ActionSpace, HWAssignmentEnv
from repro.rl import RL_ALGORITHMS, Reinforce
from repro.rl.offpolicy import continuous_to_levels
from repro.rl.policies import MLPPolicy, RecurrentPolicy, build_policy


def make_env(cost_model, layers, platform="cloud", objective="latency"):
    space = ActionSpace.build("dla")
    constraint = platform_constraint(layers, "dla", "area", platform,
                                     cost_model, space)
    return HWAssignmentEnv(layers, space, objective, constraint, cost_model,
                           dataflow="dla")


class TestPolicies:
    def test_recurrent_policy_shapes(self):
        policy = RecurrentPolicy(10, (12, 12),
                                 rng=np.random.default_rng(0))
        from repro.nn import Tensor
        dists, state = policy(Tensor(np.zeros((1, 10))),
                              policy.initial_state())
        assert len(dists) == 2
        assert dists[0].probs.shape == (1, 12)
        assert policy.is_recurrent

    def test_mlp_policy_shapes(self):
        policy = MLPPolicy(10, (12, 12, 3), rng=np.random.default_rng(0))
        from repro.nn import Tensor
        dists, state = policy(Tensor(np.zeros((1, 10))), None)
        assert len(dists) == 3
        assert state is None
        assert not policy.is_recurrent

    def test_build_policy_factory(self):
        assert build_policy("rnn", 10, (12, 12)).is_recurrent
        assert not build_policy("mlp", 10, (12, 12)).is_recurrent
        with pytest.raises(ValueError):
            build_policy("transformer", 10, (12, 12))


class TestReinforce:
    def test_finds_feasible_and_improves(self, cost_model, mobilenet_slice):
        env = make_env(cost_model, mobilenet_slice, platform="iot")
        agent = Reinforce(seed=0)
        result = agent.search(env, 40)
        assert result.feasible
        assert len(result.history) == 40
        # Convergence trace is the best-so-far: non-increasing.
        finite = [v for v in result.history if v != float("inf")]
        assert all(b <= a for a, b in zip(finite, finite[1:]))

    def test_learning_beats_random_policy(self, cost_model,
                                          mobilenet_slice):
        env = make_env(cost_model, mobilenet_slice, platform="iot")
        agent = Reinforce(seed=0)
        result = agent.search(env, 80)
        # Compare against the same number of uniformly random episodes.
        rng = np.random.default_rng(0)
        random_env = make_env(cost_model, mobilenet_slice, platform="iot")
        best_random = None
        for _ in range(80):
            random_env.reset()
            done = False
            while not done:
                action = (rng.integers(12), rng.integers(12))
                _, _, done, info = random_env.step(action)
            episode = info["episode"]
            if episode.feasible and (best_random is None
                                     or episode.cost < best_random):
                best_random = episode.cost
        assert result.best_cost is not None
        assert best_random is None or result.best_cost <= best_random * 1.5

    def test_seed_reproducibility(self, cost_model, mobilenet_slice):
        results = []
        for _ in range(2):
            env = make_env(cost_model, mobilenet_slice)
            results.append(Reinforce(seed=7).search(env, 15).history)
        assert results[0] == results[1]

    def test_mlp_policy_variant(self, cost_model, mobilenet_slice):
        env = make_env(cost_model, mobilenet_slice)
        agent = Reinforce(policy="mlp", seed=0)
        result = agent.search(env, 20)
        assert result.feasible

    def test_rejects_zero_epochs(self, cost_model, mobilenet_slice):
        env = make_env(cost_model, mobilenet_slice)
        with pytest.raises(ValueError):
            Reinforce(seed=0).search(env, 0)

    def test_incremental_search_continues(self, cost_model,
                                          mobilenet_slice):
        env = make_env(cost_model, mobilenet_slice)
        agent = Reinforce(seed=0)
        first = agent.search(env, 10)
        second = agent.search(env, 10)
        # Policy persists across calls; best never regresses.
        assert second.best_cost <= first.best_cost

    def test_memory_reported(self, cost_model, mobilenet_slice):
        env = make_env(cost_model, mobilenet_slice)
        result = Reinforce(seed=0).search(env, 5)
        assert result.memory_bytes > 0


@pytest.mark.parametrize("name", sorted(RL_ALGORITHMS))
class TestAllAgents:
    def test_runs_and_finds_feasible(self, name, cost_model,
                                     mobilenet_slice):
        env = make_env(cost_model, mobilenet_slice, platform="cloud")
        agent = RL_ALGORITHMS[name](seed=0)
        result = agent.search(env, 25)
        assert result.algorithm == name
        assert len(result.history) == 25
        assert result.feasible, f"{name} found no feasible point"
        assert result.memory_bytes > 0
        assert result.evaluations > 0
        assert result.wall_time_s >= 0

    def test_epoch_budget_respected(self, name, cost_model,
                                    mobilenet_slice):
        env = make_env(cost_model, mobilenet_slice)
        agent = RL_ALGORITHMS[name](seed=0)
        result = agent.search(env, 8)
        assert result.episodes == 8


class TestOffPolicyMachinery:
    def test_continuous_to_levels_endpoints(self):
        assert continuous_to_levels(np.array([-1.0, 1.0]), (12, 12)) \
            == [0, 11]

    def test_continuous_to_levels_midpoint(self):
        assert continuous_to_levels(np.array([0.0]), (13,)) == [6]

    def test_continuous_to_levels_clips(self):
        assert continuous_to_levels(np.array([-5.0, 5.0]), (12, 12)) \
            == [0, 11]

    @pytest.mark.parametrize("name", ["ddpg", "td3", "sac"])
    def test_updates_actually_run(self, name, cost_model, mobilenet_slice):
        env = make_env(cost_model, mobilenet_slice)
        agent = RL_ALGORITHMS[name](seed=0, warmup_steps=16, batch_size=8)
        result = agent.search(env, 10)
        assert agent._total_steps > 16
        assert result.feasible
