"""The search server: lifecycle, cache semantics, single-flight dedup,
cancellation, shared-pool concurrency, and fault recovery.

The acceptance contract under test (see ROADMAP item 1):

* identical spec submitted twice -> exactly one execution, second
  response served from the store bit-identically;
* N *concurrent* identical submissions -> one execution, N callers see
  the same job;
* ``force`` re-executes and overwrites;
* cancellation maps onto the observer protocol's graceful early stop
  (best-so-far survives, truncated results are never cached);
* concurrent sessions over one shared warmed pool are bit-identical to
  serial runs;
* a worker killed mid-job recovers through the existing supervision and
  the job still completes and caches.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.parallel import FaultPlan
from repro.rl.common import SearchResult
from repro.search import register_method, unregister_method
from repro.search.session import SearchSession
from repro.search.spec import SearchSpec
from repro.service.server import JobState, SearchServer
from repro.service.store import ResultStore


def _spec(**overrides) -> SearchSpec:
    base = dict(model="mnasnet", method="random", budget=40, seed=0,
                layer_slice=3)
    base.update(overrides)
    return SearchSpec(**base)


def _server(tmp_path, **kwargs) -> SearchServer:
    kwargs.setdefault("store", ResultStore(root=tmp_path / "cache"))
    kwargs.setdefault("executor", "serial")
    return SearchServer(**kwargs)


# ----------------------------------------------------------------------
# A registered method that blocks until released -- the deterministic
# seam for single-flight and cancellation tests.
# ----------------------------------------------------------------------
class _Gate:
    """Module-level rendezvous for the ``gated`` test method."""

    entered = threading.Event()
    release = threading.Event()


class _GatedMethod:
    def __init__(self, seed=None):
        self.seed = seed

    def search(self, evaluator, budget) -> SearchResult:
        _Gate.entered.set()
        _Gate.release.wait(timeout=30)
        # One real evaluation so observers and counters fire.
        evaluator.evaluate_genome([0] * evaluator.genome_length)
        result = SearchResult(algorithm="gated")
        result.evaluations = 1
        return result


@pytest.fixture
def gated_method():
    _Gate.entered = threading.Event()
    _Gate.release = threading.Event()
    register_method("gated", _GatedMethod, kind="genome",
                    description="test-only blocking method")
    try:
        yield "gated"
    finally:
        _Gate.release.set()
        unregister_method("gated")


# ----------------------------------------------------------------------
# Lifecycle and cache semantics
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_submit_runs_to_done_with_event_stream(self, tmp_path):
        with _server(tmp_path) as server:
            job = server.submit(_spec())
            job.wait(timeout=60)
            assert job.state == JobState.DONE
            assert not job.cached
            assert job.result is not None
            events = list(job.events(timeout=5))
            kinds = [event["type"] for event in events]
            assert kinds[0] == "state" and kinds[-1] == "state"
            assert events[-1]["state"] == JobState.DONE
            summary = job.to_dict()
            assert summary["state"] == "DONE"
            assert summary["spec"] == _spec().to_dict()

    def test_failed_job_carries_the_error(self, tmp_path):
        with _server(tmp_path) as server:
            spec = _spec()
            object.__setattr__(spec, "model", "nonexistent")
            job = server.submit(spec)
            job.wait(timeout=60)
            assert job.state == JobState.FAILED
            assert "nonexistent" in job.error

    def test_unknown_job_id_raises(self, tmp_path):
        with _server(tmp_path) as server:
            with pytest.raises(KeyError):
                server.job("j999")

    def test_closed_server_rejects_submissions(self, tmp_path):
        server = _server(tmp_path)
        server.close()
        with pytest.raises(RuntimeError):
            server.submit(_spec())


class TestCacheSemantics:
    def test_second_identical_submission_is_a_bit_identical_hit(
            self, tmp_path):
        with _server(tmp_path) as server:
            first = server.submit(_spec()).wait(timeout=60)
            second = server.submit(_spec()).wait(timeout=60)
            assert server.executions == 1
            assert not first.cached and second.cached
            assert second.result.to_dict() == first.result.to_dict()

    def test_changed_spec_misses(self, tmp_path):
        with _server(tmp_path) as server:
            server.submit(_spec()).wait(timeout=60)
            server.submit(_spec(seed=1)).wait(timeout=60)
            assert server.executions == 2

    def test_execution_knobs_share_one_entry(self, tmp_path):
        with _server(tmp_path) as server:
            server.submit(_spec()).wait(timeout=60)
            hit = server.submit(_spec(executor="thread", workers=2))
            hit.wait(timeout=60)
            assert hit.cached
            assert server.executions == 1

    def test_force_reexecutes_and_overwrites(self, tmp_path):
        with _server(tmp_path) as server:
            first = server.submit(_spec()).wait(timeout=60)
            forced = server.submit(_spec(), force=True).wait(timeout=60)
            assert server.executions == 2
            assert not forced.cached
            # The overwritten entry now serves the forced run's document,
            # whose search payload matches the first run's (same spec,
            # deterministic method) up to wall clock.
            hit = server.submit(_spec()).wait(timeout=60)
            assert hit.cached
            assert hit.result.to_dict() == forced.result.to_dict()
            payload = dict(hit.result.to_dict()["result"])
            reference = dict(first.result.to_dict()["result"])
            payload.pop("wall_time_s"), reference.pop("wall_time_s")
            assert payload == reference

    def test_cache_survives_server_restart(self, tmp_path):
        with _server(tmp_path) as server:
            server.submit(_spec()).wait(timeout=60)
        with _server(tmp_path) as reborn:
            hit = reborn.submit(_spec()).wait(timeout=60)
            assert hit.cached
            assert reborn.executions == 0

    def test_cacheless_server_always_runs(self, tmp_path):
        with SearchServer(store=None, executor="serial") as server:
            server.submit(_spec()).wait(timeout=60)
            server.submit(_spec()).wait(timeout=60)
            assert server.executions == 2


# ----------------------------------------------------------------------
# Single-flight dedup
# ----------------------------------------------------------------------
class TestSingleFlight:
    def test_concurrent_identical_submissions_share_one_job(
            self, tmp_path, gated_method):
        with _server(tmp_path, max_concurrent=2) as server:
            spec = _spec(method=gated_method, budget=1)
            leader = server.submit(spec)
            assert _Gate.entered.wait(timeout=10)
            followers = [server.submit(spec) for _ in range(8)]
            assert all(job is leader for job in followers)
            _Gate.release.set()
            leader.wait(timeout=60)
            assert server.executions == 1
            assert leader.state == JobState.DONE

    def test_many_threads_one_execution(self, tmp_path, gated_method):
        with _server(tmp_path, max_concurrent=2) as server:
            spec = _spec(method=gated_method, budget=1)
            jobs = []
            lock = threading.Lock()

            def submit():
                job = server.submit(spec)
                with lock:
                    jobs.append(job)
                job.wait(timeout=60)

            threads = [threading.Thread(target=submit)
                       for _ in range(8)]
            for thread in threads:
                thread.start()
            assert _Gate.entered.wait(timeout=10)
            _Gate.release.set()
            for thread in threads:
                thread.join(timeout=60)
            assert server.executions == 1
            assert len({id(job) for job in jobs}) == 1
            assert jobs[0].state == JobState.DONE

    def test_done_flight_leaves_the_inflight_table(self, tmp_path):
        with _server(tmp_path) as server:
            server.submit(_spec()).wait(timeout=60)
            deadline = time.monotonic() + 5
            while server.stats()["inflight"] and \
                    time.monotonic() < deadline:
                time.sleep(0.01)
            assert server.stats()["inflight"] == 0


# ----------------------------------------------------------------------
# Cancellation
# ----------------------------------------------------------------------
class TestCancellation:
    def test_pending_job_cancels_outright(self, tmp_path, gated_method):
        with _server(tmp_path, max_concurrent=1) as server:
            blocker = server.submit(_spec(method=gated_method, budget=1))
            assert _Gate.entered.wait(timeout=10)
            pending = server.submit(_spec(seed=7))
            assert pending.state == JobState.PENDING
            assert server.cancel(pending.id)
            assert pending.state == JobState.CANCELLED
            _Gate.release.set()
            blocker.wait(timeout=60)
            # The cancelled job never ran.
            assert server.executions == 1

    def test_running_job_stops_gracefully_and_is_not_cached(
            self, tmp_path):
        with _server(tmp_path, max_concurrent=1,
                     progress_every=1) as server:
            job = server.submit(_spec(budget=100_000))
            deadline = time.monotonic() + 30
            while job.state == JobState.PENDING \
                    and time.monotonic() < deadline:
                time.sleep(0.005)
            assert server.cancel(job.id)
            job.wait(timeout=60)
            assert job.state == JobState.CANCELLED
            # Truncated runs are not the spec's fixed point: no entry.
            assert server.store.get(_spec(budget=100_000)) is None
            assert job.result is not None
            assert job.result.stopped_early

    def test_terminal_job_cancel_is_a_noop(self, tmp_path):
        with _server(tmp_path) as server:
            job = server.submit(_spec()).wait(timeout=60)
            assert not server.cancel(job.id)
            assert job.state == JobState.DONE


# ----------------------------------------------------------------------
# Shutdown: close() must stop RUNNING jobs and honor its deadline
# ----------------------------------------------------------------------
class TestClose:
    def test_close_stops_running_job(self, tmp_path):
        """Regression: close(wait=True) used to request stop only on
        PENDING jobs, so a big RUNNING job made shutdown wait for the
        whole search to finish."""
        server = _server(tmp_path, max_concurrent=1, progress_every=1)
        job = server.submit(_spec(budget=10_000_000))
        deadline = time.monotonic() + 30
        while job.state == JobState.PENDING \
                and time.monotonic() < deadline:
            time.sleep(0.005)
        assert job.state == JobState.RUNNING
        started = time.monotonic()
        assert server.close(wait=True, timeout=30)
        # Graceful early stop, not a 10M-step run-out.
        assert time.monotonic() - started < 30
        assert job.state == JobState.CANCELLED
        assert server.store.get(_spec(budget=10_000_000)) is None

    def test_close_timeout_bounds_a_wedged_job(self, tmp_path,
                                               gated_method):
        """A job stuck outside the observer protocol can't be stopped
        gracefully; close(timeout=...) must still return (False) instead
        of hanging, and a later close finishes the join."""
        server = _server(tmp_path, max_concurrent=1)
        job = server.submit(_spec(method=gated_method, budget=1))
        assert _Gate.entered.wait(timeout=10)
        started = time.monotonic()
        assert not server.close(wait=True, timeout=0.3)
        assert time.monotonic() - started < 10
        # Unwedge: the method returns, the worker thread sees the cancel
        # request and the queue sentinel, and a re-close joins cleanly.
        _Gate.release.set()
        assert server.close(wait=True, timeout=30)
        job.wait(timeout=10)
        assert job.state == JobState.CANCELLED

    def test_close_without_wait_returns_immediately(self, tmp_path,
                                                    gated_method):
        server = _server(tmp_path, max_concurrent=1)
        server.submit(_spec(method=gated_method, budget=1))
        assert _Gate.entered.wait(timeout=10)
        started = time.monotonic()
        server.close(wait=False)
        assert time.monotonic() - started < 5
        _Gate.release.set()
        assert server.close(wait=True, timeout=30)


# ----------------------------------------------------------------------
# Shared pool: concurrency parity and fault recovery
# ----------------------------------------------------------------------
class TestSharedPool:
    def test_concurrent_sessions_bit_identical_to_serial(self, tmp_path):
        specs = [_spec(method="ga", budget=60, seed=seed)
                 for seed in (0, 1)]
        serial = [SearchSession(spec).run() for spec in specs]
        with _server(tmp_path, executor="process", workers=2,
                     max_concurrent=2) as server:
            jobs = [server.submit(spec) for spec in specs]
            for job in jobs:
                job.wait(timeout=120)
            assert {job.state for job in jobs} == {JobState.DONE}
            assert server.coordinator is not None
            for job, reference in zip(jobs, serial):
                assert job.result.best_cost == reference.best_cost
                assert job.result.history == reference.history
                assert (job.result.result.best_genome
                        == reference.result.best_genome)
                # The run's provenance names the shared pool.
                execution = job.result.provenance["execution"]
                assert execution["executor"] in ("process", "serial",
                                                 "thread")

    def test_pool_stays_warm_across_jobs(self, tmp_path):
        with _server(tmp_path, executor="process", workers=2,
                     max_concurrent=1) as server:
            server.submit(_spec(method="ga", budget=40)).wait(timeout=120)
            workers_after_first = server.coordinator.alive_workers
            job = server.submit(_spec(method="ga", budget=40, seed=5))
            job.wait(timeout=120)
            assert workers_after_first == 2
            assert server.coordinator.alive_workers == 2
        assert server.coordinator.alive_workers == 0

    def test_worker_kill_recovers_and_job_caches(self, tmp_path):
        plan = FaultPlan(kill_worker=[(0, 0)])
        with _server(tmp_path, executor="process", workers=2,
                     fault_plan=plan) as server:
            spec = _spec(method="ga", budget=60)
            job = server.submit(spec).wait(timeout=120)
            assert job.state == JobState.DONE
            execution = job.result.provenance["execution"]
            assert execution["respawns"] >= 1 \
                or execution["degraded_to"] is not None
            # Recovery never changes results, so the cached entry equals
            # the serial reference.
            reference = SearchSession(spec).run()
            assert job.result.best_cost == reference.best_cost
            hit = server.submit(spec).wait(timeout=60)
            assert hit.cached
