"""The content-addressed result store: keys, round trips, corruption.

The cache contract under test: equal identities collide (that is the
point -- name/dict/instance objective forms, executor knobs, resolved
``envs`` all normalize away), different identities never do, a stored
result reads back bit-identical (put -> get -> put is a fixed point of
the stored document), corrupt entries degrade to misses, and ``force``
bypasses the lookup so a re-run can overwrite in place.
"""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.objectives import ComponentObjective
from repro.search.session import SearchSession, SessionResult
from repro.search.spec import SearchSpec
from repro.service.store import (
    EXECUTION_ONLY_FIELDS,
    ResultStore,
    canonical_identity,
    result_key,
)


def _spec(**overrides) -> SearchSpec:
    base = dict(model="mnasnet", method="random", budget=40, seed=0,
                layer_slice=3)
    base.update(overrides)
    return SearchSpec(**base)


@pytest.fixture(scope="module")
def canned_result() -> SessionResult:
    """One real (tiny) run to feed the store tests."""
    return SearchSession(_spec()).run()


# ----------------------------------------------------------------------
# Keys and identity normalization
# ----------------------------------------------------------------------
class TestResultKey:
    def test_key_is_deterministic_and_hex(self):
        key = result_key(_spec())
        assert key == result_key(_spec())
        assert len(key) == 64
        int(key, 16)  # hex

    def test_execution_knobs_do_not_change_the_key(self):
        base = result_key(_spec())
        assert result_key(_spec(executor="process", workers=4)) == base
        assert result_key(_spec(executor="thread",
                                dispatch_min_batch=0)) == base
        assert result_key(_spec(task_timeout_s=30.0)) == base
        for field in EXECUTION_ONLY_FIELDS:
            assert field not in canonical_identity(_spec())

    def test_objective_forms_dedup_to_one_key(self):
        by_name = result_key(_spec(objective="latency"))
        instance = ComponentObjective("latency")
        assert result_key(_spec(objective=instance)) == by_name
        spec_form = canonical_identity(_spec(objective="latency"))
        assert result_key(
            _spec(objective=spec_form["objective"])) == by_name

    def test_envs_none_and_one_collide(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENVS", raising=False)
        assert result_key(_spec(envs=None)) == result_key(_spec(envs=1))

    def test_envs_resolved_from_environment(self, monkeypatch):
        base = result_key(_spec())
        monkeypatch.setenv("REPRO_ENVS", "4")
        assert result_key(_spec()) != base
        assert result_key(_spec()) == result_key(_spec(envs=4))

    def test_scenario_fields_change_the_key(self):
        base = result_key(_spec())
        assert result_key(_spec(seed=1)) != base
        assert result_key(_spec(budget=41)) != base
        assert result_key(_spec(method="sa")) != base
        assert result_key(_spec(model="mobilenet_v2")) != base
        assert result_key(_spec(objective="energy")) != base


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------
class TestRoundTrip:
    def test_get_returns_bit_identical_document(self, tmp_path,
                                                canned_result):
        store = ResultStore(root=tmp_path / "cache")
        store.put(_spec(), canned_result)
        hit = store.get(_spec())
        assert hit is not None
        assert hit.to_dict() == canned_result.to_dict()

    def test_miss_on_unknown_spec(self, tmp_path):
        store = ResultStore(root=tmp_path / "cache")
        assert store.get(_spec(seed=99)) is None
        assert store.misses == 1

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), budget=st.integers(1, 10_000),
           objective=st.sampled_from(["latency", "energy", "edp"]))
    def test_put_get_put_is_a_fixed_point(self, tmp_path_factory, seed,
                                          budget, objective,
                                          canned_result):
        """Storing what get() returned must not change the entry."""
        root = tmp_path_factory.mktemp("store")
        store = ResultStore(root=root)
        spec = _spec(seed=seed, budget=budget, objective=objective)
        store.put(spec, canned_result)
        first = store.get(spec)
        with open(store.path_for(spec)) as handle:
            disk_first = handle.read()
        store.put(spec, first)
        second = store.get(spec)
        assert second.to_dict() == first.to_dict()
        with open(store.path_for(spec)) as handle:
            disk_second = handle.read()
        first_doc = json.loads(disk_first)
        second_doc = json.loads(disk_second)
        assert first_doc["result"] == second_doc["result"]
        assert first_doc["identity"] == second_doc["identity"]

    def test_disk_then_memory_hit_counters(self, tmp_path, canned_result):
        store = ResultStore(root=tmp_path / "cache")
        store.put(_spec(), canned_result)
        fresh = ResultStore(root=tmp_path / "cache")
        assert fresh.get(_spec()) is not None   # disk
        assert fresh.get(_spec()) is not None   # memory
        assert fresh.hits == 2 and fresh.memory_hits == 1

    def test_memory_front_can_be_disabled(self, tmp_path, canned_result):
        store = ResultStore(root=tmp_path / "cache", max_memory_entries=0)
        store.put(_spec(), canned_result)
        assert store.get(_spec()) is not None
        assert store.memory_hits == 0

    def test_lru_evicts_oldest_memory_entry(self, tmp_path, canned_result):
        store = ResultStore(root=tmp_path / "cache", max_memory_entries=2)
        for seed in range(3):
            store.put(_spec(seed=seed), canned_result)
        assert store.stats()["memory_entries"] == 2
        assert store.get(_spec(seed=0)) is not None  # still on disk
        assert store.memory_hits == 0


# ----------------------------------------------------------------------
# Corruption and force
# ----------------------------------------------------------------------
class TestCorruptionAndForce:
    def test_corrupt_entry_is_a_miss_and_dropped(self, tmp_path,
                                                 canned_result):
        store = ResultStore(root=tmp_path / "cache")
        store.put(_spec(), canned_result)
        path = store.path_for(_spec())
        with open(path, "w") as handle:
            handle.write('{"format": "repro-result-store/v1", "trunc')
        fresh = ResultStore(root=tmp_path / "cache")
        assert fresh.get(_spec()) is None
        assert fresh.corrupt_dropped == 1
        assert not os.path.exists(path)

    def test_partial_envelope_is_a_miss(self, tmp_path, canned_result):
        store = ResultStore(root=tmp_path / "cache")
        store.put(_spec(), canned_result)
        path = store.path_for(_spec())
        with open(path, "w") as handle:
            json.dump({"format": "repro-result-store/v1",
                       "key": result_key(_spec())}, handle)  # no result
        fresh = ResultStore(root=tmp_path / "cache")
        assert fresh.get(_spec()) is None
        assert fresh.corrupt_dropped == 1

    def test_wrong_format_tag_is_a_miss(self, tmp_path, canned_result):
        store = ResultStore(root=tmp_path / "cache")
        store.put(_spec(), canned_result)
        path = store.path_for(_spec())
        with open(path) as handle:
            envelope = json.load(handle)
        envelope["format"] = "repro-result-store/v0"
        with open(path, "w") as handle:
            json.dump(envelope, handle)
        fresh = ResultStore(root=tmp_path / "cache")
        assert fresh.get(_spec()) is None

    def test_force_bypasses_and_put_overwrites(self, tmp_path,
                                               canned_result):
        store = ResultStore(root=tmp_path / "cache")
        store.put(_spec(), canned_result)
        assert store.get(_spec(), force=True) is None
        assert store.bypasses == 1
        replacement = SessionResult.from_dict(canned_result.to_dict())
        replacement.provenance["forced"] = True
        store.put(_spec(), replacement)
        assert store.get(_spec()).provenance["forced"] is True
        assert store.stats()["entries"] == 1

    def test_evict_and_clear(self, tmp_path, canned_result):
        store = ResultStore(root=tmp_path / "cache")
        for seed in range(3):
            store.put(_spec(seed=seed), canned_result)
        assert store.evict(_spec(seed=0))
        assert not store.evict(_spec(seed=0))
        assert store.clear() == 2
        assert store.stats()["entries"] == 0

    def test_cache_dir_env_var(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        assert ResultStore().root == str(tmp_path / "envcache")
