"""Tests for platform constraints (Table II) and the design evaluator."""

import pytest

from repro.core.constraints import (
    PLATFORM_FRACTIONS,
    PlatformConstraint,
    ResourceConstraint,
    measure_max_consumption,
    platform_constraint,
)
from repro.core.evaluator import DesignPointEvaluator
from repro.env.spaces import ActionSpace


class TestPlatformConstraint:
    def test_fractions_match_table2(self):
        assert PLATFORM_FRACTIONS == {
            "unlimited": float("inf"), "cloud": 0.5, "iot": 0.1,
            "iotx": 0.05}

    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            PlatformConstraint(kind="volume", budget=1.0)
        with pytest.raises(ValueError, match="budget"):
            PlatformConstraint(kind="area", budget=0.0)

    def test_consumption_reads_report(self, cost_model, conv_layer):
        report = cost_model.evaluate_layer(conv_layer, "dla", 16, 39)
        area_cons = PlatformConstraint(kind="area", budget=1e9)
        power_cons = PlatformConstraint(kind="power", budget=1e9)
        assert area_cons.consumption(report) == report.area_um2
        assert power_cons.consumption(report) == report.power_mw

    def test_describe(self):
        cons = PlatformConstraint(kind="area", budget=1.0, platform="iot")
        assert "iot" in cons.describe()


class TestDerivation:
    def test_max_consumption_is_uniform_top_pair(self, cost_model,
                                                 tiny_model, space_dla):
        measured = measure_max_consumption(tiny_model, "dla", "area",
                                           cost_model, space_dla)
        expected = sum(
            cost_model.evaluate_layer(l, "dla", 128, 129).area_um2
            for l in tiny_model)
        assert measured == pytest.approx(expected)

    @pytest.mark.parametrize("platform,fraction", [
        ("cloud", 0.5), ("iot", 0.1), ("iotx", 0.05)])
    def test_budget_fractions(self, cost_model, tiny_model, space_dla,
                              platform, fraction):
        c_max = measure_max_consumption(tiny_model, "dla", "area",
                                        cost_model, space_dla)
        constraint = platform_constraint(tiny_model, "dla", "area", platform,
                                         cost_model, space_dla)
        assert constraint.budget == pytest.approx(fraction * c_max)

    def test_unlimited_is_infinite(self, cost_model, tiny_model):
        constraint = platform_constraint(tiny_model, "dla", "area",
                                         "unlimited", cost_model)
        assert constraint.budget == float("inf")

    def test_unknown_platform(self, cost_model, tiny_model):
        with pytest.raises(KeyError, match="unknown platform"):
            platform_constraint(tiny_model, "dla", "area", "laptop",
                                cost_model)

    def test_power_constraints_derive_too(self, cost_model, tiny_model):
        constraint = platform_constraint(tiny_model, "dla", "power", "iot",
                                         cost_model)
        assert constraint.kind == "power"
        assert constraint.budget > 0


class TestResourceConstraint:
    def test_validation(self):
        with pytest.raises(ValueError):
            ResourceConstraint(max_pes=0, max_l1_bytes=100)
        with pytest.raises(ValueError):
            ResourceConstraint(max_pes=10, max_l1_bytes=0)

    def test_fields(self):
        cons = ResourceConstraint(max_pes=256, max_l1_bytes=4096)
        assert cons.kind == "resource"


class TestDesignPointEvaluator:
    @pytest.fixture
    def evaluator(self, cost_model, tiny_model, space_dla):
        constraint = platform_constraint(tiny_model, "dla", "area", "cloud",
                                         cost_model, space_dla)
        return DesignPointEvaluator(tiny_model, "latency", constraint,
                                    cost_model, space_dla, dataflow="dla")

    def test_genome_length(self, evaluator, tiny_model):
        assert evaluator.genome_length == 2 * len(tiny_model)

    def test_decode_genome(self, evaluator):
        genome = [0, 0, 11, 11, 4, 2, 1, 1]
        assignments = evaluator.decode_genome(genome)
        assert assignments[0] == (1, 19)
        assert assignments[1] == (128, 129)
        assert assignments[2] == (12, 39)

    def test_decode_rejects_wrong_length(self, evaluator):
        with pytest.raises(ValueError, match="genome length"):
            evaluator.decode_genome([0, 0])

    def test_feasibility_boundary(self, evaluator):
        # The max pair must violate a 50% budget; the min pair must fit.
        top = evaluator.evaluate_genome([11, 11] * 4)
        bottom = evaluator.evaluate_genome([0, 0] * 4)
        assert not top.feasible
        assert bottom.feasible

    def test_cost_matches_report_objective(self, evaluator):
        outcome = evaluator.evaluate_genome([3, 3] * 4)
        assert outcome.cost == outcome.report.latency_cycles

    def test_counts_evaluations(self, evaluator):
        start = evaluator.evaluations
        evaluator.evaluate_genome([0, 0] * 4)
        evaluator.evaluate_genome([1, 1] * 4)
        assert evaluator.evaluations == start + 2

    def test_uniform_genome(self, evaluator):
        genome = evaluator.uniform_genome(3, 5)
        assert genome == [3, 5] * 4

    def test_ls_deployment_uses_first_gene(self, cost_model, tiny_model,
                                           space_dla):
        constraint = platform_constraint(tiny_model, "dla", "area",
                                         "unlimited", cost_model, space_dla)
        evaluator = DesignPointEvaluator(
            tiny_model, "latency", constraint, cost_model, space_dla,
            dataflow="dla", deployment="ls")
        outcome = evaluator.evaluate_genome([4, 2] * 4)
        expected = cost_model.evaluate_model_ls(tiny_model, 12, 39, "dla")
        assert outcome.cost == pytest.approx(expected.latency_cycles)

    def test_rejects_bad_deployment(self, cost_model, tiny_model, space_dla):
        constraint = PlatformConstraint(kind="area", budget=1e12)
        with pytest.raises(ValueError, match="deployment"):
            DesignPointEvaluator(tiny_model, "latency", constraint,
                                 cost_model, space_dla, dataflow="dla",
                                 deployment="pipeline")

    def test_requires_dataflow_for_non_mix(self, cost_model, tiny_model,
                                           space_dla):
        constraint = PlatformConstraint(kind="area", budget=1e12)
        with pytest.raises(ValueError, match="dataflow"):
            DesignPointEvaluator(tiny_model, "latency", constraint,
                                 cost_model, space_dla)

    def test_mix_genome(self, cost_model, tiny_model, space_mix):
        constraint = PlatformConstraint(kind="area", budget=1e12)
        evaluator = DesignPointEvaluator(tiny_model, "latency", constraint,
                                         cost_model, space_mix)
        genome = [0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 0]
        assert evaluator.genome_length == 12
        outcome = evaluator.evaluate_genome(genome)
        assert outcome.feasible

    def test_resource_constraint_accounting(self, cost_model, tiny_model,
                                            space_dla):
        constraint = ResourceConstraint(max_pes=40, max_l1_bytes=100_000)
        evaluator = DesignPointEvaluator(tiny_model, "latency", constraint,
                                         cost_model, space_dla,
                                         dataflow="dla")
        # 4 layers x 8 PEs = 32 <= 40: feasible.
        assert evaluator.evaluate_genome([3, 0] * 4).feasible
        # 4 layers x 16 PEs = 64 > 40: infeasible.
        assert not evaluator.evaluate_genome([5, 0] * 4).feasible

    def test_resource_constraint_l1_cap(self, cost_model, tiny_model,
                                        space_dla):
        constraint = ResourceConstraint(max_pes=10_000, max_l1_bytes=500)
        evaluator = DesignPointEvaluator(tiny_model, "latency", constraint,
                                         cost_model, space_dla,
                                         dataflow="dla")
        # 4 layers x (1 PE x 129B) = 516 > 500.
        assert not evaluator.evaluate_genome([0, 11] * 4).feasible
        assert evaluator.evaluate_genome([0, 0] * 4).feasible

    def test_utilization_report(self, evaluator):
        outcome = evaluator.evaluate_genome([0, 0] * 4)
        util = outcome.utilization(evaluator.constraint)
        assert 0 < util.fraction < 1
        assert "area" in str(util)
