"""Tests for the two-stage ConfuciuX orchestrator and the MIX search."""

import pytest

from repro import ConfuciuX, JointSearch
from repro.core.constraints import PlatformConstraint, ResourceConstraint
from repro.core.joint import dataflow_assignment_table, style_histogram


class TestConfuciuXPipeline:
    @pytest.fixture(scope="class")
    def result(self, cost_model, mobilenet_slice):
        pipeline = ConfuciuX(mobilenet_slice, objective="latency",
                             dataflow="dla", platform="iot",
                             constraint_kind="area", seed=0,
                             cost_model=cost_model)
        return pipeline._run(global_epochs=60, finetune_generations=25)

    def test_finds_feasible(self, result):
        assert result.best_cost is not None

    def test_stage2_not_worse_than_stage1(self, result):
        assert result.best_cost <= result.global_cost

    def test_stage1_not_worse_than_first_valid(self, result):
        assert result.global_cost <= result.initial_valid_cost

    def test_improvement_fractions_in_range(self, result):
        impr1, impr2 = result.improvement_fractions()
        assert 0.0 <= impr1 <= 1.0
        assert 0.0 <= impr2 <= 1.0

    def test_trace_is_monotone_and_spans_both_stages(self, result):
        trace = result.trace
        expected = len(result.global_result.history) + len(
            result.finetune_result.history)
        assert len(trace) == expected
        finite = [v for v in trace if v != float("inf")]
        assert all(b <= a for a, b in zip(finite, finite[1:]))

    def test_utilization_within_budget(self, result):
        utilization = result.utilization()
        assert utilization is not None
        assert utilization.used <= utilization.budget

    def test_assignments_cover_all_layers(self, result, mobilenet_slice):
        assert len(result.best_assignments) == len(mobilenet_slice)


class TestConfiguration:
    def test_skip_finetune(self, cost_model, mobilenet_slice):
        pipeline = ConfuciuX(mobilenet_slice, seed=0, platform="cloud",
                             cost_model=cost_model)
        result = pipeline._run(global_epochs=15, finetune_generations=0)
        assert result.finetune_result is None
        assert result.best_cost == result.global_cost

    def test_explicit_constraint_object(self, cost_model, mobilenet_slice):
        constraint = PlatformConstraint(kind="area", budget=1e15,
                                        platform="custom")
        pipeline = ConfuciuX(mobilenet_slice, constraint=constraint, seed=0,
                             cost_model=cost_model)
        result = pipeline._run(global_epochs=10, finetune_generations=0)
        assert result.best_cost is not None

    def test_resource_constraint_fpga_mode(self, cost_model,
                                           mobilenet_slice):
        constraint = ResourceConstraint(max_pes=256, max_l1_bytes=16384)
        pipeline = ConfuciuX(mobilenet_slice, constraint=constraint, seed=0,
                             cost_model=cost_model)
        result = pipeline._run(global_epochs=30, finetune_generations=10)
        assert result.best_cost is not None
        total_pes = sum(a[0] for a in result.best_assignments)
        total_l1 = sum(a[0] * a[1] for a in result.best_assignments)
        assert total_pes <= 256
        assert total_l1 <= 16384

    def test_mlp_policy_option(self, cost_model, mobilenet_slice):
        pipeline = ConfuciuX(mobilenet_slice, policy="mlp", seed=0,
                             platform="cloud", cost_model=cost_model)
        result = pipeline._run(global_epochs=15, finetune_generations=0)
        assert result.best_cost is not None

    @pytest.mark.parametrize("levels", [10, 14])
    def test_action_level_sweep(self, cost_model, mobilenet_slice, levels):
        pipeline = ConfuciuX(mobilenet_slice, num_levels=levels, seed=0,
                             platform="cloud", cost_model=cost_model)
        result = pipeline._run(global_epochs=15, finetune_generations=0)
        assert result.best_cost is not None

    @pytest.mark.parametrize("objective", ["energy", "edp"])
    def test_other_objectives(self, cost_model, mobilenet_slice, objective):
        pipeline = ConfuciuX(mobilenet_slice, objective=objective, seed=0,
                             platform="cloud", cost_model=cost_model)
        result = pipeline._run(global_epochs=15, finetune_generations=0)
        assert result.best_cost is not None

    def test_power_constraint(self, cost_model, mobilenet_slice):
        pipeline = ConfuciuX(mobilenet_slice, constraint_kind="power",
                             platform="iot", seed=0, cost_model=cost_model)
        result = pipeline._run(global_epochs=100, finetune_generations=0)
        assert result.best_cost is not None


class TestRunShimRemoval:
    """The deprecated ``ConfuciuX.run`` shim is gone (1.1 warned, 1.3
    removed).  Three guarantees remain: calling it raises *guidance*
    (never a bare AttributeError), the internal driver the session API
    uses stays warning-free, and that driver is bit-identical to the
    session path -- so nothing was lost with the shim."""

    def test_run_raises_guidance_not_attribute_error(self, cost_model,
                                                     mobilenet_slice):
        pipeline = ConfuciuX(mobilenet_slice, seed=0, cost_model=cost_model)
        with pytest.raises(RuntimeError,
                           match=r"repro\.explore.*method='confuciux'"):
            pipeline.run(global_epochs=2, finetune_generations=0)
        # Specifically never an AttributeError: the attribute exists and
        # its error names the replacement.
        try:
            pipeline.run()
        except AttributeError:  # pragma: no cover - the regression
            pytest.fail("ConfuciuX.run must give guidance, not vanish")
        except RuntimeError:
            pass

    def test_internal_run_matches_explore_bit_for_bit(self, cost_model):
        import repro

        epochs, finetune, seed, layers = 10, 4, 21, 4
        pipeline = ConfuciuX(
            repro.get_model("mobilenet_v2")[:layers], seed=seed,
            platform="iot", cost_model=cost_model)
        legacy = pipeline._run(global_epochs=epochs,
                               finetune_generations=finetune)
        modern = repro.explore(model="mobilenet_v2", method="confuciux",
                               budget=epochs, finetune=finetune, seed=seed,
                               platform="iot", layer_slice=layers,
                               cost_model=cost_model)
        assert modern.best_cost == legacy.best_cost
        assert modern.best_assignments == legacy.best_assignments
        assert modern.result.history == legacy.trace
        assert modern.detail.global_cost == legacy.global_cost
        assert modern.detail.initial_valid_cost == legacy.initial_valid_cost

    def test_internal_run_does_not_warn(self, cost_model, mobilenet_slice):
        import warnings

        pipeline = ConfuciuX(mobilenet_slice, seed=0, cost_model=cost_model)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            pipeline._run(global_epochs=2, finetune_generations=0)


class TestJointSearch:
    @pytest.fixture(scope="class")
    def mix_result(self, cost_model, mobilenet_slice):
        search = JointSearch(mobilenet_slice, platform="iot", seed=0,
                             cost_model=cost_model)
        return search.run(global_epochs=60, finetune_generations=0)

    def test_mix_finds_feasible(self, mix_result):
        assert mix_result.best_cost is not None

    def test_assignment_table(self, mix_result, mobilenet_slice):
        rows = dataflow_assignment_table(mix_result, mobilenet_slice)
        assert len(rows) == len(mobilenet_slice)
        assert all(row["style"] in ("dla", "eye", "shi") for row in rows)
        assert all(row["letter"] in "DSE" for row in rows)
        assert rows[0]["layer"] == 1

    def test_style_histogram(self, mix_result, mobilenet_slice):
        rows = dataflow_assignment_table(mix_result, mobilenet_slice)
        histogram = style_histogram(rows)
        assert sum(histogram.values()) == len(mobilenet_slice)

    def test_table_rejects_non_mix_result(self, cost_model,
                                          mobilenet_slice):
        pipeline = ConfuciuX(mobilenet_slice, seed=0, platform="cloud",
                             cost_model=cost_model)
        result = pipeline._run(global_epochs=10, finetune_generations=0)
        with pytest.raises(ValueError, match="MIX"):
            dataflow_assignment_table(result, mobilenet_slice)

    def test_mix_beats_or_matches_worst_fixed_style(self, cost_model,
                                                    mobilenet_slice):
        # Table VI's qualitative claim, with a small-budget tolerance:
        # MIX should not lose to every fixed dataflow.
        fixed_costs = []
        for style in ("dla", "eye", "shi"):
            pipeline = ConfuciuX(mobilenet_slice, dataflow=style,
                                 platform="iot", seed=0,
                                 cost_model=cost_model)
            fixed = pipeline._run(global_epochs=60, finetune_generations=0)
            if fixed.best_cost is not None:
                fixed_costs.append(fixed.best_cost)
        search = JointSearch(mobilenet_slice, platform="iot", seed=0,
                             cost_model=cost_model)
        mix = search.run(global_epochs=60, finetune_generations=0)
        assert mix.best_cost <= max(fixed_costs)
