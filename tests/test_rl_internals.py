"""White-box tests for RL algorithm internals: update math, target
networks, preconditioning, and the search-over-time contracts."""

import numpy as np
import pytest

from repro.core.constraints import PlatformConstraint, platform_constraint
from repro.env import ActionSpace, HWAssignmentEnv
from repro.nn import Tensor
from repro.rl import A2C, ACKTR, DDPG, PPO2, SAC, TD3, Reinforce
from repro.rl.sac import GaussianActor


@pytest.fixture
def loose_env(cost_model, mobilenet_slice, space_dla):
    constraint = platform_constraint(mobilenet_slice, "dla", "area",
                                     "cloud", cost_model, space_dla)
    return HWAssignmentEnv(mobilenet_slice, space_dla, "latency",
                           constraint, cost_model, dataflow="dla")


class TestReinforceUpdate:
    def test_update_moves_parameters(self, loose_env):
        agent = Reinforce(seed=0)
        agent._build(loose_env)
        before = [p.data.copy() for p in agent.policy.parameters()]
        log_probs, entropies, rewards, _ = agent.run_episode(loose_env)
        agent.update(log_probs, entropies, rewards)
        after = agent.policy.parameters()
        assert any(not np.allclose(b, a.data)
                   for b, a in zip(before, after))

    def test_update_increases_logprob_of_high_return_action(self,
                                                            loose_env):
        # Policy-gradient sanity: after updating on an episode whose first
        # action had the highest return, that action's probability at the
        # first state should not fall (statistically, many updates).
        agent = Reinforce(seed=1, lr=0.05, entropy_coef=0.0)
        agent._build(loose_env)
        observation = loose_env.reset()
        from repro.nn.autograd import no_grad

        def first_action_probs():
            with no_grad():
                dists, _ = agent.policy(
                    Tensor(observation.reshape(1, -1)),
                    agent.policy.initial_state())
            return dists[0].probs[0]

        for _ in range(10):
            log_probs, entropies, rewards, _ = agent.run_episode(loose_env)
            agent.update(log_probs, entropies, rewards)
        probs = first_action_probs()
        assert probs.sum() == pytest.approx(1.0)
        # The policy has sharpened away from uniform.
        assert probs.max() > 1.0 / len(probs) * 1.02


class TestActorCriticInternals:
    def test_a2c_critic_trains_toward_returns(self, loose_env):
        agent = A2C(seed=0)
        agent._build(loose_env)
        observations, actions, rewards = agent._collect(loose_env)
        first_loss = agent.update(observations, actions, rewards)
        losses = [agent.update(*agent._collect(loose_env)[0:3])
                  for _ in range(5)]
        assert all(np.isfinite(l) for l in [first_loss, *losses])

    def test_acktr_preconditioner_builds_fisher(self, loose_env):
        agent = ACKTR(seed=0)
        agent._build(loose_env)
        observations, actions, rewards = agent._collect(loose_env)
        agent.update(observations, actions, rewards)
        assert agent._fisher is not None
        assert any(np.any(f > 0) for f in agent._fisher)

    def test_acktr_rejects_bad_decay(self):
        with pytest.raises(ValueError):
            ACKTR(fisher_decay=1.5)

    def test_ppo_clip_validation(self):
        with pytest.raises(ValueError):
            PPO2(clip_ratio=1.5)

    def test_ppo_surrogate_finite(self, loose_env):
        agent = PPO2(seed=0)
        agent._build(loose_env)
        observations, actions, rewards, old_log_probs = \
            agent._collect(loose_env)
        loss = agent.update(observations, actions, rewards, old_log_probs)
        assert np.isfinite(loss)


class TestOffPolicyInternals:
    def test_ddpg_target_networks_track_slowly(self, loose_env):
        agent = DDPG(seed=0, warmup_steps=8, batch_size=8, tau=0.1)
        agent.search(loose_env, 3)
        actor = agent.actor.state_dict()
        target = agent.actor_target.state_dict()
        # Targets moved but have not caught up.
        assert any(not np.allclose(a, t) for a, t in zip(actor, target))

    def test_td3_delayed_policy_updates(self, loose_env):
        agent = TD3(seed=0, warmup_steps=8, batch_size=8, policy_delay=2)
        agent.search(loose_env, 3)
        assert agent._updates > 0

    def test_td3_rejects_bad_delay(self):
        with pytest.raises(ValueError):
            TD3(policy_delay=0)

    def test_ddpg_rejects_negative_noise(self):
        with pytest.raises(ValueError):
            DDPG(noise_sigma=-1.0)

    def test_sac_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            SAC(alpha=-0.1)

    def test_sac_actor_squashes_to_box(self):
        actor = GaussianActor(10, 2, (16, 16),
                              rng=np.random.default_rng(0))
        obs = Tensor(np.random.default_rng(1).standard_normal((5, 10)))
        action, logp = actor.sample(obs, np.random.default_rng(2))
        assert np.all(np.abs(action.numpy()) <= 1.0)
        assert logp.shape == (5,)

    def test_sac_logprob_decreases_with_entropy(self):
        # A wide policy must assign lower density to its samples than a
        # narrow one on average.
        rng = np.random.default_rng(0)
        actor = GaussianActor(4, 1, (8, 8), rng=rng)
        obs = Tensor(np.zeros((64, 4)))
        _, logp = actor.sample(obs, rng)
        assert np.isfinite(logp.numpy()).all()

    def test_offpolicy_warmup_uses_random_actions(self, loose_env):
        agent = DDPG(seed=0, warmup_steps=10_000)
        result = agent.search(loose_env, 2)
        # Entirely inside warmup: no updates, still produces episodes.
        assert result.episodes == 2


class TestSearchContracts:
    @pytest.mark.parametrize("cls", [Reinforce, A2C, PPO2])
    def test_history_tracks_env_best(self, cls, loose_env):
        agent = cls(seed=0)
        result = agent.search(loose_env, 10)
        if loose_env.best is not None:
            assert result.history[-1] == loose_env.best.cost

    def test_reinforce_entropy_coef_zero_allowed(self, loose_env):
        agent = Reinforce(seed=0, entropy_coef=0.0)
        assert agent.search(loose_env, 5).episodes == 5

    def test_reinforce_custom_hidden_size(self, loose_env):
        agent = Reinforce(seed=0, hidden_size=32)
        agent.search(loose_env, 3)
        assert agent.policy.hidden_size == 32
