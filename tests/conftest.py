"""Shared fixtures: a session-wide cost model and small workloads.

Tests use tiny layer lists and low epoch budgets so the full suite stays
fast; the benchmarks exercise the realistic scales.
"""

from __future__ import annotations

import pytest

from repro.costmodel import CostModel
from repro.env.spaces import ActionSpace
from repro.models import get_model
from repro.models.layers import Layer, LayerType, gemm_layer


@pytest.fixture(scope="session")
def cost_model() -> CostModel:
    return CostModel()


@pytest.fixture(scope="session")
def space_dla() -> ActionSpace:
    return ActionSpace.build("dla")


@pytest.fixture(scope="session")
def space_mix() -> ActionSpace:
    return ActionSpace.build(mix=True)


@pytest.fixture(scope="session")
def conv_layer() -> Layer:
    return Layer("conv", LayerType.CONV, K=32, C=16, Y=28, X=28, R=3, S=3)


@pytest.fixture(scope="session")
def dw_layer() -> Layer:
    return Layer("dw", LayerType.DWCONV, K=32, C=32, Y=28, X=28, R=3, S=3)


@pytest.fixture(scope="session")
def gemm() -> Layer:
    return gemm_layer("gemm", m=64, n=32, k=128)


@pytest.fixture(scope="session")
def tiny_model(conv_layer, dw_layer, gemm) -> list:
    """A 4-layer model exercising every layer type."""
    pw = Layer("pw", LayerType.PWCONV, K=64, C=32, Y=28, X=28)
    return [conv_layer, dw_layer, pw, gemm]


@pytest.fixture(scope="session")
def mobilenet_slice() -> list:
    """First 8 MobileNet-V2 layers: big enough to be interesting, small
    enough for fast RL episodes."""
    return get_model("mobilenet_v2")[:8]
