"""Tests for profile-guided adaptive execution (:mod:`repro.parallel.tuning`).

The adaptive layer may only ever move *where* and *in what size chunks*
a batch is evaluated -- shard boundaries, inline-vs-shard routing, and
the choice among bit-identical kernels.  This file locks both halves of
that contract: the planning math itself (unit + property tests over
:class:`ThroughputModel` / :class:`ShardPlanner` /
:class:`BreakEvenCalibrator`), and the end-to-end guarantee that search
results are bit-identical with autotuning on or off across every
executor -- including a distributed run that loses a node mid-batch and
a straggler scenario where the plan visibly shifts rows off the slow
worker.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.serialization import search_result_to_dict
from repro.costmodel.batched import LayerTable
from repro.costmodel.constants import DEFAULT_HW
from repro.models import get_model
from repro.parallel import (
    FaultPlan,
    ParallelCoordinator,
    ProcessBackend,
    ShardPlanner,
    ThroughputModel,
    TuningState,
    default_autotune,
    select_kernel,
    shard_bounds,
)
from repro.parallel.backend import TRANSPORT_MIN_BATCH
from repro.parallel.tuning import (
    AUTO_KERNEL_CANDIDATES,
    AUTOTUNE_ENV,
    BreakEvenCalibrator,
)
from repro.search import SearchSession, SearchSpec


# ----------------------------------------------------------------------
# ThroughputModel
# ----------------------------------------------------------------------
class TestThroughputModel:
    def test_first_observation_sets_rate_exactly(self):
        model = ThroughputModel()
        model.observe("process", 0, rows=500, elapsed_s=0.25)
        assert model.rate("process", 0) == pytest.approx(2000.0)
        assert model.observations("process", 0) == 1

    def test_ewma_blends_toward_new_rate(self):
        model = ThroughputModel(alpha=0.5)
        model.observe("process", 0, rows=100, elapsed_s=1.0)   # 100 r/s
        model.observe("process", 0, rows=300, elapsed_s=1.0)   # 300 r/s
        assert model.rate("process", 0) == pytest.approx(200.0)

    def test_keys_are_independent_per_transport_and_slot(self):
        model = ThroughputModel()
        model.observe("process", 0, 100, 1.0)
        model.observe("distributed", 0, 400, 1.0)
        assert model.rate("process", 0) == pytest.approx(100.0)
        assert model.rate("distributed", 0) == pytest.approx(400.0)
        assert model.rate("process", 1) is None

    def test_degenerate_observations_ignored(self):
        model = ThroughputModel()
        model.observe("process", 0, rows=0, elapsed_s=1.0)
        model.observe("process", 0, rows=10, elapsed_s=0.0)
        model.observe("process", 0, rows=-5, elapsed_s=1.0)
        assert model.rate("process", 0) is None
        assert model.observations("process", 0) == 0

    def test_snapshot_shape(self):
        model = ThroughputModel()
        model.observe("thread", 2, 100, 1.0)
        snap = model.snapshot()
        assert snap == {"thread": {"2": pytest.approx(100.0)}}

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            ThroughputModel(alpha=0.0)
        with pytest.raises(ValueError):
            ThroughputModel(alpha=1.5)


# ----------------------------------------------------------------------
# ShardPlanner
# ----------------------------------------------------------------------
def _rates(planner: ShardPlanner, transport, mapping):
    for key, rate in mapping.items():
        # One observation seeds the EWMA at exactly `rate` rows/sec.
        planner.throughput.observe(transport, key, int(rate), 1.0)


class TestShardPlanner:
    def test_proportional_split_known_case(self):
        planner = ShardPlanner(ThroughputModel())
        _rates(planner, "process", {0: 1000, 1: 250})
        bounds, owners = planner.plan(100, "process", [0, 1],
                                      chunks_per_key=2)
        assert bounds == [(0, 40), (40, 80), (80, 90), (90, 100)]
        assert owners == [0, 0, 1, 1]

    def test_fallback_without_rates_is_static_round_robin(self):
        planner = ShardPlanner(ThroughputModel())
        bounds, owners = planner.plan(100, "process", [0, 1, 2])
        assert bounds == shard_bounds(100, 3)
        assert owners == [0, 1, 2]

    def test_fallback_when_any_key_unmeasured(self):
        planner = ShardPlanner(ThroughputModel())
        _rates(planner, "process", {0: 1000})  # key 1 has no sample
        bounds, owners = planner.plan(100, "process", [0, 1])
        assert bounds == shard_bounds(100, 2)
        assert owners == [0, 1]

    def test_fallback_for_tiny_batches_and_single_key(self):
        planner = ShardPlanner(ThroughputModel())
        _rates(planner, "process", {0: 1000, 1: 250})
        assert planner.plan(1, "process", [0, 1]) == (
            shard_bounds(1, 2), [0])
        assert planner.plan(100, "process", [0]) == (
            shard_bounds(100, 1), [0])

    def test_plan_validates_inputs(self):
        planner = ShardPlanner(ThroughputModel())
        with pytest.raises(ValueError):
            planner.plan(0, "process", [0, 1])
        with pytest.raises(ValueError):
            planner.plan(10, "process", [])

    @given(
        batch=st.integers(min_value=1, max_value=5000),
        rates=st.lists(st.floats(min_value=0.1, max_value=1e6,
                                 allow_nan=False, allow_infinity=False),
                       min_size=1, max_size=8),
        chunks=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=200, deadline=None)
    def test_plans_always_partition_the_batch_exactly(self, batch, rates,
                                                      chunks):
        """Whatever the rates, the plan is a contiguous, in-order, exact
        partition of [0, batch) and every owner is a real key."""
        planner = ShardPlanner(ThroughputModel())
        keys = list(range(len(rates)))
        for key, rate in zip(keys, rates):
            planner.throughput.observe("process", key, 10 ** 6,
                                       10 ** 6 / rate)
        bounds, owners = planner.plan(batch, "process", keys,
                                      chunks_per_key=chunks)
        assert len(bounds) == len(owners)
        assert bounds[0][0] == 0 and bounds[-1][1] == batch
        for (lo, hi), (nlo, _nhi) in zip(bounds, bounds[1:]):
            assert hi == nlo
        assert all(lo < hi for lo, hi in bounds)
        assert set(owners) <= set(keys)

    @given(
        batch=st.integers(min_value=1, max_value=2000),
        n_keys=st.integers(min_value=1, max_value=6),
        chunks=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=100, deadline=None)
    def test_unmeasured_plan_equals_static_round_robin(self, batch,
                                                       n_keys, chunks):
        """With no measurements the planner IS the old static schedule."""
        planner = ShardPlanner(ThroughputModel())
        keys = list(range(n_keys))
        bounds, owners = planner.plan(batch, "process", keys,
                                      chunks_per_key=chunks)
        expected = shard_bounds(batch, n_keys * chunks)
        assert bounds == expected
        assert owners == [keys[i % n_keys] for i in range(len(expected))]

    def test_faster_key_gets_more_rows(self):
        planner = ShardPlanner(ThroughputModel())
        _rates(planner, "process", {0: 900, 1: 100})
        bounds, owners = planner.plan(1000, "process", [0, 1])
        rows = {key: 0 for key in (0, 1)}
        for (lo, hi), owner in zip(bounds, owners):
            rows[owner] += hi - lo
        assert rows[0] == 900 and rows[1] == 100


# ----------------------------------------------------------------------
# BreakEvenCalibrator
# ----------------------------------------------------------------------
class TestBreakEvenCalibrator:
    def test_probes_alternate_inline_then_sharded(self):
        calibrator = BreakEvenCalibrator(probes=4)
        routes = [calibrator.route_inline("process", 512, 256)
                  for _ in range(4)]
        assert routes == [True, False, True, False]

    def test_freezes_at_smallest_batch_sharding_won(self):
        calibrator = BreakEvenCalibrator(probes=2)
        calibrator.observe("process", inline=True, batch=512,
                           elapsed_s=0.2)
        calibrator.observe("process", inline=False, batch=512,
                           elapsed_s=0.1)
        calibrator.route_inline("process", 512, 256)
        calibrator.route_inline("process", 512, 256)
        assert calibrator.route_inline("process", 512, 256) is False
        assert calibrator.threshold("process") == 512
        # Frozen: smaller batches inline, the crossover and up shard.
        assert calibrator.route_inline("process", 511, 256) is True

    def test_freezes_at_twice_largest_inline_win(self):
        calibrator = BreakEvenCalibrator(probes=2)
        calibrator.observe("process", inline=True, batch=300,
                           elapsed_s=0.1)
        calibrator.observe("process", inline=False, batch=300,
                           elapsed_s=0.5)
        calibrator.route_inline("process", 300, 256)
        calibrator.route_inline("process", 300, 256)
        calibrator.route_inline("process", 300, 256)
        assert calibrator.threshold("process") == 600

    def test_freezes_at_static_default_without_evidence(self):
        calibrator = BreakEvenCalibrator(probes=1)
        calibrator.route_inline("process", 10, 256)
        calibrator.route_inline("process", 10, 256)
        assert calibrator.threshold("process") == 256

    def test_transports_calibrate_independently(self):
        calibrator = BreakEvenCalibrator(probes=1)
        calibrator.route_inline("thread", 10, 128)
        assert calibrator.threshold("process") is None

    def test_snapshot_shape(self):
        calibrator = BreakEvenCalibrator(probes=3)
        calibrator.route_inline("process", 64, 256)
        snap = calibrator.snapshot()
        assert snap["process"]["probes"] == 1
        assert snap["process"]["threshold"] is None


# ----------------------------------------------------------------------
# Kernel auto-selection
# ----------------------------------------------------------------------
class TestSelectKernel:
    def test_only_bit_identical_kernels_compete(self):
        assert "fused32" not in AUTO_KERNEL_CANDIDATES
        assert "fused-jit" not in AUTO_KERNEL_CANDIDATES

    def test_probe_times_every_candidate_and_caches(self):
        table = LayerTable.build(get_model("ncf"))
        key = ("test-select-kernel", id(table))
        selected, timings = select_kernel(DEFAULT_HW, table, cache_key=key,
                                          probe_rows=64, repeats=1)
        assert selected in AUTO_KERNEL_CANDIDATES
        assert set(timings) == set(AUTO_KERNEL_CANDIDATES)
        assert all(t > 0 for t in timings.values())
        assert select_kernel(DEFAULT_HW, table,
                             cache_key=key) == (selected, timings)

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv(AUTOTUNE_ENV, raising=False)
        assert default_autotune() is False
        monkeypatch.setenv(AUTOTUNE_ENV, "1")
        assert default_autotune() is True
        monkeypatch.setenv(AUTOTUNE_ENV, "off")
        assert default_autotune() is False


# ----------------------------------------------------------------------
# TuningState
# ----------------------------------------------------------------------
class TestTuningState:
    def test_static_routing_when_auto_dispatch_off(self):
        tuner = TuningState(plan_shards=True, auto_dispatch=False)
        assert tuner.route_inline("process", 100, 256) is True
        assert tuner.route_inline("process", 300, 256) is False
        assert tuner.calibrator.snapshot() == {}

    def test_plan_counts_adaptive_plans(self):
        tuner = TuningState()
        tuner.plan(100, "process", [0, 1])          # uniform (no rates)
        tuner.observe("process", 0, 1000, 1.0)
        tuner.observe("process", 1, 250, 1.0)
        bounds, owners = tuner.plan(100, "process", [0, 1])
        assert bounds == [(0, 80), (80, 100)]
        snap = tuner.snapshot()
        assert snap["planned_batches"] == 2
        assert snap["adaptive_plans"] == 1
        assert snap["plan"]["adaptive"] is True
        assert snap["plan"]["shard_rows"] == [80, 20]
        assert snap["plan"]["owners"] == ["0", "1"]

    def test_snapshot_is_json_ready(self):
        import json

        tuner = TuningState(auto_dispatch=True)
        tuner.observe("thread", 0, 10, 0.5)
        tuner.route_inline("thread", 64, 128)
        json.dumps(tuner.snapshot())


# ----------------------------------------------------------------------
# End-to-end: autotune on/off bit-parity
# ----------------------------------------------------------------------
def _comparable(outcome) -> dict:
    data = search_result_to_dict(outcome.result)
    data.pop("wall_time_s", None)
    return data


def _spec(method: str, executor: str, **overrides) -> SearchSpec:
    base = dict(model="mobilenet_v2", method=method, budget=24, seed=11,
                layer_slice=4, executor=executor, workers=2,
                nodes=2 if executor == "distributed" else None,
                dispatch_min_batch=0)
    base.update(overrides)
    return SearchSpec(**base)


PARITY_MATRIX = [("ga", "thread"), ("ga", "process"),
                 ("reinforce", "process"), ("ga", "distributed")]


class TestAutotuneParity:
    @pytest.mark.parametrize("method,executor", PARITY_MATRIX)
    def test_results_bit_identical_with_autotune(self, method, executor):
        """Throughput-adaptive shard plans change wall clock only."""
        off = SearchSession(_spec(method, executor, autotune=False)).run()
        on = SearchSession(_spec(method, executor, autotune=True)).run()
        assert _comparable(on) == _comparable(off)
        assert on.result.cache_hits == off.result.cache_hits
        tuning = on.provenance["tuning"]
        assert tuning["plan_shards"] is True
        assert tuning["planned_batches"] > 0

    def test_auto_dispatch_calibration_is_invisible_in_results(self):
        off = SearchSession(_spec("ga", "process", autotune=False)).run()
        on = SearchSession(_spec("ga", "process",
                                 dispatch_min_batch="auto")).run()
        assert _comparable(on) == _comparable(off)
        break_even = on.provenance["tuning"]["break_even"]
        assert break_even["process"]["probes"] > 0

    def test_distributed_node_kill_recovery_with_autotune(self):
        """Autotuned distributed run losing a node mid-batch still
        matches the serial reference bit-for-bit."""
        reference = SearchSession(_spec("ga", "serial")).run()
        plan = FaultPlan(kill_worker=[(1, 0)])
        coordinator = ParallelCoordinator(
            "distributed", workers=2, nodes=2, fault_plan=plan,
            degrade=False, autotune=True)
        recovered = SearchSession(
            _spec("ga", "distributed")).run(callbacks=[coordinator])
        assert _comparable(recovered) == _comparable(reference)
        execution = recovered.provenance["execution"]
        assert execution["respawns"] >= 1
        tuning = recovered.provenance["tuning"]
        assert tuning["planned_batches"] > 0


# ----------------------------------------------------------------------
# Straggler scenario: the plan shifts rows off a slow worker
# ----------------------------------------------------------------------
class TestStragglerPlanShift:
    def test_plan_moves_rows_off_delayed_worker(self):
        """A FaultPlan-delayed worker looks slow to the throughput model
        (injected delays are charged to the timing echo), so later plans
        hand it fewer rows -- while every gathered report stays
        bit-identical to the serial kernel."""
        from repro.costmodel.batched import evaluate_batch_kernel

        layers = get_model("ncf")
        table = LayerTable.build(layers)
        num_layers = len(table)
        population = 400
        n = population * num_layers
        rng = np.arange(n, dtype=np.int64)
        layer_idx = np.tile(np.arange(num_layers, dtype=np.int64),
                            population)
        pes = (rng % 64) + 1
        l1_bytes = ((rng % 32) + 1) * 16
        style_idx = np.zeros(n, dtype=np.int64)

        tuner = TuningState(plan_shards=True)
        plan = FaultPlan(delay_s=[(batch, 1, 0.25)
                                  for batch in range(6)])
        backend = ProcessBackend(workers=2, fault_plan=plan, tuner=tuner)
        try:
            for _ in range(4):
                report = backend.evaluate(DEFAULT_HW, table, layer_idx,
                                          style_idx, pes, l1_bytes)
        finally:
            backend.shutdown()

        serial = evaluate_batch_kernel(DEFAULT_HW, table, layer_idx,
                                       style_idx, pes, l1_bytes)
        assert np.array_equal(report.latency_cycles,
                              serial.latency_cycles)
        assert np.array_equal(report.energy_nj, serial.energy_nj)

        rates = tuner.throughput.snapshot()["process"]
        assert rates["0"] > rates["1"], rates
        snap = tuner.snapshot()
        assert snap["adaptive_plans"] >= 1
        last = snap["plan"]
        rows = {"0": 0, "1": 0}
        for owner, shard_rows in zip(last["owners"], last["shard_rows"]):
            rows[owner] += shard_rows
        assert rows["0"] > rows["1"], last


# ----------------------------------------------------------------------
# Spec plumbing for the new knobs
# ----------------------------------------------------------------------
class TestSpecKnobs:
    def test_dispatch_min_batch_auto_accepted_and_resolved(self):
        spec = SearchSpec(model="ncf", dispatch_min_batch="auto",
                          executor="process")
        assert spec.dispatch_is_auto()
        # The calibrator's pre-freeze fallback is the static table.
        assert (spec.resolved_dispatch_min_batch()
                == TRANSPORT_MIN_BATCH["process"])

    def test_dispatch_min_batch_rejects_garbage(self):
        with pytest.raises(ValueError):
            SearchSpec(model="ncf", dispatch_min_batch="sometimes")

    def test_kernel_auto_accepted(self):
        spec = SearchSpec(model="ncf", kernel="auto")
        assert spec.kernel_is_auto()
        assert spec.resolved_kernel() == "batched"

    def test_autotune_env_default(self, monkeypatch):
        monkeypatch.setenv(AUTOTUNE_ENV, "1")
        assert SearchSpec(model="ncf").resolved_autotune() is True
        monkeypatch.delenv(AUTOTUNE_ENV)
        assert SearchSpec(model="ncf").resolved_autotune() is False
        assert SearchSpec(model="ncf",
                          autotune=True).resolved_autotune() is True

    def test_kernel_auto_session_records_probe(self):
        spec = SearchSpec(model="ncf", platform="cloud", method="random",
                          budget=8, seed=0, kernel="auto")
        outcome = SearchSession(spec).run()
        probe = outcome.provenance["tuning"]["kernel"]
        assert probe["selected"] in AUTO_KERNEL_CANDIDATES
        assert set(probe["timings"]) == set(AUTO_KERNEL_CANDIDATES)
        # Bit-parity with an explicit kernel: auto can never change
        # results, only pick among bit-identical implementations.
        explicit = SearchSession(SearchSpec(
            model="ncf", platform="cloud", method="random", budget=8,
            seed=0, kernel="batched")).run()
        assert outcome.best_cost == explicit.best_cost
        assert outcome.best_assignments == explicit.best_assignments
