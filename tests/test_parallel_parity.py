"""Determinism suite: parallel execution is bit-identical to serial.

The contract of :mod:`repro.parallel` is that an execution backend may
change *where* a batch is evaluated but never *what* comes back: for a
fixed seed, a session's :class:`SessionResult` must be bit-identical
across ``executor`` in {serial, thread, process, distributed} and
``workers`` (node count, for distributed) in {1, 2, 4} for every
registered method that routes through the batched population
evaluator.  This file is the lockdown: it runs the full
matrix per batchable method, plus property-style randomized round-trips
of the shared-memory path itself (including empty, size-1, and
constraint-violating populations).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core.constraints import ResourceConstraint
from repro.core.serialization import search_result_to_dict
from repro.costmodel import CostModel
from repro.env.spaces import ActionSpace
from repro.models import get_model
from repro.parallel import (
    FaultPlan,
    ParallelCoordinator,
    ProcessBackend,
    make_backend,
    shard_bounds,
)
from repro.search import SearchSession, SearchSpec, list_methods

EXECUTOR_MATRIX = [("serial", 1), ("serial", 2), ("serial", 4),
                   ("thread", 1), ("thread", 2), ("thread", 4),
                   ("process", 1), ("process", 2), ("process", 4),
                   ("distributed", 1), ("distributed", 2),
                   ("distributed", 4)]

#: Small-but-real budgets per method kind so the matrix stays fast while
#: every method still exercises batched population evaluation.
_BUDGETS = {"genome": 40, "two-stage": (6, 3)}


def _batchable_names():
    return [info.name for info in list_methods() if info.batchable]


def _spec(method: str, executor: str, workers: int) -> SearchSpec:
    info = repro.get_method(method)
    if info.kind == "two-stage":
        budget, finetune = _BUDGETS["two-stage"]
    else:
        budget, finetune = _BUDGETS["genome"], None
    # dispatch_min_batch=0 forces sharding: the matrix must exercise the
    # workers even for the small test batches the adaptive fallback
    # would otherwise keep in-process.  The distributed executor sizes
    # its fleet from ``nodes``.
    return SearchSpec(model="mobilenet_v2", method=method, budget=budget,
                      finetune=finetune, seed=11, layer_slice=4,
                      executor=executor, workers=workers,
                      nodes=workers if executor == "distributed" else None,
                      dispatch_min_batch=0)


def _comparable(session_result) -> dict:
    """The result as a dict, minus wall-clock noise."""
    data = search_result_to_dict(session_result.result)
    data.pop("wall_time_s", None)
    data["stopped_early"] = session_result.stopped_early
    return data


@pytest.mark.parametrize("method", _batchable_names())
def test_session_results_bit_identical_across_backends(method):
    """Every batchable method: 3 executors x 3 worker counts, one
    answer."""
    reference = None
    for executor, workers in EXECUTOR_MATRIX:
        outcome = SearchSession(_spec(method, executor, workers)).run()
        observed = _comparable(outcome)
        if reference is None:
            reference = observed
        else:
            assert observed == reference, (
                f"{method}: {executor}x{workers} diverged from serial")


# ----------------------------------------------------------------------
# Kill-a-worker-mid-batch parity: recovery is invisible in the results
# ----------------------------------------------------------------------
#: (method, envs, executor) cells of the crash-recovery matrix -- one GA
#: and one episodic-RL method, scalar and vectorized stepping, over both
#: fault-injectable transports (process workers and distributed node
#: agents).  Kill batches are kept low so they land inside even the GA's
#: short sharded-batch run.
CRASH_MATRIX = [("ga", 1, "process"), ("reinforce", 1, "process"),
                ("reinforce", 8, "process"),
                ("ga", 1, "distributed"), ("reinforce", 8, "distributed")]


@pytest.mark.parametrize("method,envs,executor", CRASH_MATRIX)
def test_session_identical_after_workers_killed_mid_batch(method, envs,
                                                          executor):
    """A fault plan killing two workers (process workers or distributed
    node agents) mid-search changes nothing in the SessionResult -- best
    cost, assignments, full RNG-driven history, cache hits -- versus the
    crash-free serial run; only the recovery counters in provenance
    betray that anything happened."""
    base = dict(model="mobilenet_v2", method=method, budget=24, seed=7,
                layer_slice=4, envs=envs, dispatch_min_batch=0)
    reference = SearchSession(SearchSpec(executor="serial", **base)).run()
    plan = FaultPlan(kill_worker=[(0, 0), (1, 1)])
    coordinator = ParallelCoordinator(executor, workers=2, nodes=2,
                                      fault_plan=plan, degrade=False)
    recovered = SearchSession(
        SearchSpec(executor=executor, workers=2, nodes=2, **base)
    ).run(callbacks=[coordinator])
    assert _comparable(recovered) == _comparable(reference)
    assert recovered.result.cache_hits == reference.result.cache_hits
    execution = recovered.provenance["execution"]
    assert execution["respawns"] == 2
    assert execution["retries"] >= 2
    assert execution["degraded_to"] is None


def test_reinforce_planned_episodes_match_scalar_stepping():
    """The batched-epoch REINFORCE path (the one parallel backends
    shard) is bit-identical to per-step scalar calls, including RNG
    consumption around mid-episode constraint violations."""
    layers = get_model("mobilenet_v2")[:5]
    results = {}
    for flag in (False, True):
        pipeline = repro.ConfuciuX(
            layers, platform="iot", seed=13,
            reinforce_kwargs={"batch_episodes": flag})
        results[flag] = pipeline._run(global_epochs=12,
                                      finetune_generations=0)
    scalar, planned = results[False], results[True]
    assert scalar.trace == planned.trace
    assert scalar.best_cost == planned.best_cost
    assert scalar.best_assignments == planned.best_assignments
    assert (scalar.global_result.evaluations
            == planned.global_result.evaluations)


def test_power_constrained_env_stays_on_scalar_path():
    """Power budgets need full per-layer reports to detect violations,
    so planned episodes must refuse rather than silently diverge."""
    task = SearchSpec(model="mobilenet_v2", constraint_kind="power",
                      layer_slice=4).task()
    cost_model = CostModel()
    env = task.make_env(cost_model, task.constraint(cost_model))
    assert not env.plan_supported()
    with pytest.raises(RuntimeError, match="power"):
        env.begin_plan()


# ----------------------------------------------------------------------
# Shared-memory round-trip properties
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def shm_setup():
    """One persistent 2-worker process backend plus serial/parallel
    evaluator pairs over the same task (area- and resource-constrained)."""
    layers = get_model("mobilenet_v2")[:5]
    space = ActionSpace.build("dla")
    backend = ProcessBackend(workers=2)

    def make_pair(constraint):
        from repro.core.evaluator import DesignPointEvaluator

        serial = DesignPointEvaluator(layers, "latency", constraint,
                                      CostModel(), space, dataflow="dla")
        parallel_model = CostModel()
        parallel_model.set_executor(backend)
        parallel = DesignPointEvaluator(layers, "latency", constraint,
                                        parallel_model, space,
                                        dataflow="dla")
        return serial, parallel

    from repro.core.constraints import platform_constraint

    area = platform_constraint(layers, "dla", "area", "iot", CostModel(),
                               space)
    pairs = {
        "area": make_pair(area),
        # Caps tight enough that random populations straddle the
        # feasibility boundary (violating genomes must round-trip too).
        "resource": make_pair(ResourceConstraint(max_pes=150,
                                                 max_l1_bytes=3000)),
    }
    yield pairs
    backend.shutdown()
    assert backend.alive_workers == 0


@settings(max_examples=20, deadline=None)
@given(
    kind=st.sampled_from(["area", "resource"]),
    data=st.data(),
)
def test_random_populations_round_trip_through_workers(shm_setup, kind,
                                                       data):
    """Random populations -- any size, any feasibility mix -- come back
    from the worker shards exactly as the in-process path computes
    them."""
    serial, parallel = shm_setup[kind]
    size = data.draw(st.integers(min_value=0, max_value=33))
    seed = data.draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = np.random.default_rng(seed)
    genomes = [
        [int(g) for g in rng.integers(serial.space.num_levels,
                                      size=serial.genome_length)]
        for _ in range(size)
    ]
    expected = serial.evaluate_population(genomes)
    observed = parallel.evaluate_population(genomes)
    assert len(expected) == len(observed) == size
    for want, got in zip(expected, observed):
        assert got.cost == want.cost
        assert got.feasible == want.feasible
        assert got.used == want.used
        assert got.report.latency_cycles == want.report.latency_cycles
        assert got.report.energy_nj == want.report.energy_nj
        assert got.report.area_um2 == want.report.area_um2
        assert got.report.power_mw == want.report.power_mw


def test_empty_and_single_populations(shm_setup):
    """The degenerate batch sizes the sharding logic must not mangle."""
    serial, parallel = shm_setup["area"]
    assert parallel.evaluate_population([]) == []
    genome = [0] * serial.genome_length
    [want] = serial.evaluate_population([genome])
    [got] = parallel.evaluate_population([genome])
    assert (got.cost, got.feasible, got.used) == (want.cost, want.feasible,
                                                  want.used)


def test_shard_bounds_partition_every_batch():
    """Shards tile [0, batch) exactly: no gaps, no overlap, no empties."""
    for batch in (1, 2, 3, 7, 64, 1001):
        for shards in (1, 2, 4, 16, batch + 5):
            bounds = shard_bounds(batch, shards)
            assert bounds[0][0] == 0 and bounds[-1][1] == batch
            assert all(lo < hi for lo, hi in bounds)
            assert all(prev[1] == nxt[0]
                       for prev, nxt in zip(bounds, bounds[1:]))
            assert len(bounds) <= min(shards, batch)


def test_worker_error_propagates_with_context():
    """A worker failure surfaces as a RuntimeError naming the worker,
    and the pool survives for the next (valid) batch."""
    from repro.costmodel.batched import LayerTable

    layers = get_model("mobilenet_v2")[:3]
    table = LayerTable.build(layers)
    backend = ProcessBackend(workers=2)
    try:
        model = CostModel()
        model.set_executor(backend)
        bad_table = LayerTable.build(layers)
        # Sabotage: layer_idx beyond the table shipped to workers is the
        # cheapest reproducible in-worker failure.  Bypass the validated
        # entry point to hit the worker directly.
        with pytest.raises(RuntimeError, match="worker"):
            backend.evaluate(model.hw, bad_table,
                             np.array([99], dtype=np.int64),
                             np.array([0], dtype=np.int64),
                             np.array([4], dtype=np.int64),
                             np.array([64], dtype=np.int64))
        # Pool still serves correct batches afterwards.
        report = model.batched.evaluate(table,
                                        np.array([0, 1, 2], dtype=np.int64),
                                        0,
                                        np.array([4, 8, 16],
                                                 dtype=np.int64),
                                        np.array([64, 64, 64],
                                                 dtype=np.int64))
        assert len(report) == 3
    finally:
        backend.shutdown()
    assert backend.alive_workers == 0
