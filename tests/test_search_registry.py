"""Tests for the unified method registry and its seed contract."""

import numpy as np
import pytest

from repro.optim import BASELINE_OPTIMIZERS
from repro.rl import RL_ALGORITHMS
from repro.search import (
    KIND_EPISODIC,
    KIND_GENOME,
    KIND_TWO_STAGE,
    get_method,
    method_names,
    register_method,
    unregister_method,
)


class TestLookup:
    def test_absorbs_all_legacy_registries(self):
        names = set(method_names())
        assert set(BASELINE_OPTIMIZERS) <= names
        assert set(RL_ALGORITHMS) <= names
        assert {"reinforce-mlp", "local-ga", "confuciux"} <= names

    def test_get_method_unknown_lists_available(self):
        with pytest.raises(KeyError, match="unknown method"):
            get_method("alphago")

    def test_kind_filters(self):
        assert set(method_names(kind=KIND_GENOME)) >= set(
            BASELINE_OPTIMIZERS)
        assert set(method_names(kind=KIND_EPISODIC)) == (
            set(RL_ALGORITHMS) | {"reinforce-mlp"})
        assert method_names(kind=KIND_TWO_STAGE) == ["confuciux",
                                                     "confuciux-mlp"]

    def test_variant_filter(self):
        episodic = method_names(kind=KIND_EPISODIC, include_variants=False)
        assert "reinforce-mlp" not in episodic
        assert "reinforce" in episodic
        assert method_names(kind=KIND_TWO_STAGE,
                            include_variants=False) == ["confuciux"]

    def test_capability_metadata(self):
        assert get_method("ga").batchable
        assert not get_method("reinforce").batchable
        assert get_method("local-ga").supports_finetune
        assert get_method("confuciux").kind == KIND_TWO_STAGE
        assert get_method("reinforce-mlp").variant_of == "reinforce"


class TestRegistration:
    def test_register_and_unregister(self):
        class Dummy:
            def __init__(self, seed=None):
                self.rng = np.random.default_rng(seed)

        try:
            info = register_method("dummy-opt", Dummy, kind=KIND_GENOME,
                                   description="test only")
            assert get_method("dummy-opt") is info
            assert "dummy-opt" in method_names()
        finally:
            unregister_method("dummy-opt")
        assert "dummy-opt" not in method_names()

    def test_duplicate_rejected_unless_overwrite(self):
        with pytest.raises(ValueError, match="already registered"):
            register_method("reinforce", lambda seed=None: None,
                            kind=KIND_EPISODIC)
        original = get_method("random")
        try:
            register_method("random", original.factory, kind=KIND_GENOME,
                            batchable=True, overwrite=True,
                            description="replaced")
            assert get_method("random").description == "replaced"
        finally:
            register_method("random", original.factory, kind=KIND_GENOME,
                            batchable=True,
                            description=original.description,
                            overwrite=True)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            register_method("quantum", lambda seed=None: None,
                            kind="quantum-annealing")


class TestSeedContract:
    """Every factory accepts seed=None and seeds one default_rng."""

    @pytest.mark.parametrize("name", [
        n for n in [
            "grid", "random", "sa", "ga", "bayesian", "reinforce", "a2c",
            "acktr", "ppo2", "ddpg", "td3", "sac", "reinforce-mlp",
            "local-ga",
        ]
    ])
    def test_factory_accepts_none_and_int_seeds(self, name):
        factory = get_method(name).factory
        for seed in (None, 0, 123):
            method = factory(seed=seed)
            assert isinstance(method.rng, np.random.Generator)

    def test_two_stage_factory_accepts_seeds(self, tiny_model, cost_model):
        builder = get_method("confuciux").factory(seed=0)
        pipeline = builder(tiny_model, platform="cloud",
                           cost_model=cost_model)
        assert pipeline.seed == 0
