"""VectorHWAssignmentEnv: lockstep waves vs scalar stepping.

Three layers of guarantees:

* **Protocol** -- reset/step shapes, masked done-handling, validation.
* **Single-env bit-parity** -- driving one lockstep episode produces the
  exact observation / reward / done / p_min stream of
  ``HWAssignmentEnv.step`` (the agent-level matrix lives in
  ``test_rl_vector_parity.py``).
* **Replay property** -- for *any* interleaving of violating episodes
  (hypothesis-generated action matrices, every constraint kind), each
  finished episode's bookkeeping (cost, used budget, termination step,
  feasibility, assignments) matches a per-episode scalar replay, and the
  env counters add up.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constraints import PlatformConstraint, ResourceConstraint
from repro.costmodel import CostModel
from repro.env.environment import HWAssignmentEnv
from repro.env.spaces import ActionSpace
from repro.env.vector import VectorHWAssignmentEnv
from repro.models import get_model


@pytest.fixture(scope="module")
def cost_model():
    return CostModel()


@pytest.fixture(scope="module")
def layers():
    return get_model("mobilenet_v2")[:4]


@pytest.fixture(scope="module")
def space():
    return ActionSpace.build("dla")


def make_envs(layers, space, cost_model, num_envs, constraint=None,
              mix=False, **env_kwargs):
    if constraint is None:
        constraint = PlatformConstraint(kind="area", budget=6.0e6,
                                        platform="custom")
    if mix:
        space = ActionSpace.build(mix=True)
        env_kwargs.setdefault("dataflow", None)
    else:
        env_kwargs.setdefault("dataflow", "dla")
    env = HWAssignmentEnv(layers, space, "latency", constraint, cost_model,
                          **env_kwargs)
    return env, VectorHWAssignmentEnv(env, num_envs)


class TestProtocol:
    def test_reset_shape_and_live(self, layers, space, cost_model):
        _, venv = make_envs(layers, space, cost_model, 3)
        observations = venv.reset()
        assert observations.shape == (3, 10)
        assert list(venv.live_indices) == [0, 1, 2]
        assert not venv.all_done
        # every episode starts from the scalar first observation
        scalar_first = venv.env.encoder.encode(layers[0], 0, None)
        assert np.array_equal(observations,
                              np.tile(scalar_first, (3, 1)))

    def test_partial_wave_set(self, layers, space, cost_model):
        _, venv = make_envs(layers, space, cost_model, 8)
        observations = venv.reset(3)
        assert observations.shape == (3, 10)
        assert venv.num_active == 3

    def test_reset_bounds(self, layers, space, cost_model):
        _, venv = make_envs(layers, space, cost_model, 2)
        with pytest.raises(ValueError):
            venv.reset(0)
        with pytest.raises(ValueError):
            venv.reset(3)

    def test_step_before_reset_raises(self, layers, space, cost_model):
        _, venv = make_envs(layers, space, cost_model, 2)
        with pytest.raises(RuntimeError):
            venv.step(np.zeros((2, 2), dtype=np.int64))

    def test_step_shape_validation(self, layers, space, cost_model):
        _, venv = make_envs(layers, space, cost_model, 2)
        venv.reset()
        with pytest.raises(ValueError):
            venv.step(np.zeros((3, 2), dtype=np.int64))
        with pytest.raises(ValueError):
            venv.step(np.full((2, 2), 99, dtype=np.int64))

    def test_wrapping_requirements(self, layers, space, cost_model):
        env, venv = make_envs(layers, space, cost_model, 2)
        with pytest.raises(ValueError):
            VectorHWAssignmentEnv(env, 0)
        with pytest.raises(TypeError):
            VectorHWAssignmentEnv(venv, 2)

    def test_done_rows_are_masked_out(self, layers, space, cost_model):
        # One episode picks the maximum pair (violates the tight budget
        # immediately), the other the minimum pair (survives).
        tight = PlatformConstraint(kind="area", budget=1.0e6,
                                   platform="custom")
        _, venv = make_envs(layers, space, cost_model, 2, constraint=tight)
        venv.reset()
        top = space.num_levels - 1
        _, _, dones, info = venv.step(np.array([[top, top], [0, 0]]))
        assert list(dones) == [True, False]
        assert info["episodes"][0] is not None
        assert not info["episodes"][0].feasible
        assert info["episodes"][1] is None
        assert list(venv.live_indices) == [1]
        # subsequent waves only accept actions for the live episode
        observations, rewards, dones, _ = venv.step(np.array([[0, 0]]))
        assert observations.shape == (1, 10)
        assert rewards.shape == (1,)

    def test_counters_shared_with_scalar_env(self, layers, space,
                                             cost_model):
        env, venv = make_envs(layers, space, cost_model, 2)
        venv.reset()
        venv.step(np.zeros((2, 2), dtype=np.int64))
        assert env.evaluations == 2
        assert venv.evaluations == 2
        assert venv.episodes == env.episodes


class TestSingleEnvBitParity:
    @pytest.mark.parametrize("mix", [False, True])
    @pytest.mark.parametrize("shaping", ["pmin", "raw"])
    def test_stream_matches_scalar(self, layers, space, cost_model, mix,
                                   shaping):
        """Observations, rewards, dones, p_min and the episode results of
        one lockstep episode equal the scalar stream exactly."""
        env, venv = make_envs(layers, space, cost_model, 1, mix=mix,
                              reward_shaping=shaping)
        scalar_env, _ = make_envs(layers, space, cost_model, 1, mix=mix,
                                  reward_shaping=shaping)
        head_sizes = venv.space.head_sizes
        rng = np.random.default_rng(5)
        for _ in range(4):  # several episodes: p_min carries across
            vec_obs = venv.reset(1)
            scalar_obs = scalar_env.reset()
            assert np.array_equal(vec_obs[0], scalar_obs)
            done = False
            while not done:
                action = [int(rng.integers(0, min(size, 4)))
                          for size in head_sizes]
                vec_obs, vec_rew, vec_done, vec_info = venv.step(
                    np.array([action]))
                scalar_obs, scalar_rew, done, scalar_info = \
                    scalar_env.step(action)
                assert np.array_equal(vec_obs[0], scalar_obs)
                assert float(vec_rew[0]) == scalar_rew
                assert bool(vec_done[0]) == done
                assert venv.p_min == scalar_env.p_min
                if done:
                    vec_episode = vec_info["episodes"][0]
                    scalar_episode = scalar_info["episode"]
                    assert vec_episode.cost == scalar_episode.cost
                    assert vec_episode.used == scalar_episode.used
                    assert vec_episode.feasible == scalar_episode.feasible
                    assert vec_episode.actions == scalar_episode.actions
                    assert vec_episode.assignments \
                        == scalar_episode.assignments
                    assert vec_episode.genome == scalar_episode.genome
        assert venv.evaluations == scalar_env.evaluations
        assert venv.episodes == scalar_env.episodes
        assert (venv.best.cost if venv.best else None) \
            == (scalar_env.best.cost if scalar_env.best else None)

    def test_constant_penalty_mode(self, layers, space, cost_model):
        tight = PlatformConstraint(kind="area", budget=1.0e6,
                                   platform="custom")
        env, venv = make_envs(layers, space, cost_model, 1,
                              constraint=tight,
                              penalty_mode="constant",
                              constant_penalty=-7.0)
        venv.reset(1)
        top = space.num_levels - 1
        _, rewards, dones, _ = venv.step(np.array([[top, top]]))
        assert bool(dones[0]) and float(rewards[0]) == -7.0


class TestCrossEpisodePMin:
    def test_wave_folds_in_episode_index_order(self, layers, space,
                                               cost_model):
        """Episode e's reward sees the p_min fold of episodes < e in the
        same wave (the paper's worst-performance-across-episodes stream,
        in a deterministic order)."""
        constraint = PlatformConstraint(kind="area", budget=1e12,
                                        platform="custom")
        env, venv = make_envs(layers, space, cost_model, 3,
                              constraint=constraint)
        venv.reset()
        actions = np.array([[3, 3], [0, 0], [2, 2]])
        _, rewards, _, info = venv.step(actions)
        costs = env.objective.evaluate(info["batch"])
        performance = -np.asarray(costs)
        # row 0 sets p_min to its own performance -> reward 0
        assert rewards[0] == 0.0
        expected_1 = performance[1] - min(performance[0], performance[1])
        expected_2 = performance[2] - min(performance[:3])
        assert rewards[1] == expected_1
        assert rewards[2] == expected_2
        assert env.p_min == min(performance)


@st.composite
def wave_actions(draw):
    """Episode count, action matrix stream, and a constraint kind."""
    episodes = draw(st.integers(min_value=1, max_value=4))
    # Level indices skewed low so some episodes survive several steps
    # while high draws violate early -- arbitrary interleavings.
    matrix = draw(st.lists(
        st.lists(st.integers(min_value=0, max_value=11),
                 min_size=2 * episodes, max_size=2 * episodes),
        min_size=4, max_size=4))
    kind = draw(st.sampled_from(["area", "power", "resource"]))
    return episodes, matrix, kind


class TestReplayProperty:
    @settings(max_examples=25, deadline=None)
    @given(wave_actions())
    def test_any_interleaving_matches_scalar_replay(self, case):
        """Every finished episode's bookkeeping equals a fresh scalar
        replay of its actions, regardless of which episodes violate
        when; evaluations count one per live episode per wave."""
        episodes, matrix, kind = case
        layers = get_model("mobilenet_v2")[:4]
        space = ActionSpace.build("dla")
        cost_model = CostModel()
        if kind == "resource":
            constraint = ResourceConstraint(max_pes=64,
                                            max_l1_bytes=16384)
        else:
            budget = 8.0e6 if kind == "area" else 700.0
            constraint = PlatformConstraint(kind=kind, budget=budget,
                                            platform="custom")
        env = HWAssignmentEnv(layers, space, "latency", constraint,
                              cost_model, dataflow="dla")
        venv = VectorHWAssignmentEnv(env, episodes)
        venv.reset()
        finished = {}
        steps_taken = 0
        wave = 0
        while not venv.all_done:
            live = venv.live_indices
            row_actions = np.array(
                matrix[wave % len(matrix)]).reshape(-1, 2)[:len(live)]
            steps_taken += len(live)
            _, _, dones, info = venv.step(row_actions)
            for row, episode in enumerate(info["episodes"]):
                if episode is not None:
                    finished[int(live[row])] = episode
            wave += 1
        assert len(finished) == episodes
        assert env.evaluations == steps_taken
        assert env.episodes == episodes
        for episode in finished.values():
            replay_env = HWAssignmentEnv(layers, space, "latency",
                                         constraint, cost_model,
                                         dataflow="dla")
            replay_env.reset()
            replay = None
            for action in episode.actions:
                _, _, _, step_info = replay_env.step(list(action))
                replay = step_info["episode"]
            assert replay is not None
            assert replay.steps == episode.steps
            assert replay.feasible == episode.feasible
            assert replay.cost == episode.cost
            assert replay.used == episode.used
            assert replay.assignments == episode.assignments
