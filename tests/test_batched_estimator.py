"""Parity suite for the vectorized batched estimator.

The batched engine is engineered to be *bit-identical* to the scalar path
(same expression order, same integer semantics), so these tests assert
exact equality -- far stronger than the 1e-9 tolerance the engine
guarantees publicly.  Coverage spans all three dataflow styles, DWCONV
layers, MIX assignments, LP and LS deployments, both constraint kinds,
and seeded end-to-end equivalence of every search method that routes
through the batch API.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.constraints import ResourceConstraint, platform_constraint
from repro.core.evaluator import DesignPointEvaluator
from repro.costmodel import (
    BATCH_STYLES,
    CostModel,
    LayerTable,
    STYLE_INDEX,
)
from repro.env.spaces import ActionSpace
from repro.experiments import ls_study
from repro.ga import LocalGA
from repro.models import get_model
from repro.optim import BASELINE_OPTIMIZERS


@pytest.fixture(scope="module")
def model_layers():
    """A MobileNet-V2 slice: CONV, DWCONV, and PWCONV layers."""
    return get_model("mobilenet_v2")[:10]


def assert_reports_equal(scalar, batched):
    for field in dataclasses.fields(scalar):
        a = getattr(scalar, field.name)
        b = getattr(batched, field.name)
        assert a == b, f"{field.name}: scalar {a!r} != batched {b!r}"


# ----------------------------------------------------------------------
# Per-layer parity
# ----------------------------------------------------------------------
class TestLayerParity:
    @pytest.mark.parametrize("style", BATCH_STYLES)
    def test_exact_parity_all_styles(self, style, cost_model, tiny_model):
        """Every CostReport field matches exactly on a dense sweep across
        CONV, DWCONV, PWCONV, and GEMM layers."""
        pes = np.array([1, 2, 3, 7, 16, 64, 128, 500])
        l1 = np.array([1, 5, 19, 64, 129, 300, 2048, 9999])
        for layer in tiny_model:
            batch = cost_model.evaluate_layer_batch(
                layer, style, np.repeat(pes, len(l1)), np.tile(l1, len(pes)))
            i = 0
            for p in pes:
                for b in l1:
                    scalar = cost_model.evaluate_layer(layer, style,
                                                       int(p), int(b))
                    assert_reports_equal(scalar, batch.report(i))
                    i += 1

    def test_random_fuzz_parity(self, cost_model, model_layers):
        rng = np.random.default_rng(0)
        table = LayerTable.build(model_layers)
        n = 300
        layer_idx = rng.integers(0, len(model_layers), n)
        style_idx = rng.integers(0, len(BATCH_STYLES), n)
        pes = rng.integers(1, 300, n)
        l1 = rng.integers(1, 4000, n)
        batch = cost_model.batched.evaluate(table, layer_idx, style_idx,
                                            pes, l1)
        for i in range(n):
            scalar = cost_model.evaluate_layer(
                model_layers[layer_idx[i]], BATCH_STYLES[style_idx[i]],
                int(pes[i]), int(l1[i]))
            assert_reports_equal(scalar, batch.report(i))

    def test_objective_and_constraint_lookup(self, cost_model, conv_layer):
        batch = cost_model.evaluate_layer_batch(
            conv_layer, "dla", np.array([4, 8]), np.array([19, 39]))
        assert np.all(batch.objective("edp")
                      == batch.energy_nj * batch.latency_cycles)
        assert np.all(batch.constraint("area") == batch.area_um2)
        with pytest.raises(KeyError, match="objective"):
            batch.objective("nope")
        with pytest.raises(KeyError, match="constraint"):
            batch.constraint("nope")

    def test_rejects_bad_inputs(self, cost_model, conv_layer, tiny_model):
        table = LayerTable.build(tiny_model)
        ones = np.ones(2, dtype=np.int64)
        with pytest.raises(ValueError, match="pes"):
            cost_model.batched.evaluate(table, ones * 0, 0, ones * 0, ones)
        with pytest.raises(ValueError, match="l1_bytes"):
            cost_model.batched.evaluate(table, ones * 0, 0, ones, ones * 0)
        with pytest.raises(ValueError, match="style"):
            cost_model.batched.evaluate(table, ones * 0, 9, ones, ones)
        with pytest.raises(ValueError, match="layer_idx"):
            cost_model.batched.evaluate(table, ones * 99, 0, ones, ones)
        with pytest.raises(ValueError, match="empty"):
            cost_model.evaluate_layer_batch(conv_layer, "dla",
                                            np.array([], dtype=int),
                                            np.array([], dtype=int))
        with pytest.raises(ValueError, match="zero layers"):
            LayerTable.build([])


# ----------------------------------------------------------------------
# Whole-model / population parity
# ----------------------------------------------------------------------
def _constraints(layers, cost_model):
    space = ActionSpace.build("dla")
    return [
        platform_constraint(layers, "dla", "area", "iot", cost_model, space),
        platform_constraint(layers, "dla", "power", "cloud", cost_model,
                            space),
        ResourceConstraint(max_pes=250, max_l1_bytes=30_000),
    ]


def _random_genomes(rng, space, num_layers, count):
    genomes = []
    for _ in range(count):
        genome = []
        for _ in range(num_layers):
            genome.append(int(rng.integers(space.num_levels)))
            genome.append(int(rng.integers(space.num_levels)))
            if space.is_mix:
                genome.append(int(rng.integers(len(space.dataflows))))
        genomes.append(genome)
    return genomes


class TestPopulationParity:
    @pytest.mark.parametrize("mix", [False, True])
    @pytest.mark.parametrize("deployment", ["lp", "ls"])
    @pytest.mark.parametrize("objective", ["latency", "energy", "edp"])
    def test_population_matches_scalar(self, mix, deployment, objective,
                                       cost_model, model_layers):
        """evaluate_population == per-genome evaluate_genome, exactly,
        across MIX/fixed styles, LP/LS deployments, every objective, and
        both constraint kinds."""
        rng = np.random.default_rng(42)
        space = ActionSpace.build("dla", mix=mix)
        for constraint in _constraints(model_layers, cost_model):
            evaluator = DesignPointEvaluator(
                model_layers, objective, constraint, cost_model, space,
                dataflow=None if mix else "dla", deployment=deployment)
            genomes = _random_genomes(rng, space, len(model_layers), 25)
            batched = evaluator.evaluate_population(genomes)
            for genome, outcome in zip(genomes, batched):
                scalar = evaluator.evaluate_genome(genome)
                assert outcome.cost == scalar.cost
                assert outcome.feasible == scalar.feasible
                assert outcome.used == scalar.used
                assert (outcome.report.latency_cycles
                        == scalar.report.latency_cycles)
                assert outcome.report.energy_nj == scalar.report.energy_nj
                assert outcome.report.area_um2 == scalar.report.area_um2
                assert outcome.report.power_mw == scalar.report.power_mw

    def test_population_raw_mix_assignments(self, cost_model, model_layers):
        """Raw assignments carrying explicit per-layer styles (the MIX
        genome format of the stage-2 GA)."""
        rng = np.random.default_rng(3)
        space = ActionSpace.build(mix=True)
        constraint = _constraints(model_layers, cost_model)[0]
        evaluator = DesignPointEvaluator(
            model_layers, "latency", constraint, cost_model, space)
        populations = [
            [(int(rng.integers(1, 128)), int(rng.integers(1, 2048)),
              BATCH_STYLES[int(rng.integers(3))])
             for _ in model_layers]
            for _ in range(12)
        ]
        batched = evaluator.evaluate_population_raw(populations)
        for assignments, outcome in zip(populations, batched):
            scalar = evaluator.evaluate_raw(assignments)
            assert outcome.cost == scalar.cost
            assert outcome.feasible == scalar.feasible
            assert outcome.used == scalar.used

    def test_empty_population(self, cost_model, model_layers):
        space = ActionSpace.build("dla")
        constraint = _constraints(model_layers, cost_model)[0]
        evaluator = DesignPointEvaluator(
            model_layers, "latency", constraint, cost_model, space,
            dataflow="dla")
        assert evaluator.evaluate_population([]) == []
        assert evaluator.evaluate_population_raw([]) == []
        assert evaluator.evaluations == 0

    def test_population_counts_evaluations(self, cost_model, model_layers):
        space = ActionSpace.build("dla")
        constraint = _constraints(model_layers, cost_model)[0]
        evaluator = DesignPointEvaluator(
            model_layers, "latency", constraint, cost_model, space,
            dataflow="dla")
        genomes = _random_genomes(np.random.default_rng(0), space,
                                  len(model_layers), 7)
        evaluator.evaluate_population(genomes)
        assert evaluator.evaluations == 7

    def test_population_rejects_bad_genomes(self, cost_model, model_layers):
        space = ActionSpace.build("dla")
        constraint = _constraints(model_layers, cost_model)[0]
        evaluator = DesignPointEvaluator(
            model_layers, "latency", constraint, cost_model, space,
            dataflow="dla")
        with pytest.raises(ValueError, match="length"):
            evaluator.evaluate_population([[0, 0]])
        bad = [0] * evaluator.genome_length
        bad[0] = space.num_levels
        with pytest.raises(ValueError, match="PE level"):
            evaluator.evaluate_population([bad])


# ----------------------------------------------------------------------
# Model-level study helpers
# ----------------------------------------------------------------------
class TestStudyParity:
    def test_layer_contour_matches_scalar(self, cost_model, model_layers):
        space = ActionSpace.build("dla")
        layer = model_layers[4]
        grid = ls_study.layer_contour(layer, "dla", "latency", cost_model,
                                      space)
        for pe_idx, pes in enumerate(space.pe_levels):
            for buf_idx, l1_bytes in enumerate(space.buf_levels):
                report = cost_model.evaluate_layer(layer, "dla", pes,
                                                   l1_bytes)
                assert grid[pe_idx, buf_idx] == report.latency_cycles

    def test_uniform_sweep_matches_uniform_cost(self, cost_model,
                                                model_layers):
        space = ActionSpace.build("dla")
        for objective in ("latency", "energy", "edp"):
            grid = ls_study.uniform_sweep(model_layers, "dla", objective,
                                          cost_model, space)
            for pe_idx in (0, 5, 11):
                for buf_idx in (0, 5, 11):
                    expected = ls_study.uniform_cost(
                        model_layers, "dla", objective, cost_model,
                        space.pe_levels[pe_idx], space.buf_levels[buf_idx])
                    assert grid[pe_idx, buf_idx] == expected


# ----------------------------------------------------------------------
# Seeded end-to-end search equivalence through the batch path
# ----------------------------------------------------------------------
class TestSearchEquivalence:
    @pytest.mark.parametrize("name", sorted(BASELINE_OPTIMIZERS))
    def test_baseline_batch_equals_scalar(self, name, cost_model,
                                          model_layers):
        """Every baseline optimizer returns identical best costs, genomes,
        and convergence histories through the batch path."""
        space = ActionSpace.build("dla")
        constraint = _constraints(model_layers, cost_model)[0]

        def run(use_batch):
            evaluator = DesignPointEvaluator(
                model_layers, "latency", constraint, cost_model, space,
                dataflow="dla")
            optimizer = BASELINE_OPTIMIZERS[name](seed=11,
                                                  use_batch=use_batch)
            return optimizer.search(evaluator, 60)

        batched, scalar = run(True), run(False)
        assert batched.best_cost == scalar.best_cost
        assert batched.best_genome == scalar.best_genome
        assert batched.history == scalar.history
        assert batched.evaluations == scalar.evaluations

    def test_local_ga_batch_equals_scalar(self, cost_model, model_layers):
        space = ActionSpace.build("dla")
        constraint = _constraints(model_layers, cost_model)[0]

        def run(**kwargs):
            evaluator = DesignPointEvaluator(
                model_layers, "latency", constraint, cost_model, space,
                dataflow="dla")
            seed_assignments = evaluator.decode_genome(
                [2, 2] * len(model_layers))
            ga = LocalGA(population_size=10, seed=9, **kwargs)
            return ga.search(evaluator, seed_assignments, generations=15)

        batched = run()
        scalar = run(use_batch=False, memoize=False)
        assert batched.best_cost == scalar.best_cost
        assert batched.best_assignments == scalar.best_assignments
        assert batched.history == scalar.history
        # evaluations keeps sample-count semantics regardless of the memo.
        assert batched.evaluations == scalar.evaluations

    def test_local_ga_memo_skips_duplicate_offspring(self, cost_model,
                                                     model_layers):
        """With the paper's low mutation rate, elitism breeds duplicate
        offspring; the memo must serve them without estimator calls."""
        space = ActionSpace.build("dla")
        constraint = _constraints(model_layers, cost_model)[0]
        evaluator = DesignPointEvaluator(
            model_layers, "latency", constraint, cost_model, space,
            dataflow="dla")
        seed_assignments = evaluator.decode_genome(
            [2, 2] * len(model_layers))
        ga = LocalGA(population_size=10, mutation_rate=0.02,
                     crossover_rate=0.0, seed=1)
        result = ga.search(evaluator, seed_assignments, generations=20)
        assert result.cache_hits > 0
        # ``evaluations`` reports all fitness samples (memo hits
        # included); only the difference reached the estimator.
        total_lookups = 10 + 20 * (10 - ga.elite)
        assert result.evaluations == total_lookups
        assert evaluator.evaluations == total_lookups - result.cache_hits


# ----------------------------------------------------------------------
# Population dedup memo (duplicate design points hit the kernel once)
# ----------------------------------------------------------------------
class TestPopulationDedup:
    def _evaluator(self, cost_model, model_layers, deployment="lp"):
        space = ActionSpace.build("dla")
        constraint = _constraints(model_layers, cost_model)[0]
        return DesignPointEvaluator(model_layers, "latency", constraint,
                                    cost_model, space, dataflow="dla",
                                    deployment=deployment)

    @pytest.mark.parametrize("deployment", ["lp", "ls"])
    def test_duplicates_bit_identical_and_counted(self, cost_model,
                                                  model_layers,
                                                  deployment):
        """A population with duplicate rows returns exactly the per-genome
        scalar results while the duplicates are served from the memo."""
        evaluator = self._evaluator(cost_model, model_layers, deployment)
        reference = self._evaluator(cost_model, model_layers, deployment)
        rng = np.random.default_rng(0)
        space = evaluator.space
        unique = _random_genomes(rng, space, len(model_layers), 6)
        population = unique + unique[:4] + [unique[2]]
        outcomes = evaluator.evaluate_population(population)
        assert evaluator.cache_hits == 5
        # the budget currency still charges the full population
        assert evaluator.evaluations == len(population)
        for genome, outcome in zip(population, outcomes):
            scalar = reference.evaluate_genome(genome)
            assert outcome.cost == scalar.cost
            assert outcome.feasible == scalar.feasible
            assert outcome.used == scalar.used
            assert outcome.report.latency_cycles \
                == scalar.report.latency_cycles

    def test_all_unique_population_untouched(self, cost_model,
                                             model_layers):
        evaluator = self._evaluator(cost_model, model_layers)
        rng = np.random.default_rng(1)
        genomes = _random_genomes(rng, evaluator.space,
                                  len(model_layers), 8)
        evaluator.evaluate_population(genomes)
        assert evaluator.cache_hits == 0

    def test_raw_population_dedups_too(self, cost_model, model_layers):
        evaluator = self._evaluator(cost_model, model_layers)
        assignments = evaluator.decode_genome([3, 3] * len(model_layers))
        outcomes = evaluator.evaluate_population_raw(
            [assignments, assignments, assignments])
        assert evaluator.cache_hits == 2
        assert len({o.cost for o in outcomes}) == 1

    def test_genome_optimizer_reports_cache_hits(self, cost_model,
                                                 model_layers):
        """Elitist GA generations re-breed duplicates; the search result
        surfaces how many the evaluator memo absorbed."""
        evaluator = self._evaluator(cost_model, model_layers)
        ga = BASELINE_OPTIMIZERS["ga"](seed=0)
        result = ga.search(evaluator, 120)
        assert result.cache_hits == evaluator.cache_hits
        assert result.evaluations == 120
