"""Cross-module integration tests: full pipelines on realistic slices."""

import pytest

from repro import ConfuciuX, JointSearch, get_model
from repro.costmodel import CostModel
from repro.experiments import TaskSpec, compare_methods
from repro.experiments.lp_study import winners


@pytest.fixture(scope="module")
def shared_cost_model():
    return CostModel()


class TestFullPipelines:
    @pytest.mark.parametrize("dataflow", ["dla", "eye", "shi"])
    def test_pipeline_per_dataflow(self, shared_cost_model, dataflow):
        layers = get_model("mobilenet_v2")[:8]
        pipeline = ConfuciuX(layers, dataflow=dataflow, platform="iot",
                             seed=0, cost_model=shared_cost_model)
        result = pipeline._run(global_epochs=50, finetune_generations=15)
        assert result.best_cost is not None
        util = result.utilization()
        assert util.used <= util.budget

    @pytest.mark.parametrize("model", ["ncf", "gnmt"])
    def test_gemm_models_end_to_end(self, shared_cost_model, model):
        layers = get_model(model)[:8]
        pipeline = ConfuciuX(layers, platform="cloud", seed=0,
                             cost_model=shared_cost_model)
        result = pipeline._run(global_epochs=40, finetune_generations=10)
        assert result.best_cost is not None

    def test_tighter_constraints_cost_more(self, shared_cost_model):
        # Tightening the platform tier can only hurt the best objective.
        layers = get_model("mobilenet_v2")[:8]
        costs = {}
        for platform in ("cloud", "iot"):
            pipeline = ConfuciuX(layers, platform=platform, seed=0,
                                 cost_model=shared_cost_model)
            result = pipeline._run(global_epochs=80, finetune_generations=30)
            costs[platform] = result.best_cost
        assert costs["iot"] >= costs["cloud"] * 0.95

    def test_reinforce_beats_weakest_baselines_tight(self,
                                                     shared_cost_model):
        # The Table-IV shape: under a tight budget, random/SA/GA struggle
        # while Con'X(global) finds a feasible point.
        task = TaskSpec(model="mobilenet_v2", layer_slice=10,
                        platform="iotx")
        results = compare_methods(task, ["random", "sa", "ga", "reinforce"],
                                  epochs=120, seed=0,
                                  cost_model=shared_cost_model)
        assert results["reinforce"].feasible
        baseline_best = [r.best_cost for name, r in results.items()
                         if name != "reinforce" and r.best_cost is not None]
        if baseline_best:
            assert results["reinforce"].best_cost <= min(baseline_best) * 2.0

    def test_mix_pipeline_with_finetune(self, shared_cost_model):
        layers = get_model("mobilenet_v2")[:8]
        search = JointSearch(layers, platform="iot", seed=0,
                             cost_model=shared_cost_model)
        result = search.run(global_epochs=50, finetune_generations=10)
        assert result.best_cost is not None
        assert all(len(a) == 3 for a in result.best_assignments)

    def test_winner_is_reinforce_or_close(self, shared_cost_model):
        task = TaskSpec(model="mobilenet_v2", layer_slice=8, platform="iot")
        results = compare_methods(task, ["ga", "reinforce"], epochs=100,
                                  seed=0, cost_model=shared_cost_model)
        best = winners(results)
        assert best, "no method found a feasible design"
        if "reinforce" not in best:
            ratio = (results["reinforce"].best_cost
                     / results[best[0]].best_cost)
            assert ratio < 2.0


class TestCostModelScalability:
    def test_full_mobilenet_evaluates_quickly(self, shared_cost_model):
        import time
        layers = get_model("mobilenet_v2")
        assignments = [(16, 39)] * len(layers)
        started = time.perf_counter()
        report = shared_cost_model.evaluate_model(layers, assignments,
                                                  dataflow="dla")
        elapsed = time.perf_counter() - started
        assert report.latency_cycles > 0
        assert elapsed < 1.0

    @pytest.mark.parametrize("model", ["resnet50", "transformer"])
    def test_large_models_evaluate(self, shared_cost_model, model):
        layers = get_model(model)
        report = shared_cost_model.evaluate_model(
            layers, [(64, 99)] * len(layers), dataflow="dla")
        assert report.latency_cycles > 0
        assert len(report.per_layer) == len(layers)
