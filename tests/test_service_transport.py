"""The ND-JSON transport and its Python client, over a real socket.

One ephemeral-port server per test class; the tests drive the same wire
operations the ``repro submit`` / ``jobs`` / ``cache`` CLI uses, plus
protocol-level edge cases (bad JSON, unknown ops, errors crossing the
boundary) that the client never generates itself.
"""

from __future__ import annotations

import json
import socket

import pytest

from repro.search.spec import SearchSpec
from repro.service import (
    ResultStore,
    SearchServer,
    ServiceClient,
    ServiceError,
    probe,
    start_transport,
)


def _spec(**overrides) -> SearchSpec:
    base = dict(model="mnasnet", method="random", budget=40, seed=0,
                layer_slice=3)
    base.update(overrides)
    return SearchSpec(**base)


@pytest.fixture
def service(tmp_path):
    server = SearchServer(store=ResultStore(root=tmp_path / "cache"),
                          executor="serial", progress_every=5)
    transport = start_transport(server, port=0)
    try:
        yield transport.server_address[1]
    finally:
        transport.shutdown()
        transport.server_close()
        server.close()


class TestClient:
    def test_ping_and_probe(self, service):
        import repro

        with ServiceClient(port=service) as client:
            assert client.ping() == repro.__version__
        assert probe("127.0.0.1", service)
        assert not probe("127.0.0.1", 1)  # nothing listens there

    def test_submit_roundtrip_and_cache_hit(self, service):
        with ServiceClient(port=service) as client:
            first = client.submit(_spec())
            second = client.submit(_spec())
            assert second.to_dict() == first.to_dict()
            stats = client.stats()
            assert stats["executions"] == 1
            assert stats["cache"]["hits"] == 1

    def test_async_submit_status_result(self, service):
        with ServiceClient(port=service) as client:
            job = client.submit(_spec(), wait=False)
            assert job["id"].startswith("j")
            result = client.result(job["id"])
            status = client.status(job["id"])
            assert status["state"] == "DONE"
            assert result.spec == _spec()

    def test_watch_streams_events_then_final_response(self, service):
        with ServiceClient(port=service) as client:
            messages = list(client.watch(_spec()))
            final = messages[-1]
            assert final["ok"] and final["job"]["state"] == "DONE"
            events = [m["event"] for m in messages[:-1]]
            assert events, "expected at least the state events"
            assert all("ok" not in m for m in messages[:-1])
            assert events[-1]["type"] == "state"

    def test_jobs_listing_and_cancel_noop(self, service):
        with ServiceClient(port=service) as client:
            client.submit(_spec())
            jobs = client.jobs()
            assert len(jobs) == 1 and jobs[0]["state"] == "DONE"
            assert not client.cancel(jobs[0]["id"])

    def test_cache_stats_and_clear_over_the_wire(self, service):
        with ServiceClient(port=service) as client:
            client.submit(_spec())
            assert client.cache_stats()["entries"] == 1
            assert client.cache_clear() == 1
            assert client.cache_stats()["entries"] == 0

    def test_force_over_the_wire(self, service):
        with ServiceClient(port=service) as client:
            client.submit(_spec())
            client.submit(_spec(), force=True)
            assert client.stats()["executions"] == 2

    def test_error_crosses_the_boundary_typed(self, service):
        with ServiceClient(port=service) as client:
            with pytest.raises(ServiceError):
                client.status("j999")
            # The connection survives an error response.
            assert client.ping()

    def test_connect_retry_gives_up_cleanly(self):
        with pytest.raises(OSError):
            ServiceClient(port=1, connect_timeout=0.2)


class TestWireProtocol:
    def _raw(self, port, lines):
        with socket.create_connection(("127.0.0.1", port),
                                      timeout=10) as sock:
            handle = sock.makefile("rwb")
            responses = []
            for line in lines:
                handle.write(line.encode("utf-8") + b"\n")
                handle.flush()
                responses.append(
                    json.loads(handle.readline().decode("utf-8")))
            return responses

    def test_bad_json_yields_an_error_line(self, service):
        bad, good = self._raw(service, ["{not json", '{"op": "ping"}'])
        assert bad["ok"] is False and "bad request" in bad["error"]
        assert good["ok"] is True

    def test_non_object_request_is_rejected(self, service):
        response, = self._raw(service, ['["op", "ping"]'])
        assert response["ok"] is False

    def test_unknown_op_is_rejected(self, service):
        response, = self._raw(service, ['{"op": "frobnicate"}'])
        assert response["ok"] is False
        assert "frobnicate" in response["error"]

    def test_invalid_spec_surfaces_as_error(self, service):
        response, = self._raw(
            service,
            ['{"op": "submit", "spec": {"model": "nope"}}'])
        assert response["ok"] is False
        assert "nope" in response["error"]

    def test_blank_lines_are_ignored(self, service):
        with socket.create_connection(("127.0.0.1", service),
                                      timeout=10) as sock:
            handle = sock.makefile("rwb")
            handle.write(b"\n\n" + b'{"op": "ping"}\n')
            handle.flush()
            response = json.loads(handle.readline().decode("utf-8"))
            assert response["ok"] is True
