"""Unit tests for the Layer record and its derived quantities."""

import pytest

from repro.models.layers import (
    Layer,
    LayerType,
    ModelSummary,
    gemm_layer,
    summarize,
)


class TestLayerValidation:
    def test_valid_conv(self):
        layer = Layer("l", LayerType.CONV, K=8, C=4, Y=16, X=16, R=3, S=3)
        assert layer.K == 8

    @pytest.mark.parametrize("dim", ["K", "C", "Y", "X", "R", "S", "stride"])
    def test_rejects_nonpositive_dims(self, dim):
        kwargs = dict(K=8, C=4, Y=16, X=16, R=3, S=3, stride=1)
        kwargs[dim] = 0
        with pytest.raises(ValueError, match="positive integer"):
            Layer("l", LayerType.CONV, **kwargs)

    @pytest.mark.parametrize("dim", ["K", "C"])
    def test_rejects_non_integer_dims(self, dim):
        kwargs = dict(K=8, C=4, Y=16, X=16, R=3, S=3)
        kwargs[dim] = 2.5
        with pytest.raises(ValueError):
            Layer("l", LayerType.CONV, **kwargs)

    def test_rejects_kernel_larger_than_input(self):
        with pytest.raises(ValueError, match="kernel"):
            Layer("l", LayerType.CONV, K=8, C=4, Y=2, X=16, R=3, S=3)

    def test_dwconv_requires_equal_channels(self):
        with pytest.raises(ValueError, match="K == C"):
            Layer("l", LayerType.DWCONV, K=8, C=4, Y=16, X=16, R=3, S=3)

    def test_pwconv_requires_1x1(self):
        with pytest.raises(ValueError, match="1x1"):
            Layer("l", LayerType.PWCONV, K=8, C=4, Y=16, X=16, R=3, S=3)

    def test_frozen(self):
        layer = Layer("l", LayerType.CONV, K=8, C=4, Y=16, X=16, R=3, S=3)
        with pytest.raises(AttributeError):
            layer.K = 16


class TestDerivedQuantities:
    def test_output_dims_valid_padding(self):
        layer = Layer("l", LayerType.CONV, K=8, C=4, Y=16, X=10, R=3, S=3)
        assert layer.out_y == 14
        assert layer.out_x == 8

    def test_output_dims_with_stride(self):
        layer = Layer("l", LayerType.CONV, K=8, C=4, Y=17, X=17, R=3, S=3,
                      stride=2)
        assert layer.out_y == 8
        assert layer.out_x == 8

    def test_conv_macs(self):
        layer = Layer("l", LayerType.CONV, K=8, C=4, Y=6, X=6, R=3, S=3)
        assert layer.macs == 8 * 4 * 4 * 4 * 9

    def test_dwconv_macs_no_channel_reduction(self):
        layer = Layer("l", LayerType.DWCONV, K=4, C=4, Y=6, X=6, R=3, S=3)
        assert layer.macs == 4 * 4 * 4 * 9

    def test_pwconv_macs(self):
        layer = Layer("l", LayerType.PWCONV, K=8, C=4, Y=6, X=6)
        assert layer.macs == 8 * 4 * 36

    def test_weight_elements_conv(self):
        layer = Layer("l", LayerType.CONV, K=8, C=4, Y=6, X=6, R=3, S=3)
        assert layer.weight_elements == 8 * 4 * 9

    def test_weight_elements_dwconv(self):
        layer = Layer("l", LayerType.DWCONV, K=4, C=4, Y=6, X=6, R=3, S=3)
        assert layer.weight_elements == 4 * 9

    def test_input_output_elements(self):
        layer = Layer("l", LayerType.CONV, K=8, C=4, Y=6, X=6, R=3, S=3)
        assert layer.input_elements == 4 * 36
        assert layer.output_elements == 8 * 16

    def test_scaled_shrinks_channels(self):
        layer = Layer("l", LayerType.CONV, K=8, C=4, Y=6, X=6, R=3, S=3)
        half = layer.scaled(0.5)
        assert half.K == 4 and half.C == 2

    def test_scaled_dwconv_keeps_k_equals_c(self):
        layer = Layer("l", LayerType.DWCONV, K=8, C=8, Y=6, X=6, R=3, S=3)
        half = layer.scaled(0.5)
        assert half.K == half.C == 4

    def test_scaled_never_below_one(self):
        layer = Layer("l", LayerType.CONV, K=2, C=2, Y=6, X=6, R=3, S=3)
        tiny = layer.scaled(0.01)
        assert tiny.K == 1 and tiny.C == 1


class TestGemmLayer:
    def test_mapping_follows_footnote3(self):
        layer = gemm_layer("g", m=64, n=32, k=128)
        assert layer.layer_type is LayerType.GEMM
        assert (layer.K, layer.C, layer.Y) == (64, 128, 32)
        assert (layer.X, layer.R, layer.S) == (1, 1, 1)

    def test_gemm_macs(self):
        layer = gemm_layer("g", m=64, n=32, k=128)
        assert layer.macs == 64 * 32 * 128

    def test_gemm_weight_elements(self):
        layer = gemm_layer("g", m=64, n=32, k=128)
        assert layer.weight_elements == 64 * 128


class TestLayerType:
    def test_convolutional_predicate(self):
        assert LayerType.CONV.is_convolutional
        assert LayerType.DWCONV.is_convolutional
        assert LayerType.PWCONV.is_convolutional
        assert not LayerType.GEMM.is_convolutional

    def test_integer_values_are_stable(self):
        # These feed the observation encoding; changing them is breaking.
        assert list(LayerType) == [LayerType.CONV, LayerType.DWCONV,
                                   LayerType.PWCONV, LayerType.GEMM]
        assert [t.value for t in LayerType] == [0, 1, 2, 3]


class TestSummarize:
    def test_summary_counts(self, tiny_model):
        summary = summarize("tiny", tiny_model)
        assert isinstance(summary, ModelSummary)
        assert summary.num_layers == 4
        assert summary.total_macs == sum(l.macs for l in tiny_model)
        assert summary.layer_type_counts == {
            "CONV": 1, "DWCONV": 1, "PWCONV": 1, "GEMM": 1}

    def test_summary_weights(self, tiny_model):
        summary = summarize("tiny", tiny_model)
        assert summary.total_weights == sum(
            l.weight_elements for l in tiny_model)
