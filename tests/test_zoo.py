"""Tests for the model zoo: structures match the published architectures."""

import pytest

from repro.models import (
    MODEL_REGISTRY,
    get_model,
    gnmt,
    list_models,
    mnasnet,
    mobilenet_v2,
    ncf,
    resnet50,
    transformer,
)
from repro.models.layers import LayerType


class TestRegistry:
    def test_lists_six_models(self):
        assert list_models() == [
            "mobilenet_v2", "mnasnet", "resnet50", "gnmt", "transformer",
            "ncf",
        ]

    def test_get_model_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown model"):
            get_model("vgg16")

    @pytest.mark.parametrize("name", list(MODEL_REGISTRY))
    def test_builders_return_fresh_lists(self, name):
        first = get_model(name)
        second = get_model(name)
        assert first is not second
        assert first == second

    @pytest.mark.parametrize("name", list(MODEL_REGISTRY))
    def test_unique_layer_names(self, name):
        names = [layer.name for layer in get_model(name)]
        assert len(names) == len(set(names))

    @pytest.mark.parametrize("name", list(MODEL_REGISTRY))
    def test_all_dims_positive(self, name):
        for layer in get_model(name):
            assert min(layer.K, layer.C, layer.Y, layer.X, layer.R,
                       layer.S) >= 1


class TestMobileNetV2:
    def test_has_52_layers(self):
        # The paper repeatedly quotes "the 52-layer MobileNet-V2".
        assert len(mobilenet_v2()) == 52

    def test_17_depthwise_blocks(self):
        layers = mobilenet_v2()
        dw = [l for l in layers if l.layer_type is LayerType.DWCONV]
        assert len(dw) == 17

    def test_stem_and_head(self):
        layers = mobilenet_v2()
        assert layers[0].layer_type is LayerType.CONV
        assert layers[0].K == 32 and layers[0].stride == 2
        assert layers[-1].K == 1280

    def test_total_macs_close_to_reference(self):
        # Reference MobileNet-V2 @224 is ~300M MACs; valid-padding
        # bookkeeping keeps us within 15%.
        total = sum(l.macs for l in mobilenet_v2())
        assert 2.5e8 < total < 3.5e8

    def test_spatial_sizes_decrease(self):
        layers = mobilenet_v2()
        assert layers[0].Y == 224
        assert layers[-1].Y == 7


class TestResNet50:
    def test_has_53_mac_layers(self):
        # 49 bottleneck convs + 4 projection shortcuts.
        assert len(resnet50()) == 53

    def test_four_shortcuts(self):
        shortcuts = [l for l in resnet50() if "shortcut" in l.name]
        assert len(shortcuts) == 4

    def test_total_macs_close_to_reference(self):
        # ~3.8G MACs for ResNet-50 @224.
        total = sum(l.macs for l in resnet50())
        assert 3.0e9 < total < 4.5e9

    def test_final_channels(self):
        assert resnet50()[-1].K == 2048


class TestMnasNet:
    def test_structure(self):
        layers = mnasnet()
        assert layers[0].K == 32
        assert layers[-1].K == 1280
        dw = [l for l in layers if l.layer_type is LayerType.DWCONV]
        assert len(dw) == 16

    def test_has_5x5_kernels(self):
        # MnasNet-A1's distinguishing feature vs MobileNet-V2.
        assert any(l.R == 5 for l in mnasnet())


class TestGemmModels:
    def test_gnmt_structure(self):
        layers = gnmt()
        assert all(l.layer_type is LayerType.GEMM for l in layers)
        assert len(layers) == 19  # 8 enc + 2 attention + 8 dec + proj
        assert layers[-1].K == 32000

    def test_transformer_structure(self):
        layers = transformer()
        assert all(l.layer_type is LayerType.GEMM for l in layers)
        # 6 enc x 6 + 6 dec x 10 + vocab projection.
        assert len(layers) == 6 * 6 + 6 * 10 + 1

    def test_ncf_structure(self):
        layers = ncf()
        assert all(l.layer_type is LayerType.GEMM for l in layers)
        assert layers[-1].K == 1  # scalar prediction head

    def test_gnmt_parameterization(self):
        layers = gnmt(seq_len=64, hidden=512, vocab=1000)
        assert layers[0].K == 4 * 512
        assert layers[0].Y == 64
        assert layers[-1].K == 1000
