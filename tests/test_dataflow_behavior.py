"""Behavioural tests on cross-dataflow preferences.

These encode the paper's Table VI / Fig. 8 explanation: NVDLA-style (dla)
parallelizes channels and shines on late CNN layers with large K/C;
Eyeriss/ShiDianNao-style parallelize activations and shine on early layers
with large Y/X.
"""

import pytest

from repro.models import get_model
from repro.models.layers import Layer, LayerType


def best_style(cost_model, layer, pes=64, objective="latency"):
    costs = {}
    for style, l1 in (("dla", 69), ("eye", 27), ("shi", 24)):
        report = cost_model.evaluate_layer(layer, style, pes, l1)
        costs[style] = report.objective(objective)
    return min(costs, key=costs.get), costs


class TestStylePreferences:
    def test_early_layer_prefers_activation_parallel(self, cost_model):
        # Large activation plane, few channels: dla's K*C parallelism is
        # tiny while eye/shi can fill the array.
        early = Layer("early", LayerType.CONV, K=8, C=3, Y=112, X=112,
                      R=3, S=3)
        winner, costs = best_style(cost_model, early, pes=128)
        assert winner in ("eye", "shi")
        assert costs[winner] < costs["dla"]

    def test_late_layer_prefers_channel_parallel(self, cost_model):
        # Tiny plane, many channels: the paper's "most layers in CNNs have
        # large K/C" case where dla wins.
        late = Layer("late", LayerType.CONV, K=512, C=512, Y=7, X=7,
                     R=3, S=3)
        winner, costs = best_style(cost_model, late, pes=128)
        assert winner == "dla"
        assert costs["dla"] < min(costs["eye"], costs["shi"])

    def test_mobilenet_stem_vs_head(self, cost_model):
        layers = get_model("mobilenet_v2")
        stem_winner, _ = best_style(cost_model, layers[0], pes=128)
        head_winner, _ = best_style(cost_model, layers[-1], pes=128)
        assert stem_winner in ("eye", "shi")
        assert head_winner == "dla"

    @pytest.mark.parametrize("style", ["dla", "eye", "shi"])
    def test_gemm_layers_run_under_every_style(self, cost_model, gemm,
                                               style):
        report = cost_model.evaluate_layer(gemm, style, 32, 49)
        assert report.latency_cycles > 0

    def test_restricted_pes_shrink_dla_advantage(self, cost_model):
        # The Table VI explanation: tight constraints restrict dla's
        # parallelization advantage.  Measure dla's speedup over eye on a
        # channel-heavy layer at large vs small arrays.
        late = Layer("late", LayerType.CONV, K=512, C=512, Y=7, X=7,
                     R=3, S=3)

        def ratio(pes):
            dla = cost_model.evaluate_layer(late, "dla", pes, 69)
            eye = cost_model.evaluate_layer(late, "eye", pes, 27)
            return eye.latency_cycles / dla.latency_cycles

        assert ratio(128) >= ratio(2)


class TestEnergyBehaviour:
    def test_energy_has_interior_optimum_for_conv(self, cost_model):
        # Section IV-B: energy can fall with more resources (less static
        # energy) then rise (more leakage): the curve is not monotone for
        # at least one sweep direction.
        layer = Layer("mid", LayerType.CONV, K=96, C=96, Y=14, X=14,
                      R=3, S=3)
        energies = [
            cost_model.evaluate_layer(layer, "dla", pes, 69).energy_nj
            for pes in (1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 96, 128)
        ]
        decreasing_somewhere = any(b < a for a, b
                                   in zip(energies, energies[1:]))
        increasing_somewhere = any(b > a for a, b
                                   in zip(energies, energies[1:]))
        assert decreasing_somewhere and increasing_somewhere

    def test_small_buffer_raises_traffic_energy(self, cost_model):
        # Fewer resident filters -> more input re-fetches -> more L2/DRAM
        # energy on a channel-heavy layer at a small array.
        layer = Layer("mid", LayerType.CONV, K=256, C=16, Y=14, X=14,
                      R=3, S=3)
        tiny = cost_model.evaluate_layer(layer, "dla", 4, 19)
        roomy = cost_model.evaluate_layer(layer, "dla", 4, 129)
        assert tiny.l2_traffic_bytes > roomy.l2_traffic_bytes
