"""Fault-tolerance suite: supervision, retry, degradation, fault plans.

The fault-tolerance contract has three layers, and this file locks down
all of them:

* **Backend supervision** (:class:`repro.parallel.ProcessBackend`):
  workers killed, hung, or raising injected faults mid-batch are
  respawned and their lost shards re-dispatched, with results
  bit-identical to a crash-free run; the retry budget bounds recovery
  and exhaustion raises the structured error taxonomy with the pool
  cleanly shut down.
* **Degradation ladder** (:class:`repro.parallel.ResilientBackend` via
  :class:`repro.parallel.ParallelCoordinator`): a pool failing outright
  downshifts process -> thread -> serial, the session completes, and
  ``degraded_to`` lands in ``SessionResult.provenance`` alongside a
  structured ``on_warning`` notification.
* **Crash-safe sessions**: checkpoints are written atomically and carry
  the spec, so :meth:`CheckpointHook.resume` replays a killed run to
  the bit-identical final result; specs, results, and fault plans all
  survive serialize -> deserialize -> serialize unchanged (ROADMAP 5).

Everything here is driven by deterministic
:class:`~repro.parallel.FaultPlan` scripts -- no luck involved.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import warnings
from dataclasses import fields

import numpy as np
import pytest

import repro
from repro.core.serialization import search_result_to_dict
from repro.costmodel import CostModel
from repro.costmodel.batched import LayerTable
from repro.costmodel.constants import HardwareConfig
from repro.costmodel.report import BatchCostReport
from repro.models import get_model
from repro.parallel import (
    EXECUTORS,
    ExecutionError,
    FaultInjected,
    FaultPlan,
    ParallelCoordinator,
    ProcessBackend,
    ResilientBackend,
    TaskTimeoutError,
    ThreadBackend,
    WorkerCrashError,
    make_backend,
)
from repro.search import (
    CheckpointHook,
    SearchObserver,
    SearchSession,
    SearchSpec,
)

# ----------------------------------------------------------------------
# Shared fixtures
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def batch_case():
    """One reference batch (hardware, table, inputs, serial report)."""
    layers = get_model("mobilenet_v2")[:4]
    table = LayerTable.build(layers)
    hw = HardwareConfig()
    rng = np.random.default_rng(0)
    n = 64
    inputs = (rng.integers(0, 4, n), rng.integers(0, 3, n),
              rng.integers(8, 128, n), rng.integers(64, 4096, n))
    reference = make_backend("serial").evaluate(hw, table, *inputs)
    return hw, table, inputs, reference


def _assert_reports_equal(want: BatchCostReport,
                          got: BatchCostReport) -> None:
    for field in fields(BatchCostReport):
        np.testing.assert_array_equal(getattr(want, field.name),
                                      getattr(got, field.name))


def _orphan_workers():
    return [process for process in multiprocessing.active_children()
            if process.name.startswith("repro-worker")]


def _spec(**overrides) -> SearchSpec:
    base = dict(model="mobilenet_v2", method="ga", budget=40, seed=7,
                layer_slice=4, dispatch_min_batch=0)
    base.update(overrides)
    return SearchSpec(**base)


def _comparable(outcome) -> dict:
    data = search_result_to_dict(outcome.result)
    data.pop("wall_time_s", None)
    data["stopped_early"] = outcome.stopped_early
    return data


# ----------------------------------------------------------------------
# FaultPlan
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_round_trip_through_json(self):
        plan = FaultPlan(kill_worker=[(0, 0), (3, 1)],
                         raise_in_kernel=[(2, 0)],
                         delay_s=[(1, 1, 0.25)], seed=None)
        assert FaultPlan.from_json(plan.to_json()) == plan
        # serialize -> deserialize -> serialize is a fixed point.
        assert FaultPlan.from_json(plan.to_json()).to_json() \
            == plan.to_json()

    def test_seeded_plans_are_deterministic(self):
        assert FaultPlan.seeded(5) == FaultPlan.seeded(5)
        assert FaultPlan.seeded(5) != FaultPlan.seeded(6)
        plan = FaultPlan.seeded(5, kills=2, raises=1)
        assert len(plan.kill_worker) == 2
        assert len(plan.raise_in_kernel) == 1
        assert plan.seed == 5

    def test_parse_forms(self, tmp_path):
        plan = FaultPlan(kill_worker=[(1, 0)])
        assert FaultPlan.parse(plan.to_json()) == plan
        assert FaultPlan.parse("seed:3") == FaultPlan.seeded(3)
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        assert FaultPlan.parse(str(path)) == plan

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv("REPRO_FAULTS", "")
        assert FaultPlan.from_env() is None
        monkeypatch.setenv("REPRO_FAULTS", "seed:2")
        assert FaultPlan.from_env() == FaultPlan.seeded(2)

    def test_rejects_malformed_entries(self):
        with pytest.raises(ValueError, match="pairs"):
            FaultPlan(kill_worker=[(1, 2, 3)])
        with pytest.raises(ValueError, match="non-negative"):
            FaultPlan(kill_worker=[(-1, 0)])
        with pytest.raises(ValueError, match="triples"):
            FaultPlan(delay_s=[(1, 2)])
        with pytest.raises(ValueError, match="unknown"):
            FaultPlan.from_dict({"explode_at": [[0, 0]]})

    def test_per_worker_slices(self):
        plan = FaultPlan(kill_worker=[(0, 0), (2, 0), (1, 1)],
                         delay_s=[(4, 1, 0.5)])
        assert plan.kills_for(0) == [0, 2]
        assert plan.kills_for(1) == [1]
        assert plan.delays_for(1) == [(4, 0.5)]
        assert not plan.empty
        assert FaultPlan().empty


# ----------------------------------------------------------------------
# Backend supervision and recovery
# ----------------------------------------------------------------------
class TestSupervision:
    def test_kill_recovery_is_bit_identical(self, batch_case):
        """Workers killed at two different batches: both respawned, all
        five batches bit-identical to serial."""
        hw, table, inputs, reference = batch_case
        plan = FaultPlan(kill_worker=[(0, 0), (1, 1)])
        with ProcessBackend(workers=2, fault_plan=plan,
                            backoff_base_s=0.01) as backend:
            for _ in range(3):
                _assert_reports_equal(reference,
                                      backend.evaluate(hw, table, *inputs))
            assert backend.respawns == 2
            assert backend.retries == 2
            assert backend.alive_workers == 2
        assert not _orphan_workers()

    def test_injected_raise_is_retried_in_place(self, batch_case):
        """A raise_in_kernel fault is fire-once: the shard is re-sent to
        the same (alive) worker and the batch completes identically."""
        hw, table, inputs, reference = batch_case
        plan = FaultPlan(raise_in_kernel=[(0, 1)])
        with ProcessBackend(workers=2, fault_plan=plan,
                            backoff_base_s=0.01) as backend:
            _assert_reports_equal(reference,
                                  backend.evaluate(hw, table, *inputs))
            assert backend.retries == 1
            assert backend.respawns == 0

    def test_hung_worker_is_terminated_and_recovered(self, batch_case):
        """A delay fault far beyond the deadline: the hung worker is
        terminated, replaced, and the batch still matches serial."""
        hw, table, inputs, reference = batch_case
        plan = FaultPlan(delay_s=[(0, 1, 30.0)])
        with ProcessBackend(workers=2, fault_plan=plan,
                            task_timeout_s=0.5,
                            backoff_base_s=0.01) as backend:
            _assert_reports_equal(reference,
                                  backend.evaluate(hw, table, *inputs))
            assert backend.timeouts >= 1
            assert backend.respawns >= 1
            _assert_reports_equal(reference,
                                  backend.evaluate(hw, table, *inputs))
        assert not _orphan_workers()

    def test_retry_exhaustion_raises_worker_crash_error(self, batch_case):
        """Kill entries are a multiset: enough of them exhaust the
        budget, and the typed error arrives with the pool shut down."""
        hw, table, inputs, _ = batch_case
        plan = FaultPlan(kill_worker=[(0, 0)] * 4)
        backend = ProcessBackend(workers=2, fault_plan=plan,
                                 max_retries=2, backoff_base_s=0.0)
        with pytest.raises(WorkerCrashError) as caught:
            backend.evaluate(hw, table, *inputs)
        assert caught.value.worker_names
        assert isinstance(caught.value, ExecutionError)
        assert isinstance(caught.value, RuntimeError)
        assert backend.alive_workers == 0
        assert not _orphan_workers()

    def test_timeout_exhaustion_raises_task_timeout_error(self, batch_case):
        """Every incarnation of worker 1 hangs: the deadline exhausts
        the budget and TaskTimeoutError carries the deadline."""
        hw, table, inputs, _ = batch_case
        plan = FaultPlan(delay_s=[(0, 1, 30.0)] * 3)
        backend = ProcessBackend(workers=2, fault_plan=plan,
                                 task_timeout_s=0.3, max_retries=1,
                                 backoff_base_s=0.0)
        with pytest.raises(TaskTimeoutError) as caught:
            backend.evaluate(hw, table, *inputs)
        assert caught.value.timeout_s == 0.3
        assert backend.alive_workers == 0
        assert not _orphan_workers()

    def test_zero_retries_disables_recovery(self, batch_case):
        hw, table, inputs, _ = batch_case
        plan = FaultPlan(kill_worker=[(0, 0)])
        backend = ProcessBackend(workers=2, fault_plan=plan, max_retries=0)
        with pytest.raises(WorkerCrashError):
            backend.evaluate(hw, table, *inputs)
        assert not _orphan_workers()

    def test_genuine_kernel_error_is_not_retried(self, batch_case,
                                                 monkeypatch):
        """A deterministic kernel bug must surface immediately as a
        plain RuntimeError -- retries would only replay it -- and leave
        the recovery counters untouched."""
        # Pin a fault-free pool even under the CI chaos leg, which
        # exports $REPRO_FAULTS globally: this test is about counters
        # staying at zero.
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        hw, table, inputs, reference = batch_case
        with ProcessBackend(workers=2) as backend:
            with pytest.raises(RuntimeError, match="worker"):
                backend.evaluate(hw, table,
                                 np.array([99], dtype=np.int64),
                                 np.array([0], dtype=np.int64),
                                 np.array([4], dtype=np.int64),
                                 np.array([64], dtype=np.int64))
            assert backend.retries == 0
            # The pool survives for the next valid batch.
            _assert_reports_equal(reference,
                                  backend.evaluate(hw, table, *inputs))

    def test_env_knobs_resolve_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_RETRIES", "7")
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "2.5")
        backend = ProcessBackend(workers=1)
        assert backend.max_retries == 7
        assert backend.task_timeout_s == 2.5
        monkeypatch.setenv("REPRO_MAX_RETRIES", "-1")
        with pytest.raises(ValueError, match="REPRO_MAX_RETRIES"):
            ProcessBackend(workers=1)


# ----------------------------------------------------------------------
# Degradation ladder
# ----------------------------------------------------------------------
class TestDegradation:
    def test_process_degrades_to_thread_then_serial(self, batch_case):
        """Exhaustion on the process rung, an injected thread fault on
        the next: the wrapper walks the whole ladder and the batch still
        matches serial bit for bit."""
        hw, table, inputs, reference = batch_case
        plan = FaultPlan(kill_worker=[(0, 0)] * 3,
                         raise_in_kernel=[(0, 0)])
        downshifts = []
        inner = ProcessBackend(workers=2, fault_plan=plan, max_retries=1,
                               backoff_base_s=0.0)
        resilient = ResilientBackend(
            inner, on_degrade=lambda error, a, b: downshifts.append((a, b)))
        _assert_reports_equal(reference,
                              resilient.evaluate(hw, table, *inputs))
        assert resilient.degraded_to == "serial"
        assert downshifts == [("process", "thread"), ("thread", "serial")]
        stats = resilient.stats()
        assert stats["pool_failures"] == 2
        assert stats["degraded_to"] == "serial"
        assert stats["retries"] >= 2
        resilient.shutdown()
        assert not _orphan_workers()

    def test_thread_fault_degrades_to_serial(self, batch_case):
        hw, table, inputs, reference = batch_case
        plan = FaultPlan(raise_in_kernel=[(0, 0)])
        resilient = ResilientBackend(
            ThreadBackend(workers=2, fault_plan=plan))
        _assert_reports_equal(reference,
                              resilient.evaluate(hw, table, *inputs))
        assert resilient.degraded_to == "serial"
        resilient.shutdown()

    def test_degrade_after_allows_same_rung_restarts(self, batch_case):
        """degrade_after=2: the first pool failure re-runs the batch on
        a fresh process pool instead of downshifting."""
        hw, table, inputs, reference = batch_case
        plan = FaultPlan(kill_worker=[(0, 0)] * 2)
        inner = ProcessBackend(workers=2, fault_plan=plan, max_retries=1,
                               backoff_base_s=0.0)
        resilient = ResilientBackend(inner, degrade_after=2)
        _assert_reports_equal(reference,
                              resilient.evaluate(hw, table, *inputs))
        assert resilient.degraded_to is None
        assert resilient.pool_failures == 1
        assert resilient.inner.name == "process"
        resilient.shutdown()
        assert not _orphan_workers()


# ----------------------------------------------------------------------
# Session integration: provenance, warnings, teardown
# ----------------------------------------------------------------------
class _WarningRecorder(SearchObserver):
    def __init__(self):
        super().__init__()
        self.warnings = []
        self.teardowns = 0

    def on_warning(self, kind, detail):
        self.warnings.append((kind, dict(detail)))

    def on_teardown(self):
        self.teardowns += 1


class TestSessionFaultTolerance:
    def test_retry_exhaustion_degrades_to_serial_and_completes(self):
        """The acceptance path: repeated kills exhaust the process rung,
        an injected thread fault fails the thread rung, the session
        finishes on serial with the identical result and the whole story
        recorded in provenance + warnings."""
        reference = SearchSession(_spec(executor="serial")).run()
        plan = FaultPlan(kill_worker=[(0, 0)] * 4,
                         raise_in_kernel=[(0, 0)])
        recorder = _WarningRecorder()
        coordinator = ParallelCoordinator("process", workers=2,
                                          fault_plan=plan, max_retries=1)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            outcome = SearchSession(
                _spec(executor="process", workers=2)
            ).run(callbacks=[coordinator, recorder])
        assert _comparable(outcome) == _comparable(reference)
        execution = outcome.provenance["execution"]
        assert execution["degraded_to"] == "serial"
        assert execution["pool_failures"] == 2
        kinds = [kind for kind, _ in recorder.warnings]
        assert kinds == ["backend-degraded", "backend-degraded"]
        assert recorder.warnings[0][1]["from"] == "process"
        assert recorder.warnings[1][1]["to"] == "serial"
        assert any(issubclass(w.category, RuntimeWarning) for w in caught)
        assert recorder.teardowns == 1
        assert not _orphan_workers()

    def test_crash_free_run_reports_zero_retries(self, monkeypatch):
        # The CI chaos leg exports $REPRO_FAULTS globally; this test is
        # specifically about the crash-free counters staying at zero.
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        coordinator = ParallelCoordinator("process", workers=2)
        outcome = SearchSession(
            _spec(executor="process", workers=2)
        ).run(callbacks=[coordinator])
        execution = outcome.provenance["execution"]
        assert execution["retries"] == 0
        assert execution["respawns"] == 0
        assert execution["timeouts"] == 0
        assert execution["degraded_to"] is None
        assert execution["sharded_batches"] > 0
        assert not _orphan_workers()

    def test_on_teardown_fires_once_when_retries_exhaust(self):
        """degrade=False + a budget-exhausting plan: the session dies
        with the typed error, but on_teardown still fires exactly once
        and no workers are orphaned."""
        plan = FaultPlan(kill_worker=[(0, 0)] * 4)
        recorder = _WarningRecorder()
        coordinator = ParallelCoordinator("process", workers=2,
                                          fault_plan=plan, max_retries=1,
                                          degrade=False)
        with pytest.raises(WorkerCrashError):
            SearchSession(
                _spec(executor="process", workers=2)
            ).run(callbacks=[coordinator, recorder])
        assert recorder.teardowns == 1
        assert coordinator.alive_workers == 0
        assert not _orphan_workers()

    def test_keep_alive_pool_rebuilds_after_respawn(self):
        """A keep-alive pool that lost (and replaced) a worker keeps
        serving sessions with the full complement alive."""
        plan = FaultPlan(kill_worker=[(0, 0)])
        with ParallelCoordinator("process", workers=2, keep_alive=True,
                                 fault_plan=plan) as pool:
            first = SearchSession(_spec()).run(callbacks=[pool])
            assert pool.alive_workers == 2
            second = SearchSession(_spec()).run(callbacks=[pool])
            assert first.best_cost == second.best_cost
            assert pool.execution_stats()["respawns"] == 1
        assert pool.alive_workers == 0
        assert not _orphan_workers()

    def test_chaos_executor_is_registered_and_deterministic(self,
                                                            monkeypatch):
        """`chaos` is a first-class executor: spec-valid, defaulting to
        a seeded plan, and -- like every backend -- bit-identical."""
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert "chaos" in EXECUTORS
        backend = make_backend("chaos", workers=2)
        assert isinstance(backend, ProcessBackend)
        assert backend.fault_plan == FaultPlan.seeded(0)
        backend.shutdown()
        reference = SearchSession(_spec(executor="serial")).run()
        chaotic = SearchSession(
            _spec(executor="chaos", workers=2)).run()
        assert _comparable(chaotic) == _comparable(reference)
        assert not _orphan_workers()


# ----------------------------------------------------------------------
# Checkpoints: atomic writes and resume
# ----------------------------------------------------------------------
class TestCheckpointing:
    def test_checkpoint_write_is_atomic(self, tmp_path):
        path = tmp_path / "best.json"
        spec = _spec(executor="serial")
        SearchSession(spec).run(callbacks=[CheckpointHook(path)])
        assert path.exists()
        assert not (tmp_path / "best.json.tmp").exists()
        document = json.loads(path.read_text())
        assert {"step", "best_cost", "best_assignments",
                "spec"} <= set(document)
        assert document["spec"] == spec.to_dict()

    def test_resume_replays_to_identical_result(self, tmp_path):
        """Kill a run early; resume() from its checkpoint lands on the
        bit-identical final result of the uninterrupted run."""
        from repro.search import EarlyStopping

        spec = _spec(executor="serial", seed=9)
        uninterrupted = SearchSession(spec).run()
        path = tmp_path / "best.json"
        interrupted = SearchSession(spec).run(
            callbacks=[CheckpointHook(path), EarlyStopping(patience=8)])
        assert interrupted.stopped_early
        resumed = CheckpointHook.resume(path)
        assert _comparable(resumed) == _comparable(uninterrupted)
        assert resumed.best_cost is not None
        assert resumed.best_cost <= interrupted.best_cost

    def test_resume_without_spec_raises(self, tmp_path):
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps({"step": 3, "best_cost": 1.0,
                                    "best_assignments": None}))
        with pytest.raises(ValueError, match="no spec"):
            CheckpointHook.resume(path)


# ----------------------------------------------------------------------
# Serialization hardening (ROADMAP 5)
# ----------------------------------------------------------------------
class TestSerializationHardening:
    def test_search_spec_serialization_is_a_fixed_point(self):
        spec = _spec(executor="process", workers=2, task_timeout_s=1.5,
                     envs=4)
        once = spec.to_json()
        again = SearchSpec.from_json(once)
        assert again == spec
        assert again.to_json() == once
        assert hash(again) == hash(spec)

    def test_session_result_round_trips_with_execution_provenance(self):
        plan = FaultPlan(kill_worker=[(0, 0)])
        coordinator = ParallelCoordinator("process", workers=2,
                                          fault_plan=plan, degrade=False)
        outcome = SearchSession(
            _spec(executor="process", workers=2)
        ).run(callbacks=[coordinator])
        assert outcome.provenance["execution"]["respawns"] == 1
        document = outcome.to_json()
        restored = repro.SessionResult.from_json(document)
        assert restored.to_json() == document
        assert restored.provenance["execution"] \
            == outcome.provenance["execution"]
        assert restored.spec == outcome.spec
        assert not _orphan_workers()

    def test_checkpoint_document_round_trips(self, tmp_path):
        path = tmp_path / "best.json"
        SearchSession(_spec(executor="serial")).run(
            callbacks=[CheckpointHook(path)])
        document = json.loads(path.read_text())
        assert json.loads(json.dumps(document)) == document
        assert SearchSpec.from_dict(document["spec"]) \
            == _spec(executor="serial")

    def test_fault_plan_survives_env_round_trip(self, monkeypatch):
        plan = FaultPlan(kill_worker=[(0, 1)], delay_s=[(2, 0, 0.1)],
                         seed=None)
        monkeypatch.setenv("REPRO_FAULTS", plan.to_json())
        assert FaultPlan.from_env() == plan
        backend = ProcessBackend(workers=2)
        assert backend.fault_plan == plan
        backend.shutdown()


# ----------------------------------------------------------------------
# Resource hygiene: shm leaks and queue sentinels
# ----------------------------------------------------------------------
class TestResourceHygiene:
    def test_allocate_failure_does_not_strand_segment(self, monkeypatch):
        """An exception between segment creation and BatchBlock return
        (here: a dtype the no-cast copy rejects) must unlink the
        segment, not leak it until interpreter exit."""
        from multiprocessing import shared_memory

        from repro.parallel.shm import BatchBlock

        created = []
        original = shared_memory.SharedMemory

        class Recorder(original):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                if kwargs.get("create"):
                    created.append(self.name)

        monkeypatch.setattr(shared_memory, "SharedMemory", Recorder)
        bad = np.zeros(8, dtype=np.float64)  # int64 expected: copy fails
        good = np.zeros(8, dtype=np.int64)
        with pytest.raises(TypeError):
            BatchBlock.allocate(bad, good, good, good)
        assert len(created) == 1
        with pytest.raises(FileNotFoundError):
            original(name=created[0])

    def test_shutdown_after_terminated_worker_leaves_no_sentinels(self,
                                                                  batch_case):
        """Shutting down a pool whose worker was killed (and whose
        queues carry undrained messages) must not hang or leak."""
        hw, table, inputs, reference = batch_case
        plan = FaultPlan(kill_worker=[(0, 0)])
        backend = ProcessBackend(workers=2, fault_plan=plan,
                                 backoff_base_s=0.01)
        _assert_reports_equal(reference,
                              backend.evaluate(hw, table, *inputs))
        backend.shutdown()
        assert backend.alive_workers == 0
        assert not _orphan_workers()
        # Counters survive shutdown for provenance.
        assert backend.respawns == 1

    def test_mid_batch_exception_releases_segment(self, batch_case):
        """The evaluate context manager guarantees close+unlink even
        when supervision raises mid-batch (retry exhaustion)."""
        from multiprocessing import shared_memory

        hw, table, inputs, _ = batch_case
        created = []
        original = shared_memory.SharedMemory

        class Recorder(original):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                if kwargs.get("create"):
                    created.append(self.name)

        plan = FaultPlan(kill_worker=[(0, 0)] * 2)
        backend = ProcessBackend(workers=2, fault_plan=plan,
                                 max_retries=0)
        import unittest.mock

        with unittest.mock.patch.object(shared_memory, "SharedMemory",
                                        Recorder):
            with pytest.raises(WorkerCrashError):
                backend.evaluate(hw, table, *inputs)
        assert created
        for name in created:
            with pytest.raises(FileNotFoundError):
                original(name=name)
        assert not _orphan_workers()
