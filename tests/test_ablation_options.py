"""Tests for the ablation knobs: reward shaping, penalty mode, GA
crossover mode, and the CLI entry point."""

import numpy as np
import pytest

from repro.core.constraints import PlatformConstraint, platform_constraint
from repro.core.evaluator import DesignPointEvaluator
from repro.env import HWAssignmentEnv
from repro.ga import LocalGA


class TestRewardShapingOptions:
    def test_rejects_unknown_shaping(self, cost_model, tiny_model,
                                     space_dla):
        constraint = PlatformConstraint(kind="area", budget=1e15)
        with pytest.raises(ValueError, match="reward_shaping"):
            HWAssignmentEnv(tiny_model, space_dla, "latency", constraint,
                            cost_model, dataflow="dla",
                            reward_shaping="clipped")

    def test_rejects_unknown_penalty(self, cost_model, tiny_model,
                                     space_dla):
        constraint = PlatformConstraint(kind="area", budget=1e15)
        with pytest.raises(ValueError, match="penalty_mode"):
            HWAssignmentEnv(tiny_model, space_dla, "latency", constraint,
                            cost_model, dataflow="dla",
                            penalty_mode="huge")

    def test_raw_reward_is_negative_cost(self, cost_model, tiny_model,
                                         space_dla):
        constraint = PlatformConstraint(kind="area", budget=1e15)
        env = HWAssignmentEnv(tiny_model, space_dla, "latency", constraint,
                              cost_model, dataflow="dla",
                              reward_shaping="raw")
        env.reset()
        _, reward, _, info = env.step((3, 3))
        assert reward == pytest.approx(
            -info["report"].latency_cycles)

    def test_constant_penalty_on_violation(self, cost_model, tiny_model,
                                           space_dla):
        constraint = platform_constraint(tiny_model, "dla", "area", "iotx",
                                         cost_model, space_dla)
        env = HWAssignmentEnv(tiny_model, space_dla, "latency", constraint,
                              cost_model, dataflow="dla",
                              penalty_mode="constant",
                              constant_penalty=-42.0)
        env.reset()
        done = False
        while not done:
            _, reward, done, info = env.step((11, 11))
        assert info["violated"]
        assert reward == -42.0

    def test_pmin_remains_default(self, cost_model, tiny_model, space_dla):
        constraint = PlatformConstraint(kind="area", budget=1e15)
        env = HWAssignmentEnv(tiny_model, space_dla, "latency", constraint,
                              cost_model, dataflow="dla")
        assert env.reward_shaping == "pmin"
        assert env.penalty_mode == "accumulated"


class TestCrossoverModes:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="crossover_mode"):
            LocalGA(crossover_mode="diagonal")

    def test_global_crossover_blends_parents(self):
        ga = LocalGA(crossover_mode="global", seed=0)
        a = [[1, 10], [1, 10], [1, 10], [1, 10]]
        b = [[9, 90], [9, 90], [9, 90], [9, 90]]
        children = [ga._global_crossover(a, b) for _ in range(20)]
        # Every gene comes from one of the parents...
        for child in children:
            for gene in child:
                assert gene in ([1, 10], [9, 90])
        # ...and blending actually mixes them.
        assert any(len({tuple(g) for g in child}) == 2
                   for child in children)

    def test_global_mode_runs_search(self, cost_model, mobilenet_slice,
                                     space_dla):
        constraint = platform_constraint(mobilenet_slice, "dla", "area",
                                         "iot", cost_model, space_dla)
        evaluator = DesignPointEvaluator(mobilenet_slice, "latency",
                                         constraint, cost_model, space_dla,
                                         dataflow="dla")
        seed = evaluator.decode_genome([2, 2] * len(mobilenet_slice))
        ga = LocalGA(crossover_mode="global", population_size=6, seed=0)
        result = ga.search(evaluator, seed, generations=8)
        assert result.best_cost is not None


class TestCLI:
    def test_models_command(self, capsys):
        from repro.__main__ import main

        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "mobilenet_v2" in out
        assert "resnet50" in out

    def test_evaluate_command(self, capsys):
        from repro.__main__ import main

        assert main(["evaluate", "--model", "ncf", "--pes", "8",
                     "--buffer", "29"]) == 0
        out = capsys.readouterr().out
        assert "latency" in out

    def test_search_command_small(self, capsys):
        from repro.__main__ import main

        code = main(["search", "--model", "ncf", "--platform", "cloud",
                     "--epochs", "20", "--finetune", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fine-tuned" in out

    def test_search_mix_flag(self, capsys):
        from repro.__main__ import main

        code = main(["search", "--model", "ncf", "--platform", "cloud",
                     "--mix", "--epochs", "20", "--finetune", "0"])
        assert code == 0

    def test_unknown_command_exits(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["destroy"])
