"""Contract tests on the public API surface.

Guards the importable surface the README documents: `__all__` integrity,
docstring presence on every public item, the lazy exports that keep the
import graph acyclic, and -- since the session redesign -- that BOTH the
legacy surface (``ConfuciuX.run``, direct optimizer construction) and the
unified session surface (``repro.explore`` / ``SearchSession``) work.
"""

import importlib
import inspect

import pytest

import repro

PUBLIC_MODULES = [
    "repro",
    "repro.models",
    "repro.costmodel",
    "repro.nn",
    "repro.env",
    "repro.rl",
    "repro.optim",
    "repro.ga",
    "repro.core",
    "repro.analysis",
    "repro.experiments",
    "repro.search",
]


class TestImportSurface:
    @pytest.mark.parametrize("name", PUBLIC_MODULES)
    def test_module_imports_and_documented(self, name):
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} lacks a module docstring"

    @pytest.mark.parametrize("name", PUBLIC_MODULES)
    def test_all_entries_resolve(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert getattr(module, symbol, None) is not None, \
                f"{name}.{symbol} in __all__ but unresolvable"

    def test_version(self):
        assert repro.__version__ == "1.8.0"

    def test_lazy_exports(self):
        assert repro.ConfuciuX.__name__ == "ConfuciuX"
        assert repro.JointSearch.__name__ == "JointSearch"
        with pytest.raises(AttributeError):
            repro.DoesNotExist

    def test_core_lazy_exports(self):
        import repro.core as core

        assert core.ConfuciuX.__name__ == "ConfuciuX"
        assert core.solution_report is not None
        with pytest.raises(AttributeError):
            core.DoesNotExist

    def test_session_api_exported(self):
        # The session layer is reachable from the package root.
        for symbol in ("SearchSpec", "SearchSession", "SessionResult",
                       "explore", "register_method", "get_method",
                       "list_methods", "SearchObserver", "ProgressReporter",
                       "EarlyStopping", "CheckpointHook"):
            assert getattr(repro, symbol, None) is not None, symbol


class TestDocstrings:
    def _public_members(self, module):
        for name, member in vars(module).items():
            if name.startswith("_"):
                continue
            if inspect.isclass(member) or inspect.isfunction(member):
                if member.__module__.startswith("repro"):
                    yield name, member

    @pytest.mark.parametrize("name", [
        "repro.models.layers",
        "repro.models.zoo",
        "repro.costmodel.dataflow",
        "repro.costmodel.estimator",
        "repro.env.spaces",
        "repro.env.environment",
        "repro.rl.reinforce",
        "repro.ga.local_ga",
        "repro.core.confuciux",
        "repro.core.serialization",
        "repro.optim.base",
        "repro.search.spec",
        "repro.search.registry",
        "repro.search.session",
        "repro.search.callbacks",
    ])
    def test_every_public_item_documented(self, name):
        module = importlib.import_module(name)
        undocumented = [
            member_name
            for member_name, member in self._public_members(module)
            if not member.__doc__
        ]
        assert not undocumented, \
            f"{name}: undocumented public items {undocumented}"

    def test_registries_consistent(self):
        from repro.optim import BASELINE_OPTIMIZERS
        from repro.rl import RL_ALGORITHMS

        # The comparison harness relies on unique, disjoint method names.
        assert not set(RL_ALGORITHMS) & set(BASELINE_OPTIMIZERS)
        for name, cls in {**RL_ALGORITHMS, **BASELINE_OPTIMIZERS}.items():
            assert cls.name == name

    def test_unified_registry_absorbs_legacy_registries(self):
        from repro.optim import BASELINE_OPTIMIZERS
        from repro.rl import RL_ALGORITHMS

        names = set(repro.method_names())
        assert set(BASELINE_OPTIMIZERS) <= names
        assert set(RL_ALGORITHMS) <= names
        assert {"reinforce-mlp", "local-ga", "confuciux"} <= names


class TestLegacySurface:
    """The pre-session call paths stay importable and runnable."""

    def test_confuciux_pipeline_still_constructs_and_runs(self, tiny_model,
                                                          cost_model):
        pipeline = repro.ConfuciuX(
            tiny_model, objective="latency", dataflow="dla",
            constraint_kind="area", platform="cloud",
            cost_model=cost_model, seed=0)
        result = pipeline._run(global_epochs=5, finetune_generations=2)
        assert result.best_cost is not None

    def test_confuciux_run_shim_removed_with_guidance(self, tiny_model,
                                                      cost_model):
        """The deprecated ``run`` shim is gone, but calling it still
        yields migration guidance rather than a bare AttributeError."""
        pipeline = repro.ConfuciuX(tiny_model, platform="cloud",
                                   cost_model=cost_model, seed=0)
        with pytest.raises(RuntimeError, match="repro.explore"):
            pipeline.run(global_epochs=5, finetune_generations=2)

    def test_direct_optimizer_construction_works(self, tiny_model,
                                                 cost_model):
        from repro.experiments.tasks import TaskSpec

        task = TaskSpec(model=tiny_model, platform="cloud")
        optimizer = repro.BASELINE_OPTIMIZERS["random"](seed=0)
        result = optimizer.search(task.make_evaluator(cost_model), 10)
        assert result.algorithm == "random"
        assert len(result.history) == 10

    def test_legacy_and_session_paths_agree(self, cost_model):
        # The redesign is a façade: same seeds, same numbers.
        from repro.experiments.tasks import TaskSpec

        task = TaskSpec(model="ncf", platform="cloud")
        legacy = repro.BASELINE_OPTIMIZERS["sa"](seed=3).search(
            task.make_evaluator(cost_model,
                                task.constraint(cost_model)), 20)
        session = repro.explore(model="ncf", method="sa", budget=20,
                                seed=3, platform="cloud",
                                cost_model=cost_model)
        assert session.best_cost == legacy.best_cost
        assert session.history == legacy.history
