"""Contract tests on the public API surface.

Guards the importable surface the README documents: `__all__` integrity,
docstring presence on every public item, and the lazy exports that keep
the import graph acyclic.
"""

import importlib
import inspect

import pytest

import repro

PUBLIC_MODULES = [
    "repro",
    "repro.models",
    "repro.costmodel",
    "repro.nn",
    "repro.env",
    "repro.rl",
    "repro.optim",
    "repro.ga",
    "repro.core",
    "repro.analysis",
    "repro.experiments",
]


class TestImportSurface:
    @pytest.mark.parametrize("name", PUBLIC_MODULES)
    def test_module_imports_and_documented(self, name):
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} lacks a module docstring"

    @pytest.mark.parametrize("name", PUBLIC_MODULES)
    def test_all_entries_resolve(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert getattr(module, symbol, None) is not None, \
                f"{name}.{symbol} in __all__ but unresolvable"

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_lazy_exports(self):
        assert repro.ConfuciuX.__name__ == "ConfuciuX"
        assert repro.JointSearch.__name__ == "JointSearch"
        with pytest.raises(AttributeError):
            repro.DoesNotExist

    def test_core_lazy_exports(self):
        import repro.core as core

        assert core.ConfuciuX.__name__ == "ConfuciuX"
        assert core.solution_report is not None
        with pytest.raises(AttributeError):
            core.DoesNotExist


class TestDocstrings:
    def _public_members(self, module):
        for name, member in vars(module).items():
            if name.startswith("_"):
                continue
            if inspect.isclass(member) or inspect.isfunction(member):
                if member.__module__.startswith("repro"):
                    yield name, member

    @pytest.mark.parametrize("name", [
        "repro.models.layers",
        "repro.models.zoo",
        "repro.costmodel.dataflow",
        "repro.costmodel.estimator",
        "repro.env.spaces",
        "repro.env.environment",
        "repro.rl.reinforce",
        "repro.ga.local_ga",
        "repro.core.confuciux",
        "repro.core.serialization",
        "repro.optim.base",
    ])
    def test_every_public_item_documented(self, name):
        module = importlib.import_module(name)
        undocumented = [
            member_name
            for member_name, member in self._public_members(module)
            if not member.__doc__
        ]
        assert not undocumented, \
            f"{name}: undocumented public items {undocumented}"

    def test_registries_consistent(self):
        from repro.optim import BASELINE_OPTIMIZERS
        from repro.rl import RL_ALGORITHMS

        # The comparison harness relies on unique, disjoint method names.
        assert not set(RL_ALGORITHMS) & set(BASELINE_OPTIMIZERS)
        for name, cls in {**RL_ALGORITHMS, **BASELINE_OPTIMIZERS}.items():
            assert cls.name == name
