"""Fused tensor programs: parity, caching, edge dims, and plumbing.

The fused kernels (:mod:`repro.costmodel.fused`) precompile one tensor
program per (model, platform) and promise bit-identity with the batched
reference in float64.  These tests lock that promise across all three
dataflow styles, MIX batches, flat shard-shaped batches, and the extreme
layer geometries the analytical formulas must survive; they also cover
the kernel-selection plumbing (``resolve_kernel`` / ``SearchSpec.kernel``
/ ``$REPRO_KERNEL``), program-cache bounds and staleness, the bounded
single-layer table cache, scalar-input promotion, and kernel forwarding
through the execution backends.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.costmodel import (
    BATCH_STYLES,
    DEFAULT_HW,
    DEFAULT_KERNEL,
    KERNEL_ENV,
    KERNELS,
    BatchedCostModel,
    CostModel,
    LayerTable,
    STYLE_INDEX,
    compile_program,
    evaluate_with_kernel,
    numba_available,
    resolve_kernel,
)
from repro.costmodel.batched import ordered_row_sum, table_token
from repro.costmodel.fused import LRUCache
from repro.costmodel.report import BatchCostReport
from repro.models import get_model
from repro.models.layers import Layer, LayerType
from repro.parallel.backend import make_backend
from repro.search.spec import SearchSpec

REPORT_FIELDS = [f.name for f in dataclasses.fields(BatchCostReport)]
INT_FIELDS = ("pes_used", "l1_bytes_per_pe", "l2_bytes", "tile_k", "macs")

# Kernels that must be bit-identical to the batched reference.  fused-jit
# joins when numba is importable (the container may not ship it).
EXACT_KERNELS = ["fused"] + (["fused-jit"] if numba_available() else [])


def assert_bit_identical(reference: BatchCostReport,
                         candidate: BatchCostReport) -> None:
    for name in REPORT_FIELDS:
        a = getattr(reference, name)
        b = getattr(candidate, name)
        assert a.dtype == b.dtype, f"{name}: dtype {a.dtype} != {b.dtype}"
        assert np.array_equal(a, b), f"{name}: values differ"


def random_batch(table: LayerTable, n: int, seed: int, style=None):
    rng = np.random.default_rng(seed)
    layer_idx = rng.integers(0, len(table.layers), size=n)
    if style is None:
        style_idx = rng.integers(0, len(BATCH_STYLES), size=n)
    else:
        style_idx = np.full(n, STYLE_INDEX[style], dtype=np.int64)
    pes = rng.integers(1, 600, size=n)
    l1 = rng.integers(1, 12_000, size=n)
    return layer_idx, style_idx, pes, l1


def tiled_batch(table: LayerTable, pop: int, seed: int, style=None):
    """(pop x layers) lockstep batch -- the shape the searches emit."""
    num_layers = len(table.layers)
    rng = np.random.default_rng(seed)
    layer_idx = np.tile(np.arange(num_layers), pop)
    if style is None:
        style_idx = rng.integers(0, len(BATCH_STYLES),
                                 size=pop * num_layers)
    else:
        style_idx = np.full(pop * num_layers, STYLE_INDEX[style],
                            dtype=np.int64)
    pes = rng.integers(1, 600, size=pop * num_layers)
    l1 = rng.integers(1, 12_000, size=pop * num_layers)
    return layer_idx, style_idx, pes, l1


@pytest.fixture(scope="module")
def table():
    return LayerTable.build(get_model("mobilenet_v2")[:10])


# ----------------------------------------------------------------------
# Kernel selection plumbing
# ----------------------------------------------------------------------
class TestResolveKernel:
    def test_default_is_batched(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV, raising=False)
        assert resolve_kernel(None) == DEFAULT_KERNEL == "batched"

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "fused")
        assert resolve_kernel(None) == "fused"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "fused32")
        assert resolve_kernel("fused") == "fused"

    def test_unknown_kernel_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="kernel"):
            resolve_kernel("nope")
        monkeypatch.setenv(KERNEL_ENV, "bogus")
        with pytest.raises(ValueError, match="kernel"):
            resolve_kernel(None)

    def test_spec_validates_and_resolves(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV, raising=False)
        with pytest.raises(ValueError):
            SearchSpec(model="mnasnet", kernel="warp-speed")
        spec = SearchSpec(model="mnasnet", kernel="fused")
        assert spec.resolved_kernel() == "fused"
        monkeypatch.setenv(KERNEL_ENV, "fused32")
        # Explicit spec value wins over the environment...
        assert spec.resolved_kernel() == "fused"
        # ...but an unset spec falls through to it.
        assert SearchSpec(model="mnasnet").resolved_kernel() == "fused32"

    def test_spec_roundtrips_kernel(self):
        spec = SearchSpec(model="mnasnet", kernel="fused")
        assert SearchSpec.from_dict(spec.to_dict()).kernel == "fused"


class TestLRUCache:
    def test_capacity_bound_evicts_oldest(self):
        cache = LRUCache(3)
        for i in range(5):
            cache.put(i, str(i))
        assert len(cache) == 3
        assert cache.get(0) is None and cache.get(1) is None
        assert cache.get(4) == "4"

    def test_get_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1
        cache.put("c", 3)  # evicts "b", the least recently used
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3


# ----------------------------------------------------------------------
# Bit parity: fused (and fused-jit when available) vs the batched kernel
# ----------------------------------------------------------------------
class TestFusedParity:
    @pytest.mark.parametrize("kernel", EXACT_KERNELS)
    @pytest.mark.parametrize("style", BATCH_STYLES)
    def test_tiled_single_style(self, kernel, style, table):
        batch = tiled_batch(table, pop=17, seed=3, style=style)
        reference = evaluate_with_kernel("batched", DEFAULT_HW, table,
                                         *batch)
        program = compile_program(DEFAULT_HW, table, kernel)
        assert_bit_identical(reference, program.evaluate(*batch))

    @pytest.mark.parametrize("kernel", EXACT_KERNELS)
    def test_tiled_mix_styles(self, kernel, table):
        batch = tiled_batch(table, pop=17, seed=5)
        reference = evaluate_with_kernel("batched", DEFAULT_HW, table,
                                         *batch)
        program = compile_program(DEFAULT_HW, table, kernel)
        assert_bit_identical(reference, program.evaluate(*batch))

    @pytest.mark.parametrize("kernel", EXACT_KERNELS)
    def test_flat_random_batch(self, kernel, table):
        """Arbitrary layer order breaks the (pop x layers) tiling and
        exercises the gather fallback."""
        batch = random_batch(table, n=1777, seed=7)
        reference = evaluate_with_kernel("batched", DEFAULT_HW, table,
                                         *batch)
        program = compile_program(DEFAULT_HW, table, kernel)
        assert_bit_identical(reference, program.evaluate(*batch))

    def test_shard_invariance(self, table):
        """A worker-sized slice of a tiled batch (what the process
        backend ships) evaluates identically to the same slice of the
        full-batch result."""
        batch = tiled_batch(table, pop=40, seed=11)
        program = compile_program(DEFAULT_HW, table, "fused")
        full = program.evaluate(*batch)
        lo, hi = 17, 391
        shard = program.evaluate(*(a[lo:hi] for a in batch))
        for name in REPORT_FIELDS:
            assert np.array_equal(getattr(full, name)[lo:hi],
                                  getattr(shard, name))

    def test_repeated_calls_reuse_scratch(self, table):
        """Back-to-back calls on one program (scratch-buffer reuse) stay
        bit-identical to fresh evaluations."""
        program = compile_program(DEFAULT_HW, table, "fused")
        batch = tiled_batch(table, pop=9, seed=13)
        first = program.evaluate(*batch)
        program.evaluate(*random_batch(table, n=500, seed=17))
        assert_bit_identical(first, program.evaluate(*batch))


class TestFused32:
    def test_integer_outputs_exact_floats_close(self, table):
        batch = random_batch(table, n=2048, seed=23)
        reference = evaluate_with_kernel("batched", DEFAULT_HW, table,
                                         *batch)
        report = compile_program(DEFAULT_HW, table,
                                 "fused32").evaluate(*batch)
        for name in INT_FIELDS:
            assert np.array_equal(getattr(reference, name),
                                  getattr(report, name)), name
        for name in REPORT_FIELDS:
            if name in INT_FIELDS:
                continue
            a = getattr(reference, name)
            b = np.asarray(getattr(report, name), dtype=np.float64)
            rel = np.abs(b - a) / np.maximum(np.abs(a), 1e-30)
            assert rel.max() < 1e-5, f"{name}: rel err {rel.max():.3g}"


@pytest.mark.skipif(numba_available(), reason="numba is installed here")
def test_jit_kernel_requires_numba():
    table = LayerTable.build(get_model("mnasnet")[:2])
    with pytest.raises(RuntimeError, match="numba"):
        compile_program(DEFAULT_HW, table, "fused-jit")


# ----------------------------------------------------------------------
# Extreme layer geometries (satellite: edge-dim sweep)
# ----------------------------------------------------------------------
EDGE_LAYERS = [
    # L1 smaller than one R*S window.
    Layer("tiny-l1", LayerType.CONV, K=8, C=4, Y=14, X=14, R=5, S=5),
    # 1x1 kernel (R=S=1): window math degenerates.
    Layer("one-by-one", LayerType.PWCONV, K=16, C=8, Y=7, X=7),
    # Depthwise with a single channel.
    Layer("dw-c1", LayerType.DWCONV, K=1, C=1, Y=14, X=14, R=3, S=3),
    # Single output channel.
    Layer("k1", LayerType.CONV, K=1, C=16, Y=7, X=7, R=3, S=3),
    # Wide layer for the overflow probe.
    Layer("wide", LayerType.CONV, K=512, C=512, Y=56, X=56, R=3, S=3),
]

EDGE_POINTS = [
    (1, 1),                  # minimum everything
    (1, 4),                  # l1 < R*S for the 5x5 layer
    (7, 24),                 # l1 < window+S edge for shi
    (2 ** 20, 2 ** 20),      # huge pes * l1: int64 headroom probe
]


class TestEdgeDims:
    @pytest.mark.parametrize("style", BATCH_STYLES)
    def test_scalar_batched_fused_agree(self, style, cost_model):
        """Scalar, batched, and fused paths agree exactly on every edge
        geometry x design-point combination, for every style."""
        table = LayerTable.build(EDGE_LAYERS)
        points = np.array(EDGE_POINTS, dtype=np.int64)
        n_layers, n_points = len(EDGE_LAYERS), len(points)
        layer_idx = np.repeat(np.arange(n_layers), n_points)
        style_idx = np.full(n_layers * n_points, STYLE_INDEX[style])
        pes = np.tile(points[:, 0], n_layers)
        l1 = np.tile(points[:, 1], n_layers)

        batched = evaluate_with_kernel("batched", DEFAULT_HW, table,
                                       layer_idx, style_idx, pes, l1)
        fused = compile_program(DEFAULT_HW, table, "fused").evaluate(
            layer_idx, style_idx, pes, l1)
        assert_bit_identical(batched, fused)

        for i in range(len(layer_idx)):
            scalar = cost_model.evaluate_layer(
                EDGE_LAYERS[layer_idx[i]], style,
                int(pes[i]), int(l1[i]))
            for name in REPORT_FIELDS:
                assert getattr(scalar, name) == getattr(batched, name)[i], \
                    f"{name} @ {EDGE_LAYERS[layer_idx[i]].name} " \
                    f"pes={pes[i]} l1={l1[i]}"

    @pytest.mark.parametrize("style", BATCH_STYLES)
    def test_huge_products_stay_positive(self, style):
        """pes * l1_bytes around 2**40 must not wrap int64 anywhere:
        every integer report field stays non-negative and the MAC count
        is the exact analytical value."""
        table = LayerTable.build(EDGE_LAYERS)
        n = len(EDGE_LAYERS)
        report = evaluate_with_kernel(
            "fused", DEFAULT_HW, table, np.arange(n),
            np.full(n, STYLE_INDEX[style]),
            np.full(n, 2 ** 20), np.full(n, 2 ** 20))
        for name in INT_FIELDS:
            values = getattr(report, name)
            assert (values >= 0).all(), f"{name} wrapped negative"
        assert (report.l2_bytes > 0).all()
        assert (report.macs > 0).all()
        assert np.isfinite(report.latency_cycles).all()
        assert np.isfinite(report.energy_nj).all()


# ----------------------------------------------------------------------
# Caches: compiled programs, single-layer tables, scalar promotion
# ----------------------------------------------------------------------
class TestProgramCache:
    def test_program_compiled_once_per_table(self, table):
        model = BatchedCostModel(kernel="fused")
        batch = random_batch(table, n=64, seed=29)
        model.evaluate(table, *batch)
        program = model._programs.get((table_token(table), "fused"))
        assert program is not None
        model.evaluate(table, *batch)
        assert model._programs.get(
            (table_token(table), "fused")) is program

    def test_table_tokens_never_recycled(self):
        """Regression for the ``id(table)`` cache keys: ``id()`` is
        recycled by the allocator the moment a table dies, so a new
        table could inherit a stale compiled program.  Tokens are
        monotonic, stable per table, and unique across tables no matter
        how many die."""
        import gc

        first = LayerTable.build(get_model("ncf"))
        token = table_token(first)
        assert table_token(first) == token  # stable per table
        seen = {token}
        del first
        for _ in range(5):
            gc.collect()
            fresh = LayerTable.build(get_model("ncf"))
            fresh_token = table_token(fresh)
            assert fresh_token not in seen
            seen.add(fresh_token)
            del fresh

    def test_stale_cache_entry_recompiles(self, table):
        """Belt-and-braces: even a hand-built cache entry whose program
        was compiled for a different table is noticed by the identity
        check and recompiled."""
        model = BatchedCostModel(kernel="fused")
        other = LayerTable.build(get_model("mnasnet")[:4])
        stale = compile_program(DEFAULT_HW, other, "fused")
        model._programs.put((table_token(table), "fused"), stale)
        batch = tiled_batch(table, pop=3, seed=31)
        report = model.evaluate(table, *batch)
        reference = evaluate_with_kernel("batched", DEFAULT_HW, table,
                                         *batch)
        assert_bit_identical(reference, report)
        assert model._programs.get(
            (table_token(table), "fused")) is not stale

    def test_batched_kernel_compiles_nothing(self, table):
        model = BatchedCostModel(kernel="batched")
        model.evaluate(table, *random_batch(table, n=32, seed=37))
        assert len(model._programs) == 0


class TestSingleTableCache:
    def test_single_layer_tables_bounded(self):
        """Regression: the per-layer table cache used to grow without
        bound under layer-sweep workloads."""
        model = BatchedCostModel()
        layers = [Layer(f"l{k}", LayerType.CONV, K=8 + k, C=8,
                        Y=7, X=7, R=3, S=3) for k in range(40)]
        for layer in layers:
            model.evaluate_layer_batch(layer, "dla",
                                       np.array([64]), np.array([512]))
        assert len(model._single_tables) <= 16

    def test_scalar_inputs_promote_to_length_one(self, conv_layer):
        """Regression: 0-d pes / l1_bytes used to fail batch validation."""
        model = BatchedCostModel()
        for pes, l1 in [(64, 512), (np.int64(64), np.int64(512)),
                        (np.array(64), np.array(512))]:
            report = model.evaluate_layer_batch(conv_layer, "dla", pes, l1)
            assert len(report) == 1
        vector = model.evaluate_layer_batch(conv_layer, "dla",
                                            np.array([64]),
                                            np.array([512]))
        scalar = model.evaluate_layer_batch(conv_layer, "dla", 64, 512)
        assert_bit_identical(vector, scalar)


# ----------------------------------------------------------------------
# Kernel forwarding through the execution backends
# ----------------------------------------------------------------------
class TestBackendKernel:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_backend_fused_matches_batched(self, executor, table):
        batch = tiled_batch(table, pop=11, seed=41)
        reference = evaluate_with_kernel("batched", DEFAULT_HW, table,
                                         *batch)
        backend = make_backend(executor, workers=2, kernel="fused")
        try:
            assert backend.kernel == "fused"
            report = backend.evaluate(DEFAULT_HW, table, *batch)
            assert_bit_identical(reference, report)
            # Second batch reuses the shipped table and compiled program.
            again = backend.evaluate(DEFAULT_HW, table, *batch)
            assert_bit_identical(reference, again)
        finally:
            backend.shutdown()

    def test_cost_model_kernel_threads_through(self):
        model = CostModel(kernel="fused")
        assert model.batched.kernel == "fused"
        assert CostModel().batched.kernel == resolve_kernel(None)

    def test_kernels_tuple_is_public_contract(self):
        assert KERNELS == ("batched", "fused", "fused32", "fused-jit")


# ----------------------------------------------------------------------
# Folded constraint check: the epilogue's budget comparison
# ----------------------------------------------------------------------
class TestConstraintFold:
    """``evaluate_constrained`` folds the population reductions and the
    platform budget comparison into the fused epilogue; every folded
    number must match the two-step post-pass bit-for-bit."""

    @pytest.mark.parametrize("kernel", ["fused", "fused32"])
    @pytest.mark.parametrize("deployment", ["lp", "ls"])
    @pytest.mark.parametrize("kind", ["area", "power"])
    def test_fold_matches_two_step_post_pass(self, table, kernel,
                                             deployment, kind):
        model = BatchedCostModel(kernel=kernel)
        pop, num_layers = 17, len(table.layers)
        batch = tiled_batch(table, pop=pop, seed=43)
        budget = 5e8 if kind == "area" else 5e3
        report, fold = model.evaluate_constrained(
            table, *batch, deployment=deployment, kind=kind,
            budget=budget)
        assert fold is not None
        assert_bit_identical(model.evaluate(table, *batch), report)

        area = report.area_um2.reshape(pop, num_layers)
        power = report.power_mw.reshape(pop, num_layers)
        if deployment == "ls":
            area_total = area.max(axis=1)
            power_total = power.max(axis=1)
        else:
            area_total = ordered_row_sum(area)
            power_total = ordered_row_sum(power)
        used = area_total if kind == "area" else power_total
        for got, want in [
                (fold.latency_total, ordered_row_sum(
                    report.latency_cycles.reshape(pop, num_layers))),
                (fold.energy_total, ordered_row_sum(
                    report.energy_nj.reshape(pop, num_layers))),
                (fold.area_total, area_total),
                (fold.power_total, power_total),
                (fold.used, used),
                (fold.feasible, used <= budget)]:
            assert got.dtype == want.dtype
            assert np.array_equal(got, want)

    def test_fold_unavailable_off_the_fast_path(self, table):
        """Non-tiled layouts, the batched kernel, and attached
        executors all decline the fold; the report alone still matches
        ``evaluate``."""
        fused = BatchedCostModel(kernel="fused")
        layer_idx, style_idx, pes, l1 = tiled_batch(table, pop=3, seed=47)
        scrambled = layer_idx.copy()
        scrambled[0] = (scrambled[0] + 1) % len(table.layers)
        report, fold = fused.evaluate_constrained(
            table, scrambled, style_idx, pes, l1,
            deployment="lp", kind="area", budget=1e9)
        assert fold is None
        assert_bit_identical(
            fused.evaluate(table, scrambled, style_idx, pes, l1), report)

        batched = BatchedCostModel(kernel="batched")
        _, fold = batched.evaluate_constrained(
            table, layer_idx, style_idx, pes, l1,
            deployment="lp", kind="area", budget=1e9)
        assert fold is None

        backend = make_backend("thread", workers=2, kernel="fused")
        sharded = BatchedCostModel(kernel="fused", executor=backend)
        try:
            report, fold = sharded.evaluate_constrained(
                table, layer_idx, style_idx, pes, l1,
                deployment="lp", kind="area", budget=1e9)
            assert fold is None
            assert_bit_identical(
                batched.evaluate(table, layer_idx, style_idx, pes, l1),
                report)
        finally:
            backend.shutdown()

    @pytest.mark.parametrize("kernel", ["batched", "fused", "fused32"])
    def test_session_parity_under_folded_constraints(self, kernel):
        """Whole-session lockdown: the folded path cannot change a
        search trajectory versus the batched reference."""
        def run(k):
            # Pinned serial: the fold only engages with no executor
            # attached, and fused32's float32 reports cannot shard
            # into the float64 shm block an env-forced process
            # executor would use.
            spec = SearchSpec(model="ncf", platform="cloud",
                              method="random", budget=10, seed=3,
                              kernel=k, deployment="lp",
                              constraint_kind="area", executor="serial")
            from repro.search import SearchSession

            return SearchSession(spec).run()

        outcome = run(kernel)
        if kernel == "fused32":
            assert outcome.best_cost == pytest.approx(
                run("batched").best_cost, rel=1e-5)
        else:
            reference = run("batched")
            assert outcome.best_cost == reference.best_cost
            assert outcome.best_assignments == reference.best_assignments
