"""Behavioural tests for the five baseline optimizers."""

import pytest

from repro.core.constraints import platform_constraint
from repro.core.evaluator import DesignPointEvaluator
from repro.env.spaces import ActionSpace
from repro.optim import (
    BASELINE_OPTIMIZERS,
    BayesianOptimization,
    GeneticAlgorithm,
    GridSearch,
    RandomSearch,
    SimulatedAnnealing,
)


def make_evaluator(cost_model, layers, platform="cloud",
                   objective="latency"):
    space = ActionSpace.build("dla")
    constraint = platform_constraint(layers, "dla", "area", platform,
                                     cost_model, space)
    return DesignPointEvaluator(layers, objective, constraint, cost_model,
                                space, dataflow="dla")


@pytest.mark.parametrize("name", sorted(BASELINE_OPTIMIZERS))
class TestAllBaselines:
    def test_runs_within_budget(self, name, cost_model, mobilenet_slice):
        evaluator = make_evaluator(cost_model, mobilenet_slice)
        optimizer = BASELINE_OPTIMIZERS[name](seed=0)
        result = optimizer.search(evaluator, 60)
        assert result.algorithm == name
        assert result.evaluations <= 60
        assert len(result.history) == result.evaluations

    def test_finds_feasible_under_loose_constraint(self, name, cost_model,
                                                   mobilenet_slice):
        evaluator = make_evaluator(cost_model, mobilenet_slice, "cloud")
        optimizer = BASELINE_OPTIMIZERS[name](seed=1)
        result = optimizer.search(evaluator, 80)
        assert result.feasible, f"{name} failed on the cloud tier"

    def test_history_is_monotone_best_so_far(self, name, cost_model,
                                             mobilenet_slice):
        evaluator = make_evaluator(cost_model, mobilenet_slice)
        result = BASELINE_OPTIMIZERS[name](seed=0).search(evaluator, 40)
        finite = [v for v in result.history if v != float("inf")]
        assert all(b <= a for a, b in zip(finite, finite[1:]))

    def test_rejects_zero_epochs(self, name, cost_model, mobilenet_slice):
        evaluator = make_evaluator(cost_model, mobilenet_slice)
        with pytest.raises(ValueError):
            BASELINE_OPTIMIZERS[name](seed=0).search(evaluator, 0)

    def test_best_genome_reevaluates_to_best_cost(self, name, cost_model,
                                                  mobilenet_slice):
        evaluator = make_evaluator(cost_model, mobilenet_slice)
        result = BASELINE_OPTIMIZERS[name](seed=2).search(evaluator, 60)
        if result.best_cost is None:
            pytest.skip(f"{name} found nothing feasible in 60 evals")
        outcome = evaluator.evaluate_genome(result.best_genome)
        assert outcome.feasible
        assert outcome.cost == pytest.approx(result.best_cost)


class TestGridSearch:
    def test_deterministic(self, cost_model, mobilenet_slice):
        evaluator1 = make_evaluator(cost_model, mobilenet_slice)
        evaluator2 = make_evaluator(cost_model, mobilenet_slice)
        r1 = GridSearch().search(evaluator1, 30)
        r2 = GridSearch().search(evaluator2, 30)
        assert r1.history == r2.history

    def test_starts_from_minimum_corner(self, cost_model, mobilenet_slice):
        evaluator = make_evaluator(cost_model, mobilenet_slice)
        result = GridSearch().search(evaluator, 5)
        # First sample is the all-minimum genome: tiny and feasible.
        assert result.history[0] != float("inf")

    def test_insensitive_to_constraint_tier(self, cost_model,
                                            mobilenet_slice):
        # The paper's signature grid behaviour (Table IV): the explored
        # corner barely changes with the constraint, so neither does the
        # result.
        loose = GridSearch().search(
            make_evaluator(cost_model, mobilenet_slice, "cloud"), 40)
        tight = GridSearch().search(
            make_evaluator(cost_model, mobilenet_slice, "iotx"), 40)
        assert loose.best_cost == pytest.approx(tight.best_cost, rel=0.2)

    def test_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            GridSearch(stride=0)


class TestSimulatedAnnealing:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            SimulatedAnnealing(temperature=0)
        with pytest.raises(ValueError):
            SimulatedAnnealing(step=0)
        with pytest.raises(ValueError):
            SimulatedAnnealing(cooling=0.0)

    def test_fails_under_extreme_constraint(self, cost_model,
                                            mobilenet_slice):
        # Table IV: SA cannot enter the feasible region at IoTx with a
        # small budget -- random restarts land infeasible and stay there.
        evaluator = make_evaluator(cost_model, mobilenet_slice, "iotx")
        result = SimulatedAnnealing(seed=0).search(evaluator, 40)
        assert result.best_cost is None or result.best_cost > 0


class TestGeneticAlgorithm:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            GeneticAlgorithm(population_size=1)
        with pytest.raises(ValueError):
            GeneticAlgorithm(mutation_rate=1.5)
        with pytest.raises(ValueError):
            GeneticAlgorithm(crossover_rate=-0.1)

    def test_improves_over_generations(self, cost_model, mobilenet_slice):
        evaluator = make_evaluator(cost_model, mobilenet_slice)
        result = GeneticAlgorithm(population_size=20, seed=0).search(
            evaluator, 200)
        first_gen_best = min(
            v for v in result.history[:20] if v != float("inf"))
        assert result.best_cost <= first_gen_best


class TestBayesianOptimization:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            BayesianOptimization(initial_samples=1)

    def test_beats_pure_random_with_same_budget(self, cost_model,
                                                mobilenet_slice):
        evaluator_bo = make_evaluator(cost_model, mobilenet_slice)
        evaluator_rnd = make_evaluator(cost_model, mobilenet_slice)
        bo = BayesianOptimization(seed=3).search(evaluator_bo, 60)
        rnd = RandomSearch(seed=3).search(evaluator_rnd, 60)
        assert bo.feasible
        # BO should at least match random search given the surrogate.
        assert bo.best_cost <= rnd.best_cost * 1.3
