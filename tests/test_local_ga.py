"""Tests for the stage-2 local fine-tuning GA (Section III-G)."""

import numpy as np
import pytest

from repro.core.constraints import platform_constraint
from repro.core.evaluator import DesignPointEvaluator
from repro.env.spaces import ActionSpace
from repro.ga import LocalGA


@pytest.fixture
def evaluator(cost_model, mobilenet_slice):
    space = ActionSpace.build("dla")
    constraint = platform_constraint(mobilenet_slice, "dla", "area", "iot",
                                     cost_model, space)
    return DesignPointEvaluator(mobilenet_slice, "latency", constraint,
                                cost_model, space, dataflow="dla")


@pytest.fixture
def feasible_seed(evaluator):
    """A modest uniform design point known to fit the IoT budget."""
    outcome = evaluator.evaluate_genome([2, 2] * len(evaluator.layers))
    assert outcome.feasible
    return evaluator.decode_genome([2, 2] * len(evaluator.layers))


class TestConstruction:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LocalGA(population_size=1)
        with pytest.raises(ValueError):
            LocalGA(mutation_step=0)
        with pytest.raises(ValueError):
            LocalGA(mutation_rate=2.0)
        with pytest.raises(ValueError):
            LocalGA(crossover_rate=-1.0)


class TestOperators:
    def test_mutation_stays_local(self):
        ga = LocalGA(mutation_rate=1.0, mutation_step=4, seed=0)
        genome = [[64, 100], [32, 50]]
        for _ in range(50):
            child = ga._mutate(genome)
            for parent_gene, child_gene in zip(genome, child):
                assert abs(child_gene[0] - parent_gene[0]) <= 4
                assert abs(child_gene[1] - parent_gene[1]) <= 4

    def test_mutation_respects_bounds(self):
        ga = LocalGA(mutation_rate=1.0, mutation_step=4, max_pes=128,
                     max_l1_bytes=200, seed=0)
        genome = [[1, 1], [128, 200]]
        for _ in range(50):
            child = ga._mutate(genome)
            for gene in child:
                assert 1 <= gene[0] <= 128
                assert 1 <= gene[1] <= 200

    def test_local_crossover_swaps_layer_pairs(self):
        ga = LocalGA(seed=0)
        genome = [[1, 10], [2, 20], [3, 30]]
        child = ga._local_crossover(genome)
        # Multiset of assignments preserved: only positions change.
        assert sorted(map(tuple, child)) == sorted(map(tuple, genome))
        assert child != genome or len(genome) < 2

    def test_crossover_on_single_layer_is_noop(self):
        ga = LocalGA(seed=0)
        genome = [[1, 10]]
        assert ga._local_crossover(genome) == genome

    def test_mutation_does_not_alias_parent(self):
        ga = LocalGA(mutation_rate=1.0, seed=0)
        genome = [[64, 100]]
        child = ga._mutate(genome)
        child[0][0] = 999
        assert genome[0][0] == 64


class TestSearch:
    def test_never_worse_than_seed(self, evaluator, feasible_seed):
        seed_cost = evaluator.evaluate_raw(feasible_seed).cost
        ga = LocalGA(population_size=8, seed=0)
        result = ga.search(evaluator, feasible_seed, generations=20)
        assert result.feasible
        assert result.best_cost <= seed_cost

    def test_typically_improves_on_coarse_seed(self, evaluator,
                                               feasible_seed):
        seed_cost = evaluator.evaluate_raw(feasible_seed).cost
        ga = LocalGA(population_size=12, mutation_rate=0.3, seed=1)
        result = ga.search(evaluator, feasible_seed, generations=40)
        assert result.best_cost < seed_cost

    def test_result_remains_feasible(self, evaluator, feasible_seed):
        ga = LocalGA(population_size=8, seed=2)
        result = ga.search(evaluator, feasible_seed, generations=15)
        outcome = evaluator.evaluate_raw(result.best_assignments)
        assert outcome.feasible
        assert outcome.cost == pytest.approx(result.best_cost)

    def test_rejects_zero_generations(self, evaluator, feasible_seed):
        with pytest.raises(ValueError):
            LocalGA(seed=0).search(evaluator, feasible_seed, generations=0)

    def test_history_length_matches_generations(self, evaluator,
                                                feasible_seed):
        result = LocalGA(population_size=6, seed=0).search(
            evaluator, feasible_seed, generations=12)
        assert len(result.history) == 12

    def test_raw_values_leave_the_level_ladder(self, evaluator,
                                               feasible_seed):
        # The whole point of stage 2: fine-grained values between levels.
        ga = LocalGA(population_size=12, mutation_rate=0.5, seed=3)
        result = ga.search(evaluator, feasible_seed, generations=30)
        space = evaluator.space
        pes_values = {a[0] for a in result.best_assignments}
        off_ladder = pes_values - set(space.pe_levels)
        assert off_ladder, "fine-tuning never left the coarse grid"
