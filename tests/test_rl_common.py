"""Tests for shared RL utilities: returns, buffers, result records."""

import numpy as np
import pytest

from repro.rl.common import (
    ReplayBuffer,
    SearchResult,
    discounted_returns,
    normalize_rewards_for_training,
    standardize,
)


class TestDiscountedReturns:
    def test_no_discount_is_suffix_sum(self):
        returns = discounted_returns([1.0, 2.0, 3.0], discount=1.0)
        np.testing.assert_allclose(returns, [6.0, 5.0, 3.0])

    def test_full_discount_is_identity(self):
        returns = discounted_returns([1.0, 2.0, 3.0], discount=0.0)
        np.testing.assert_allclose(returns, [1.0, 2.0, 3.0])

    def test_paper_default_discount(self):
        returns = discounted_returns([1.0, 1.0], discount=0.9)
        np.testing.assert_allclose(returns, [1.9, 1.0])

    def test_rejects_bad_discount(self):
        with pytest.raises(ValueError):
            discounted_returns([1.0], discount=1.5)

    def test_empty(self):
        assert discounted_returns([], 0.9).size == 0


class TestStandardize:
    def test_zero_mean_unit_std(self):
        values = standardize(np.array([1.0, 2.0, 3.0, 4.0]))
        assert values.mean() == pytest.approx(0.0, abs=1e-12)
        assert values.std() == pytest.approx(1.0)

    def test_constant_input_no_blowup(self):
        values = standardize(np.array([5.0, 5.0, 5.0]))
        np.testing.assert_allclose(values, np.zeros(3))

    def test_pipeline(self):
        out = normalize_rewards_for_training([1.0, 2.0, 3.0], 0.9)
        assert out.mean() == pytest.approx(0.0, abs=1e-12)


class TestReplayBuffer:
    def test_add_and_sample(self):
        buffer = ReplayBuffer(capacity=8, obs_dim=3, action_dim=2)
        for i in range(5):
            buffer.add(np.full(3, i), np.zeros(2), float(i), np.full(3, i),
                       False)
        assert len(buffer) == 5
        obs, actions, rewards, next_obs, dones = buffer.sample(
            4, np.random.default_rng(0))
        assert obs.shape == (4, 3)
        assert rewards.shape == (4,)

    def test_wraps_around_capacity(self):
        buffer = ReplayBuffer(capacity=4, obs_dim=1, action_dim=1)
        for i in range(10):
            buffer.add([i], [0], i, [i], False)
        assert len(buffer) == 4
        # Oldest entries evicted: all stored observations are from 6..9.
        assert buffer.obs.min() >= 6

    def test_sample_empty_raises(self):
        buffer = ReplayBuffer(capacity=4, obs_dim=1, action_dim=1)
        with pytest.raises(RuntimeError):
            buffer.sample(2, np.random.default_rng(0))

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            ReplayBuffer(capacity=0, obs_dim=1, action_dim=1)


class TestSearchResult:
    def test_format_cost(self):
        result = SearchResult(algorithm="x")
        assert result.format_cost() == "NAN"
        result.best_cost = 3.14e7
        assert result.format_cost() == "3.1E+07"

    def test_feasible_flag(self):
        result = SearchResult(algorithm="x")
        assert not result.feasible
        result.best_cost = 1.0
        assert result.feasible

    def test_record_and_epochs_to_reach(self):
        result = SearchResult(algorithm="x")
        result.record(None)
        result.record(10.0)
        result.record(5.0)
        assert result.history == [float("inf"), 10.0, 5.0]
        assert result.epochs_to_reach(10.0) == 1
        assert result.epochs_to_reach(7.0) == 2
        assert result.epochs_to_reach(1.0) is None
