"""Lockstep-wave rollouts: the envs=1 bit-parity matrix and the envs knob.

The contract (API.md "Vectorized rollouts"):

* ``envs=1`` -- driving any episodic method through a one-env
  :class:`~repro.env.vector.VectorHWAssignmentEnv` produces results
  bit-identical to scalar stepping (same costs, same histories, same
  RNG stream, same counters), for **every** episodic registered method;
  and a session run at ``envs=1`` equals the scalar-stepping session.
* ``envs>1`` -- a new scenario: reproducible for a fixed (seed, envs)
  pair, spending exactly the episode budget, reachable through
  ``SearchSpec.envs`` / ``$REPRO_ENVS`` / ``--envs`` and observable
  through the standard callback protocol.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.costmodel import CostModel
from repro.env.vector import VectorHWAssignmentEnv
from repro.experiments.runner import compare_methods
from repro.experiments.tasks import TaskSpec
from repro.search import (
    EarlyStopping,
    SearchSession,
    SearchSpec,
    method_names,
)
from repro.search.registry import KIND_EPISODIC

EPISODIC_METHODS = method_names(kind=KIND_EPISODIC)
BUDGET = 6


@pytest.fixture(scope="module")
def cost_model():
    return CostModel()


@pytest.fixture(scope="module")
def task():
    return TaskSpec(model="mobilenet_v2", layer_slice=5)


@pytest.fixture(scope="module")
def constraint(task, cost_model):
    return task.constraint(cost_model)


def assert_results_equal(a, b):
    """SearchResult equality minus wall-clock."""
    assert a.algorithm == b.algorithm
    assert a.best_cost == b.best_cost
    assert a.history == b.history
    assert a.evaluations == b.evaluations
    assert a.episodes == b.episodes
    assert a.best_genome == b.best_genome
    assert a.best_assignments == b.best_assignments
    assert a.cache_hits == b.cache_hits
    assert a.memory_bytes == b.memory_bytes


class TestEnvsOneBitParity:
    @pytest.mark.parametrize("name", EPISODIC_METHODS)
    def test_vector_env_matches_scalar_stepping(self, name, task,
                                                cost_model, constraint):
        """The full matrix: every episodic registered method, one-env
        waves vs the pre-PR scalar stepping loop, bit-identical."""
        from repro.search.registry import get_method

        info = get_method(name)
        scalar_method = info.factory(seed=0)
        scalar_result = scalar_method.search(
            task.make_env(cost_model, constraint), BUDGET)
        vector_method = info.factory(seed=0)
        vector_result = vector_method.search(
            VectorHWAssignmentEnv(task.make_env(cost_model, constraint), 1),
            BUDGET)
        assert_results_equal(scalar_result, vector_result)

    @pytest.mark.parametrize("name", EPISODIC_METHODS)
    def test_session_envs_one_equals_scalar_session(self, name):
        """SessionResult equality: an explicit ``envs=1`` run equals the
        default (scalar-stepping) session for every episodic method."""
        spec = SearchSpec(model="mobilenet_v2", method=name, budget=BUDGET,
                          seed=0, layer_slice=5)
        scalar = SearchSession(spec).run()
        vector = SearchSession(spec.replace(envs=1)).run()
        assert_results_equal(scalar.result, vector.result)
        assert vector.provenance["envs"] == 1
        assert not vector.stopped_early

    def test_mix_and_power_parity(self, cost_model):
        """The matrix holds off the default task too: MIX spaces and the
        power constraint (which planned episodes cannot batch)."""
        from repro.search.registry import get_method

        for kwargs in ({"mix": True}, {"constraint_kind": "power"}):
            task = TaskSpec(model="mobilenet_v2", layer_slice=4, **kwargs)
            constraint = task.constraint(cost_model)
            for name in ("reinforce", "ppo2", "sac"):
                info = get_method(name)
                scalar = info.factory(seed=1).search(
                    task.make_env(cost_model, constraint), 4)
                vector = info.factory(seed=1).search(
                    VectorHWAssignmentEnv(
                        task.make_env(cost_model, constraint), 1), 4)
                assert_results_equal(scalar, vector)


class TestEnvsGreaterThanOne:
    @pytest.mark.parametrize("name", ["reinforce", "a2c", "ppo2", "td3"])
    def test_reproducible_per_seed_and_envs(self, name, task, cost_model,
                                            constraint):
        from repro.search.registry import get_method

        info = get_method(name)
        runs = []
        for _ in range(2):
            method = info.factory(seed=3)
            venv = VectorHWAssignmentEnv(
                task.make_env(cost_model, constraint), 4)
            runs.append(method.search(venv, 10))
        assert_results_equal(*runs)

    @pytest.mark.parametrize("envs", [2, 3, 8])
    def test_budget_spent_exactly(self, envs, task, cost_model,
                                  constraint):
        """Waves spend exactly the episode budget even when it does not
        divide by ``envs`` (the last wave set shrinks)."""
        from repro.search.registry import get_method

        method = get_method("a2c").factory(seed=0)
        venv = VectorHWAssignmentEnv(
            task.make_env(cost_model, constraint), envs)
        result = method.search(venv, 7)
        assert result.episodes == 7
        assert len(result.history) == 7

    def test_session_envs_resolution(self, monkeypatch):
        spec = SearchSpec(model="mobilenet_v2", budget=8)
        assert spec.resolved_envs() == 1
        monkeypatch.setenv("REPRO_ENVS", "4")
        assert spec.resolved_envs() == 4
        assert spec.replace(envs=2).resolved_envs() == 2
        monkeypatch.setenv("REPRO_ENVS", "0")
        with pytest.raises(ValueError):
            spec.resolved_envs()
        with pytest.raises(ValueError):
            SearchSpec(model="mobilenet_v2", envs=0)

    def test_spec_roundtrip_carries_envs(self):
        spec = SearchSpec(model="mobilenet_v2", method="ppo2", envs=8)
        assert SearchSpec.from_json(spec.to_json()) == spec
        assert SearchSpec.from_json(spec.to_json()).resolved_envs() == 8

    def test_session_run_with_envs(self):
        spec = SearchSpec(model="mobilenet_v2", method="ppo2", budget=10,
                          seed=0, layer_slice=5, envs=4)
        first = SearchSession(spec).run()
        second = SearchSession(spec).run()
        assert_results_equal(first.result, second.result)
        assert first.provenance["envs"] == 4
        assert first.result.episodes == 10

    def test_observers_see_vector_episodes(self):
        """Callbacks fire once per finished episode inside waves, and
        early stopping unwinds gracefully at a wave-set boundary."""
        from repro.search.callbacks import SearchObserver

        class Recorder(SearchObserver):
            def __init__(self):
                super().__init__()
                self.steps = 0

            def on_step(self, step, cost, best_cost):
                self.steps = step
                return False

        recorder = Recorder()
        spec = SearchSpec(model="mobilenet_v2", method="a2c", budget=9,
                          seed=0, layer_slice=5, envs=3)
        outcome = SearchSession(spec).run(callbacks=[recorder])
        assert recorder.steps == 9
        assert outcome.result.episodes == 9

        stopped = SearchSession(spec).run(
            callbacks=[EarlyStopping(patience=2)])
        assert stopped.stopped_early
        assert stopped.result.extra.get("stopped_early") is True

    def test_compare_methods_envs(self, task, cost_model):
        results = compare_methods(task, ["a2c"], epochs=8, seed=0,
                                  cost_model=cost_model, envs=4)
        direct = compare_methods(task, ["a2c"], epochs=8, seed=0,
                                 cost_model=cost_model, envs=4)
        assert_results_equal(results["a2c"], direct["a2c"])
        assert results["a2c"].episodes == 8

    def test_genome_methods_ignore_envs(self):
        spec = SearchSpec(model="mobilenet_v2", method="random", budget=40,
                          seed=0, layer_slice=4)
        scalar = SearchSession(spec).run()
        vector = SearchSession(spec.replace(envs=8)).run()
        assert_results_equal(scalar.result, vector.result)


class TestTwoStageEnvs:
    """``envs`` now reaches the two-stage pipeline's global RL stage
    (ROADMAP 5c): single-env waves stay bit-identical, multi-env waves
    are a reproducible new scenario, and observers still see one
    ``on_step`` per finished global episode."""

    def _spec(self, **overrides) -> SearchSpec:
        base = dict(model="mobilenet_v2", method="confuciux", budget=6,
                    seed=0, layer_slice=5, finetune=2)
        base.update(overrides)
        return SearchSpec(**base)

    def test_envs_one_equals_default_two_stage(self):
        scalar = SearchSession(self._spec()).run()
        vector = SearchSession(self._spec(envs=1)).run()
        assert_results_equal(scalar.result, vector.result)
        assert vector.provenance["envs"] == 1

    def test_wave_runs_are_reproducible_and_spend_the_budget(self):
        spec = self._spec(budget=7, envs=3, finetune=0)
        first = SearchSession(spec).run()
        second = SearchSession(spec).run()
        assert_results_equal(first.result, second.result)
        assert first.result.episodes == 7
        assert first.provenance["envs"] == 3

    def test_finetune_stage_still_runs_after_vector_global_stage(self):
        outcome = SearchSession(self._spec(budget=8, envs=4,
                                           finetune=3)).run()
        assert outcome.result.episodes >= 8
        assert "global_cost" in outcome.result.extra
        assert "finetune_cost" in outcome.result.extra

    def test_observers_see_global_episodes_inside_waves(self):
        from repro.search.callbacks import SearchObserver

        class Recorder(SearchObserver):
            def __init__(self):
                super().__init__()
                self.steps = 0

            def on_step(self, step, cost, best_cost):
                self.steps = step
                return False

        recorder = Recorder()
        SearchSession(self._spec(budget=6, envs=3, finetune=0)).run(
            callbacks=[recorder])
        assert recorder.steps == 6

    def test_early_stop_unwinds_the_vector_global_stage(self):
        stopped = SearchSession(self._spec(budget=40, envs=4)).run(
            callbacks=[EarlyStopping(patience=2)])
        assert stopped.stopped_early
