"""Observer/worker lifecycle edge cases for the parallel engine.

Worker processes are the one resource a search can genuinely leak, so
these tests pin the teardown guarantees: early stops and mid-generation
method exceptions must terminate the pool (no orphan processes), the
``on_teardown`` hook must fire on every exit path, and a checkpointed
run that gets interrupted must be resumable to the exact trajectory of
an uninterrupted run (sessions are deterministic from their spec).
"""

from __future__ import annotations

import json
import multiprocessing

import pytest

import repro
from repro.search import (
    CheckpointHook,
    EarlyStopping,
    SearchObserver,
    SearchSession,
    SearchSpec,
    register_method,
    unregister_method,
)
from repro.parallel import ParallelCoordinator


def _orphan_workers():
    """Live ``repro-worker`` children of this process."""
    return [process for process in multiprocessing.active_children()
            if process.name.startswith("repro-worker")]


def _spec(**overrides) -> SearchSpec:
    # dispatch_min_batch=0: lifecycle tests are about worker ownership,
    # so the small test batches must actually reach the workers.
    base = dict(model="mobilenet_v2", method="ga", budget=60, seed=3,
                layer_slice=4, executor="process", workers=2,
                dispatch_min_batch=0)
    base.update(overrides)
    return SearchSpec(**base)


class TestWorkerTeardown:
    def test_early_stop_terminates_workers(self):
        """EarlyStopping mid-generation: result is kept, pool is gone."""
        coordinator = ParallelCoordinator("process", workers=2)
        outcome = SearchSession(_spec()).run(
            callbacks=[EarlyStopping(patience=5), coordinator])
        assert outcome.stopped_early
        assert outcome.result.extra.get("stopped_early") is True
        assert coordinator.alive_workers == 0
        assert not _orphan_workers()

    def test_method_exception_terminates_workers(self):
        """A method crashing mid-generation must not orphan the pool."""

        class Exploding:
            name = "exploding"

            def __init__(self, seed=None):
                pass

            def search(self, evaluator, budget):
                evaluator.evaluate_population(
                    [[0] * evaluator.genome_length] * 8)
                raise RuntimeError("boom mid-generation")

        register_method("_test-exploding", Exploding, kind="genome",
                        batchable=True, overwrite=True)
        coordinator = ParallelCoordinator("process", workers=2)
        try:
            with pytest.raises(RuntimeError, match="boom"):
                SearchSession(_spec(method="_test-exploding")).run(
                    callbacks=[coordinator])
        finally:
            unregister_method("_test-exploding")
        assert coordinator.alive_workers == 0
        assert not _orphan_workers()

    def test_session_owned_coordinator_cleans_up(self):
        """With no explicit coordinator the session creates one; it must
        vanish with the run on success and on failure alike."""
        SearchSession(_spec()).run()
        assert not _orphan_workers()

    def test_user_installed_backend_is_not_clobbered(self, monkeypatch):
        """A backend the caller installed with CostModel.set_executor is
        theirs: the session must neither stack a second pool on top nor
        uninstall it on teardown."""
        from repro import CostModel
        from repro.parallel import make_backend

        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        model = CostModel()
        with make_backend("thread", 2) as backend:
            model.set_executor(backend)
            SearchSession(_spec(executor=None, workers=None),
                          cost_model=model).run()
            assert model.executor is backend
        assert not _orphan_workers()

    def test_keep_alive_pool_survives_runs_until_closed(self):
        """A keep-alive coordinator serves many sessions on one pool."""
        with ParallelCoordinator("process", workers=2,
                                 keep_alive=True) as pool:
            first = SearchSession(_spec(seed=1)).run(callbacks=[pool])
            assert pool.alive_workers == 2
            second = SearchSession(_spec(seed=1)).run(callbacks=[pool])
            assert first.best_cost == second.best_cost
        assert pool.alive_workers == 0
        assert not _orphan_workers()


class TestTeardownHook:
    def test_on_teardown_fires_on_every_exit_path(self):
        events = []

        class Recorder(SearchObserver):
            def on_finish(self, result):
                events.append("finish")

            def on_teardown(self):
                events.append("teardown")

        SearchSession(_spec(executor="serial")).run(callbacks=[Recorder()])
        assert events == ["teardown", "finish"]

        class Crashing:
            name = "crashing"

            def __init__(self, seed=None):
                pass

            def search(self, evaluator, budget):
                raise ValueError("no search today")

        register_method("_test-crashing", Crashing, kind="genome",
                        overwrite=True)
        events.clear()
        try:
            with pytest.raises(ValueError):
                SearchSession(
                    _spec(method="_test-crashing", executor="serial")
                ).run(callbacks=[Recorder()])
        finally:
            unregister_method("_test-crashing")
        # Teardown fired, on_finish (success-only) did not.
        assert events == ["teardown"]


class TestCheckpointResume:
    def test_interrupted_run_resumes_to_identical_trajectory(self, tmp_path):
        """CheckpointHook + early stop, then resume from the spec: the
        resumed (fresh, deterministic) run reproduces the uninterrupted
        trajectory exactly, and the interrupted history is its prefix."""
        spec = _spec(executor="serial", seed=9)
        uninterrupted = SearchSession(spec).run()

        checkpoint = tmp_path / "best.json"
        stopper = EarlyStopping(patience=8)
        interrupted = SearchSession(spec).run(
            callbacks=[CheckpointHook(checkpoint), stopper])
        assert interrupted.stopped_early
        stopped_at = stopper.stopped_at
        assert stopped_at is not None

        # The interrupted trajectory is a prefix of the full one ...
        full = uninterrupted.result.history
        partial = interrupted.result.history
        assert partial == full[: len(partial)]
        assert len(partial) == stopped_at

        # ... the checkpoint holds the best seen up to the stop ...
        document = json.loads(checkpoint.read_text())
        assert document["best_cost"] == interrupted.best_cost
        assert document["step"] <= stopped_at

        # ... and "resume" -- rerunning the frozen spec -- lands on the
        # uninterrupted result bit for bit.
        resumed = SearchSession(spec).run()
        assert resumed.best_cost == uninterrupted.best_cost
        assert resumed.result.history == full
        assert resumed.result.best_genome == uninterrupted.result.best_genome

    def test_checkpoint_resume_parity_under_process_executor(self, tmp_path):
        """The same resume contract holds when the runs shard through
        worker processes."""
        serial = SearchSession(_spec(executor="serial", seed=4)).run()
        checkpoint = tmp_path / "best.json"
        interrupted = SearchSession(_spec(seed=4)).run(
            callbacks=[CheckpointHook(checkpoint),
                       EarlyStopping(patience=6)])
        resumed = SearchSession(_spec(seed=4)).run()
        assert interrupted.result.history == \
            serial.result.history[: len(interrupted.result.history)]
        assert resumed.best_cost == serial.best_cost
        assert resumed.result.history == serial.result.history
        assert not _orphan_workers()


class TestPoolLease:
    """One keep-alive pool shared by *concurrent* sessions through
    per-session leases (the search service's execution model): batch
    evaluations from all lessees serialize on the pool lock, so
    interleaved sessions are bit-identical to serial runs."""

    def test_two_interleaved_sessions_match_serial_bit_for_bit(self):
        import threading

        specs = [_spec(seed=seed) for seed in (1, 2)]
        serial = [SearchSession(spec.replace(executor="serial")).run()
                  for spec in specs]
        with ParallelCoordinator("process", workers=2,
                                 keep_alive=True) as pool:
            results = [None, None]
            barrier = threading.Barrier(2)

            def run(index):
                barrier.wait()
                results[index] = SearchSession(specs[index]).run(
                    callbacks=[pool.lease()])

            threads = [threading.Thread(target=run, args=(index,))
                       for index in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert pool.alive_workers == 2
            for outcome, reference in zip(results, serial):
                assert outcome.best_cost == reference.best_cost
                assert outcome.result.history == reference.result.history
                assert outcome.result.best_genome \
                    == reference.result.best_genome
        assert pool.alive_workers == 0
        assert not _orphan_workers()

    def test_lease_detach_leaves_the_pool_warm(self):
        with ParallelCoordinator("process", workers=2,
                                 keep_alive=True) as pool:
            first = SearchSession(_spec(seed=1)).run(
                callbacks=[pool.lease()])
            assert pool.alive_workers == 2
            second = SearchSession(_spec(seed=1)).run(
                callbacks=[pool.lease()])
            assert second.best_cost == first.best_cost
            assert second.result.history == first.result.history
        assert pool.alive_workers == 0
        assert not _orphan_workers()

    def test_non_keep_alive_pool_outlives_the_first_detach(self):
        """With overlapping lessees the pool must survive until the
        *last* session detaches, keep_alive or not."""
        import threading

        pool = ParallelCoordinator("process", workers=2)
        barrier = threading.Barrier(2)
        results = [None, None]

        def run(index):
            barrier.wait()
            results[index] = SearchSession(_spec(seed=index)).run(
                callbacks=[pool.lease()])

        threads = [threading.Thread(target=run, args=(index,))
                   for index in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert all(outcome is not None for outcome in results)
        assert pool.alive_workers == 0
        assert not _orphan_workers()
