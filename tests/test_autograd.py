"""Gradient-correctness tests for the autograd engine.

Every operator is checked against central finite differences on random
inputs, plus structural tests (broadcasting, graph reuse, no_grad).
"""

import numpy as np
import pytest

from repro.nn.autograd import Tensor, no_grad


def numerical_grad(func, value, eps=1e-6):
    """Central-difference gradient of scalar func at value."""
    grad = np.zeros_like(value)
    flat = value.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = func(value)
        flat[i] = original - eps
        minus = func(value)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_grad(op, value, seed=0, positive=False):
    """Compare autograd and numerical gradients for scalar-reduced op."""
    rng = np.random.default_rng(seed)
    data = rng.standard_normal(value).astype(np.float64)
    if positive:
        data = np.abs(data) + 0.5
    tensor = Tensor(data.copy(), requires_grad=True)
    out = op(tensor).sum()
    out.backward()
    numeric = numerical_grad(lambda v: float(op(Tensor(v)).sum().data),
                             data.copy())
    np.testing.assert_allclose(tensor.grad, numeric, rtol=1e-4, atol=1e-6)


class TestElementwiseGrads:
    @pytest.mark.parametrize("op,positive", [
        (lambda t: t.exp(), False),
        (lambda t: t.log(), True),
        (lambda t: t.sqrt(), True),
        (lambda t: t.tanh(), False),
        (lambda t: t.sigmoid(), False),
        (lambda t: t.relu(), False),
        (lambda t: t.abs(), False),
        (lambda t: t * t, False),
        (lambda t: t ** 3, False),
        (lambda t: 1.0 / (t + 3.0), False),
        (lambda t: t.clip(-0.5, 0.5), False),
        (lambda t: -t, False),
        (lambda t: t - 2.0 * t, False),
    ])
    def test_against_numerical(self, op, positive):
        check_grad(op, (3, 4), positive=positive)

    def test_pow_requires_scalar_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0], requires_grad=True) ** Tensor([2.0])


class TestMatmulGrads:
    def test_matmul_both_sides(self):
        rng = np.random.default_rng(1)
        a_data = rng.standard_normal((3, 4))
        b_data = rng.standard_normal((4, 2))
        a = Tensor(a_data.copy(), requires_grad=True)
        b = Tensor(b_data.copy(), requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 2)) @ b_data.T)
        np.testing.assert_allclose(b.grad, a_data.T @ np.ones((3, 2)))


class TestBroadcasting:
    def test_add_bias_broadcast(self):
        x = Tensor(np.ones((5, 3)), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        (x + b).sum().backward()
        np.testing.assert_allclose(b.grad, np.full(3, 5.0))

    def test_mul_scalar_tensor(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        s = Tensor(2.0, requires_grad=True)
        (x * s).sum().backward()
        np.testing.assert_allclose(s.grad, 6.0)

    def test_keepdims_broadcast(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        m = x.sum(axis=1, keepdims=True)
        (x / m).sum().backward()
        assert x.grad.shape == (2, 3)


class TestReductions:
    def test_sum_axis_grad(self):
        check_grad(lambda t: t.sum(axis=0), (3, 4))
        check_grad(lambda t: t.sum(axis=1, keepdims=True), (3, 4))

    def test_mean_grad(self):
        check_grad(lambda t: t.mean(), (3, 4))
        check_grad(lambda t: t.mean(axis=1), (3, 4))

    def test_max_grad_unique(self):
        data = np.array([[1.0, 5.0, 2.0], [7.0, 0.0, 3.0]])
        x = Tensor(data, requires_grad=True)
        x.max(axis=1).sum().backward()
        expected = np.array([[0.0, 1.0, 0.0], [1.0, 0.0, 0.0]])
        np.testing.assert_allclose(x.grad, expected)

    def test_max_grad_splits_ties(self):
        x = Tensor(np.array([[2.0, 2.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.5, 0.5]])


class TestShapeOps:
    def test_reshape_grad(self):
        check_grad(lambda t: (t.reshape(12) * 2.0), (3, 4))

    def test_transpose_grad(self):
        check_grad(lambda t: t.T * 3.0, (3, 4))

    def test_getitem_grad(self):
        x = Tensor(np.arange(12.0).reshape(3, 4), requires_grad=True)
        x[1].sum().backward()
        expected = np.zeros((3, 4))
        expected[1] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_getitem_fancy_index_accumulates(self):
        x = Tensor(np.arange(4.0), requires_grad=True)
        x[np.array([0, 0, 2])].sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 0.0, 1.0, 0.0])

    def test_concat_grad(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        out = Tensor.concat([a, b], axis=1)
        (out * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 2), 2.0))
        np.testing.assert_allclose(b.grad, np.full((2, 3), 2.0))

    def test_stack_grad(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        Tensor.stack([a, b], axis=0).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))
        np.testing.assert_allclose(b.grad, np.ones(3))


class TestGraphMechanics:
    def test_diamond_graph_accumulates(self):
        x = Tensor(2.0, requires_grad=True)
        y = x * 3.0
        z = x * 4.0
        (y + z).backward()
        np.testing.assert_allclose(x.grad, 7.0)

    def test_reused_node_accumulates(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x * 2.0
        (y + y).sum().backward()
        np.testing.assert_allclose(x.grad, np.full(3, 4.0))

    def test_backward_requires_scalar_without_seed(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError, match="scalar"):
            (x * 2.0).backward()

    def test_backward_with_seed(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2.0).backward(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(x.grad, [2.0, 4.0, 6.0])

    def test_backward_on_non_grad_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(1.0).backward()

    def test_no_grad_blocks_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_no_grad_restores_on_exception(self):
        x = Tensor(1.0, requires_grad=True)
        try:
            with no_grad():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert (x * 2.0).requires_grad

    def test_detach_cuts_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x * 2.0).detach()
        assert not y.requires_grad

    def test_zero_grad(self):
        x = Tensor(1.0, requires_grad=True)
        (x * 2.0).backward()
        x.zero_grad()
        assert x.grad is None

    def test_numpy_returns_copy(self):
        x = Tensor(np.ones(3))
        arr = x.numpy()
        arr[0] = 99.0
        assert x.data[0] == 1.0

    def test_item_and_shape(self):
        x = Tensor(3.5)
        assert x.item() == 3.5
        assert Tensor(np.ones((2, 3))).shape == (2, 3)
        assert Tensor(np.ones((2, 3))).ndim == 2
        assert Tensor(np.ones((2, 3))).size == 6
