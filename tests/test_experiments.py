"""Tests for the experiment harness: TaskSpec, runner, LS/LP studies."""

import numpy as np
import pytest

from repro.env.spaces import ActionSpace
from repro.experiments import TaskSpec, compare_methods, default_epochs
from repro.experiments.ls_study import (
    best_action_pair,
    heuristic_a,
    heuristic_b,
    layer_contour,
    most_compute_intensive,
    per_layer_optima,
    plateau_fraction,
    uniform_cost,
)
from repro.experiments.lp_study import format_row, run_row, winners
from repro.experiments.runner import method_factories


class TestTaskSpec:
    def test_builds_env_and_evaluator(self, cost_model):
        task = TaskSpec(model="mobilenet_v2", layer_slice=6)
        env = task.make_env(cost_model)
        evaluator = task.make_evaluator(cost_model)
        assert env.num_steps == 6
        assert evaluator.genome_length == 12

    def test_layer_slice(self, cost_model):
        assert len(TaskSpec(model="ncf").layers()) == 4
        assert len(TaskSpec(model="ncf", layer_slice=2).layers()) == 2

    def test_accepts_explicit_layers(self, tiny_model, cost_model):
        task = TaskSpec(model=tiny_model)
        assert task.layers() == list(tiny_model)
        assert "custom" in task.label()

    def test_mix_task(self, cost_model):
        task = TaskSpec(model="ncf", mix=True)
        env = task.make_env(cost_model)
        assert env.space.is_mix

    def test_resource_constraint_task(self, cost_model):
        task = TaskSpec(model="ncf", constraint_kind="resource",
                        max_total_pes=100, max_total_l1=5000)
        constraint = task.constraint(cost_model)
        assert constraint.kind == "resource"
        assert constraint.max_pes == 100

    def test_label_and_scaled(self):
        task = TaskSpec(model="resnet50", dataflow="eye",
                        objective="energy", platform="cloud")
        assert task.label() == "resnet50-eye energy area:cloud"
        assert task.scaled(4).layer_slice == 4

    def test_default_epochs_env_var(self, monkeypatch):
        monkeypatch.delenv("REPRO_EPOCHS", raising=False)
        assert default_epochs(123) == 123
        monkeypatch.setenv("REPRO_EPOCHS", "7")
        assert default_epochs(123) == 7
        monkeypatch.setenv("REPRO_EPOCHS", "0")
        with pytest.raises(ValueError):
            default_epochs()


class TestRunner:
    def test_method_factories_resolve(self):
        factories = method_factories(["ga", "reinforce", "reinforce-mlp"])
        assert set(factories) == {"ga", "reinforce", "reinforce-mlp"}

    def test_method_factories_reject_unknown(self):
        with pytest.raises(KeyError, match="unknown method"):
            method_factories(["alphago"])

    def test_compare_methods_mixed_families(self, cost_model):
        task = TaskSpec(model="mobilenet_v2", layer_slice=6,
                        platform="cloud")
        results = compare_methods(task, ["random", "reinforce"], epochs=20,
                                  cost_model=cost_model)
        assert set(results) == {"random", "reinforce"}
        for result in results.values():
            assert len(result.history) == 20

    def test_compare_methods_cache_hits_and_interop(self, cost_model,
                                                    tmp_path):
        """The grid shares the service's content-addressed store: a
        second identical grid is all hits (and bit-identical up to wall
        clock), the service can read what the grid wrote, and
        ``force=True`` re-runs."""
        from repro.service import ResultStore, SearchServer

        store = ResultStore(root=tmp_path / "cache")
        task = TaskSpec(model="mnasnet", layer_slice=3, platform="cloud")
        first = compare_methods(task, ["random", "ga"], epochs=20,
                                cost_model=cost_model, cache=store)
        assert store.stats()["entries"] == 2
        second = compare_methods(task, ["random", "ga"], epochs=20,
                                 cost_model=cost_model, cache=store)
        assert store.hits >= 2
        for name in first:
            assert second[name].best_cost == first[name].best_cost
            assert second[name].history == first[name].history
        with SearchServer(store=store, executor="serial") as server:
            from repro.experiments.runner import _grid_spec

            spec = _grid_spec(task, "random", 20, 0, 1)
            job = server.submit(spec).wait(timeout=60)
            assert job.cached
            assert server.executions == 0
        forced = compare_methods(task, ["random"], epochs=20,
                                 cost_model=cost_model, cache=store,
                                 force=True)
        assert forced["random"].best_cost == first["random"].best_cost

    def test_compare_methods_layer_list_tasks_skip_the_cache(
            self, tiny_model, cost_model, tmp_path):
        from repro.service import ResultStore

        store = ResultStore(root=tmp_path / "cache")
        task = TaskSpec(model=tiny_model, platform="cloud")
        compare_methods(task, ["random"], epochs=10,
                        cost_model=cost_model, cache=store)
        assert store.stats()["entries"] == 0

    def test_run_row_and_formatting(self, cost_model):
        task = TaskSpec(model="ncf", platform="cloud")
        results = run_row(task, ["random", "ga"], epochs=25,
                          cost_model=cost_model)
        row = format_row("ncf", results, ["random", "ga"])
        assert row[0] == "ncf"
        assert len(row) == 3

    def test_winners(self, cost_model):
        task = TaskSpec(model="ncf", platform="cloud")
        results = run_row(task, ["random", "ga"], epochs=25,
                          cost_model=cost_model)
        best = winners(results)
        assert best
        assert all(name in results for name in best)


class TestLSStudy:
    @pytest.fixture(scope="class")
    def space(self):
        return ActionSpace.build("dla")

    def test_contour_shape_and_positivity(self, cost_model, conv_layer,
                                          space):
        grid = layer_contour(conv_layer, "dla", "latency", cost_model,
                             space)
        assert grid.shape == (12, 12)
        assert np.all(grid > 0)

    def test_best_action_pair(self, cost_model, conv_layer, space):
        grid = layer_contour(conv_layer, "dla", "latency", cost_model,
                             space)
        pe_idx, buf_idx, value = best_action_pair(grid)
        assert value == grid.min()
        assert grid[pe_idx, buf_idx] == value

    def test_plateau_exists(self, cost_model, dw_layer, space):
        # DWCONV under dla: latency flat along the buffer axis (Fig. 5).
        grid = layer_contour(dw_layer, "dla", "latency", cost_model, space)
        assert plateau_fraction(grid) > 0.9

    def test_most_compute_intensive(self, tiny_model):
        index = most_compute_intensive(tiny_model)
        assert tiny_model[index].macs == max(l.macs for l in tiny_model)

    def test_heuristics_end_to_end(self, cost_model, mobilenet_slice,
                                   space):
        a = heuristic_a(mobilenet_slice, "dla", "latency", cost_model,
                        space)
        b = heuristic_b(mobilenet_slice, "dla", "latency", cost_model,
                        space)
        # B optimizes exactly the reported metric, so it can't lose to A.
        assert b.end_to_end_cost <= a.end_to_end_cost
        assert a.end_to_end_cost == pytest.approx(uniform_cost(
            mobilenet_slice, "dla", "latency", cost_model, a.pes,
            a.l1_bytes))

    def test_per_layer_optima_differ(self, cost_model, mobilenet_slice,
                                     space):
        # The Fig. 5 claim: no single action pair suits all layers.
        optima = per_layer_optima(mobilenet_slice, "dla", "latency",
                                  cost_model, space)
        pairs = {(pe, buf) for pe, buf, _ in optima}
        assert len(pairs) > 1
