"""Tests for the HW-assignment environment: rewards, penalties, budgets."""

import numpy as np
import pytest

from repro.core.constraints import (
    PlatformConstraint,
    ResourceConstraint,
    platform_constraint,
)
from repro.core.evaluator import DesignPointEvaluator
from repro.env import ActionSpace, HWAssignmentEnv


@pytest.fixture
def loose_env(cost_model, tiny_model, space_dla):
    constraint = platform_constraint(tiny_model, "dla", "area", "unlimited",
                                     cost_model, space_dla)
    return HWAssignmentEnv(tiny_model, space_dla, "latency", constraint,
                           cost_model, dataflow="dla")


@pytest.fixture
def tight_env(cost_model, tiny_model, space_dla):
    constraint = platform_constraint(tiny_model, "dla", "area", "iotx",
                                     cost_model, space_dla)
    return HWAssignmentEnv(tiny_model, space_dla, "latency", constraint,
                           cost_model, dataflow="dla")


class TestEpisodeMechanics:
    def test_reset_returns_observation(self, loose_env):
        obs = loose_env.reset()
        assert obs.shape == (10,)
        assert np.all(np.abs(obs) <= 1.0)

    def test_full_episode_steps_all_layers(self, loose_env):
        loose_env.reset()
        done = False
        steps = 0
        while not done:
            _, _, done, info = loose_env.step((3, 3))
            steps += 1
        assert steps == loose_env.num_steps
        assert info["episode"] is not None
        assert info["episode"].feasible

    def test_step_after_done_raises(self, loose_env):
        loose_env.reset()
        for _ in range(loose_env.num_steps):
            loose_env.step((0, 0))
        with pytest.raises(RuntimeError, match="finished"):
            loose_env.step((0, 0))

    def test_requires_dataflow(self, cost_model, tiny_model, space_dla):
        constraint = PlatformConstraint(kind="area", budget=1e12)
        with pytest.raises(ValueError, match="dataflow"):
            HWAssignmentEnv(tiny_model, space_dla, "latency", constraint,
                            cost_model)

    def test_rejects_empty_model(self, cost_model, space_dla):
        constraint = PlatformConstraint(kind="area", budget=1e12)
        with pytest.raises(ValueError, match="no layers"):
            HWAssignmentEnv([], space_dla, "latency", constraint,
                            cost_model, dataflow="dla")


class TestRewardShaping:
    def test_rewards_nonnegative_while_feasible(self, loose_env):
        loose_env.reset()
        done = False
        while not done:
            _, reward, done, info = loose_env.step((5, 5))
            if not info["violated"]:
                assert reward >= 0.0

    def test_pmin_tracked_across_episodes(self, loose_env):
        loose_env.reset()
        for _ in range(loose_env.num_steps):
            loose_env.step((0, 0))
        p_min_first = loose_env.p_min
        loose_env.reset()
        for _ in range(loose_env.num_steps):
            loose_env.step((11, 11))
        # P_min only falls (it is a global minimum of performance).
        assert loose_env.p_min <= p_min_first

    def test_better_action_gets_higher_reward(self, cost_model, tiny_model,
                                              space_dla):
        # After P_min is anchored by a slow episode, a fast config must
        # receive a strictly larger shaped reward than a slow one.
        constraint = PlatformConstraint(kind="area", budget=1e15)
        env = HWAssignmentEnv(tiny_model, space_dla, "latency", constraint,
                              cost_model, dataflow="dla")
        env.reset()
        _, slow_reward, _, _ = env.step((0, 0))
        env.reset()
        _, fast_reward, _, _ = env.step((11, 5))
        assert fast_reward > slow_reward

    def test_penalty_is_negated_accumulated_reward(self, tight_env):
        tight_env.reset()
        rewards = []
        done = False
        while not done:
            _, reward, done, info = tight_env.step((11, 11))
            rewards.append(reward)
        assert info["violated"]
        # Equation 2: the final reward is minus the sum of the previous.
        assert rewards[-1] == pytest.approx(-sum(rewards[:-1]))

    def test_violation_ends_episode_early(self, tight_env):
        tight_env.reset()
        _, _, done, info = tight_env.step((11, 11))
        assert done
        assert info["violated"]
        assert not info["episode"].feasible


class TestBudgetAccounting:
    def test_budget_left_decreases(self, loose_env):
        # Unlimited budget stays infinite.
        loose_env.reset()
        assert loose_env.budget_left() == float("inf")

    def test_area_budget_matches_evaluator(self, cost_model, tiny_model,
                                           space_dla):
        constraint = platform_constraint(tiny_model, "dla", "area", "cloud",
                                         cost_model, space_dla)
        env = HWAssignmentEnv(tiny_model, space_dla, "latency", constraint,
                              cost_model, dataflow="dla")
        env.reset()
        done = False
        while not done:
            _, _, done, info = env.step((2, 2))
        episode = info["episode"]
        evaluator = DesignPointEvaluator(tiny_model, "latency", constraint,
                                         cost_model, space_dla,
                                         dataflow="dla")
        outcome = evaluator.evaluate_genome(episode.genome)
        assert episode.cost == pytest.approx(outcome.cost)
        assert episode.used == pytest.approx(outcome.used)
        assert episode.feasible == outcome.feasible

    def test_resource_constraint_budget(self, cost_model, tiny_model,
                                        space_dla):
        constraint = ResourceConstraint(max_pes=20, max_l1_bytes=10_000)
        env = HWAssignmentEnv(tiny_model, space_dla, "latency", constraint,
                              cost_model, dataflow="dla")
        env.reset()
        env.step((3, 0))  # 8 PEs
        assert env.budget_left() == 12
        _, _, done, info = env.step((5, 0))  # +16 PEs > 20
        assert done and info["violated"]


class TestBestTracking:
    def test_best_keeps_lowest_cost(self, loose_env):
        for action in ((0, 0), (5, 5), (2, 2)):
            loose_env.reset()
            done = False
            while not done:
                _, _, done, info = loose_env.step(action)
        best = loose_env.best
        assert best is not None
        assert best.feasible
        # Re-run each uniform config to confirm the min was kept.
        costs = []
        for action in ((0, 0), (5, 5), (2, 2)):
            loose_env.reset()
            done = False
            while not done:
                _, _, done, info = loose_env.step(action)
            costs.append(info["episode"].cost)
        assert best.cost == pytest.approx(min(costs))

    def test_infeasible_never_becomes_best(self, tight_env):
        tight_env.reset()
        done = False
        while not done:
            _, _, done, _ = tight_env.step((11, 11))
        assert tight_env.best is None

    def test_episode_genome_roundtrip(self, loose_env):
        loose_env.reset()
        done = False
        while not done:
            _, _, done, info = loose_env.step((4, 2))
        episode = info["episode"]
        assert episode.genome == [4, 2] * loose_env.num_steps
        assert episode.assignments[0] == (12, 39)


class TestMixEnvironment:
    def test_mix_actions_carry_style(self, cost_model, tiny_model,
                                     space_mix):
        constraint = PlatformConstraint(kind="area", budget=1e15)
        env = HWAssignmentEnv(tiny_model, space_mix, "latency", constraint,
                              cost_model)
        env.reset()
        _, _, _, info = env.step((3, 3, 2))
        assert len(env._episode_assignments[0]) == 3

    def test_mix_episode_completes(self, cost_model, tiny_model, space_mix):
        constraint = PlatformConstraint(kind="area", budget=1e15)
        env = HWAssignmentEnv(tiny_model, space_mix, "latency", constraint,
                              cost_model)
        env.reset()
        done = False
        step = 0
        while not done:
            _, _, done, info = env.step((3, 3, step % 3))
            step += 1
        assert info["episode"].feasible


class TestObjectives:
    @pytest.mark.parametrize("objective", ["latency", "energy", "edp"])
    def test_all_objectives_run(self, cost_model, tiny_model, space_dla,
                                objective):
        constraint = PlatformConstraint(kind="area", budget=1e15)
        env = HWAssignmentEnv(tiny_model, space_dla, objective, constraint,
                              cost_model, dataflow="dla")
        env.reset()
        done = False
        while not done:
            _, _, done, info = env.step((3, 3))
        assert info["episode"].cost > 0
