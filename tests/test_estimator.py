"""Tests for the analytical cost estimator."""

import pytest

from repro.costmodel import CostModel, HardwareConfig
from repro.costmodel.report import CostReport, ModelCostReport
from repro.models.layers import Layer, LayerType


class TestHardwareConfig:
    def test_defaults_valid(self):
        HardwareConfig()

    @pytest.mark.parametrize("field", [
        "clock_ghz", "mac_area_um2", "mac_energy_pj",
        "dram_bandwidth_bytes_per_cycle",
    ])
    def test_rejects_nonpositive(self, field):
        with pytest.raises(ValueError, match=field):
            HardwareConfig(**{field: 0.0})

    @pytest.mark.parametrize("field", [
        "pe_static_power_mw", "l1_accesses_per_mac", "pipeline_fill_cycles",
    ])
    def test_rejects_negative(self, field):
        with pytest.raises(ValueError, match=field):
            HardwareConfig(**{field: -1.0})


class TestEvaluateLayer:
    def test_report_fields_positive(self, cost_model, conv_layer):
        report = cost_model.evaluate_layer(conv_layer, "dla", 16, 39)
        assert report.latency_cycles > 0
        assert report.energy_nj > 0
        assert report.area_um2 > 0
        assert report.power_mw > 0
        assert 0 < report.pe_utilization <= 1.0
        assert report.pes_used <= 16

    def test_invalid_pes(self, cost_model, conv_layer):
        with pytest.raises(ValueError, match="pes"):
            cost_model.evaluate_layer(conv_layer, "dla", 0, 39)

    def test_invalid_buffer(self, cost_model, conv_layer):
        with pytest.raises(ValueError, match="l1_bytes"):
            cost_model.evaluate_layer(conv_layer, "dla", 16, 0)

    def test_latency_non_increasing_in_pes(self, cost_model, conv_layer):
        latencies = [
            cost_model.evaluate_layer(conv_layer, "dla", pes, 39)
            .latency_cycles
            for pes in (1, 2, 4, 8, 16, 32, 64, 128)
        ]
        assert all(b <= a for a, b in zip(latencies, latencies[1:]))

    def test_area_strictly_increasing_in_pes(self, cost_model, conv_layer):
        areas = [
            cost_model.evaluate_layer(conv_layer, "dla", pes, 39).area_um2
            for pes in (1, 2, 4, 8, 16)
        ]
        assert all(b > a for a, b in zip(areas, areas[1:]))

    def test_area_strictly_increasing_in_buffer(self, cost_model,
                                                conv_layer):
        areas = [
            cost_model.evaluate_layer(conv_layer, "dla", 16, b).area_um2
            for b in (19, 39, 69, 129)
        ]
        assert all(b > a for a, b in zip(areas, areas[1:]))

    def test_overprovisioning_plateau(self, cost_model):
        # A tiny layer cannot use a big array: latency flattens.
        layer = Layer("tiny", LayerType.CONV, K=2, C=2, Y=8, X=8, R=3, S=3)
        r64 = cost_model.evaluate_layer(layer, "dla", 64, 19)
        r128 = cost_model.evaluate_layer(layer, "dla", 128, 19)
        assert r64.latency_cycles == r128.latency_cycles

    def test_power_equals_energy_over_latency(self, cost_model, conv_layer):
        report = cost_model.evaluate_layer(conv_layer, "dla", 16, 39)
        assert report.power_mw == pytest.approx(
            report.energy_nj * 1000.0 / report.latency_cycles)

    def test_latency_bounded_by_memory(self, cost_model, gemm):
        report = cost_model.evaluate_layer(gemm, "dla", 128, 129)
        assert report.latency_cycles >= report.memory_cycles

    def test_l2_double_buffers_tile(self, cost_model, conv_layer):
        hw = HardwareConfig()
        report = cost_model.evaluate_layer(conv_layer, "dla", 16, 39)
        assert report.l2_bytes == int(2 * hw.l2_sizing_factor * 16 * 39)

    def test_area_breakdown_sums_to_total(self, cost_model, conv_layer):
        r = cost_model.evaluate_layer(conv_layer, "dla", 16, 39)
        assert r.area_um2 == pytest.approx(
            r.pe_area_um2 + r.l1_area_um2 + r.l2_area_um2 + r.noc_area_um2)

    def test_objective_lookup(self, cost_model, conv_layer):
        r = cost_model.evaluate_layer(conv_layer, "dla", 16, 39)
        assert r.objective("latency") == r.latency_cycles
        assert r.objective("energy") == r.energy_nj
        assert r.objective("edp") == pytest.approx(
            r.latency_cycles * r.energy_nj)
        with pytest.raises(KeyError, match="unknown objective"):
            r.objective("throughput")

    def test_constraint_lookup(self, cost_model, conv_layer):
        r = cost_model.evaluate_layer(conv_layer, "dla", 16, 39)
        assert r.constraint("area") == r.area_um2
        assert r.constraint("power") == r.power_mw
        with pytest.raises(KeyError, match="unknown constraint"):
            r.constraint("volume")

    def test_custom_hw_config_changes_results(self, conv_layer):
        base = CostModel().evaluate_layer(conv_layer, "dla", 16, 39)
        doubled = CostModel(
            HardwareConfig(mac_area_um2=3000.0)
        ).evaluate_layer(conv_layer, "dla", 16, 39)
        assert doubled.area_um2 > base.area_um2

    def test_cache_hits(self, conv_layer):
        model = CostModel()
        model.evaluate_layer(conv_layer, "dla", 16, 39)
        model.evaluate_layer(conv_layer, "dla", 16, 39)
        info = model.cache_info()
        assert info.hits >= 1
        model.clear_cache()
        assert model.cache_info().hits == 0

    @pytest.mark.parametrize("style", ["dla", "eye", "shi"])
    def test_all_styles_all_types(self, cost_model, tiny_model, style):
        for layer in tiny_model:
            report = cost_model.evaluate_layer(layer, style, 12, 49)
            assert report.latency_cycles > 0


class TestEvaluateModel:
    def test_lp_sums_per_layer(self, cost_model, tiny_model):
        assignments = [(16, 39)] * len(tiny_model)
        report = cost_model.evaluate_model(tiny_model, assignments,
                                           dataflow="dla")
        assert report.latency_cycles == pytest.approx(
            sum(r.latency_cycles for r in report.per_layer))
        assert report.area_um2 == pytest.approx(
            sum(r.area_um2 for r in report.per_layer))
        assert len(report.per_layer) == len(tiny_model)

    def test_lp_heterogeneous_assignments(self, cost_model, tiny_model):
        assignments = [(1, 19), (8, 29), (64, 79), (128, 129)]
        report = cost_model.evaluate_model(tiny_model, assignments,
                                           dataflow="dla")
        assert report.per_layer[0].area_um2 < report.per_layer[3].area_um2

    def test_lp_mix_styles(self, cost_model, tiny_model):
        assignments = [(16, 39, "dla"), (16, 39, "eye"), (16, 39, "shi"),
                       (16, 39, "dla")]
        report = cost_model.evaluate_model(tiny_model, assignments)
        assert report.latency_cycles > 0

    def test_lp_missing_dataflow_raises(self, cost_model, tiny_model):
        with pytest.raises(ValueError, match="dataflow"):
            cost_model.evaluate_model(tiny_model,
                                      [(16, 39)] * len(tiny_model))

    def test_lp_length_mismatch_raises(self, cost_model, tiny_model):
        with pytest.raises(ValueError, match="assignments"):
            cost_model.evaluate_model(tiny_model, [(16, 39)], dataflow="dla")

    def test_ls_single_accelerator(self, cost_model, tiny_model):
        report = cost_model.evaluate_model_ls(tiny_model, 16, 39, "dla")
        # One accelerator: area is the max single-layer area, not the sum.
        per_layer_areas = [r.area_um2 for r in report.per_layer]
        assert report.area_um2 == max(per_layer_areas)
        assert report.latency_cycles == pytest.approx(
            sum(r.latency_cycles for r in report.per_layer))

    def test_model_report_objective_and_breakdown(self, cost_model,
                                                  tiny_model):
        report = cost_model.evaluate_model(
            tiny_model, [(16, 39)] * len(tiny_model), dataflow="dla")
        assert report.objective("latency") == report.latency_cycles
        breakdown = report.area_breakdown()
        assert set(breakdown) == {"pe", "l1", "l2", "noc"}
        assert sum(breakdown.values()) == pytest.approx(report.area_um2)
        with pytest.raises(KeyError):
            report.objective("nope")
        with pytest.raises(KeyError):
            report.constraint("nope")
