"""Tests for the critic-capacity study (Fig. 6)."""

import numpy as np
import pytest

from repro.analysis import CriticStudy


@pytest.fixture(scope="module")
def study(cost_model):
    from repro.models import get_model
    return CriticStudy(get_model("mobilenet_v2")[:6], dataflow="dla",
                       cost_model=cost_model, seed=0)


class TestDatasetGeneration:
    def test_shapes(self, study):
        features, targets = study.generate_dataset(32)
        assert features.shape == (32, 12)
        assert targets.shape == (32,)

    def test_targets_are_latencies(self, study):
        _, targets = study.generate_dataset(32)
        assert np.all(targets > 0)

    def test_features_bounded(self, study):
        features, _ = study.generate_dataset(32)
        assert np.all(np.abs(features) <= 1.0)


class TestTraining:
    def test_curves_have_epoch_length(self, study):
        features, targets = study.generate_dataset(64)
        train, test = study.train_critic(features, targets, epochs=10)
        assert len(train) == 10 and len(test) == 10

    def test_train_rmse_decreases(self, study):
        features, targets = study.generate_dataset(128)
        train, _ = study.train_critic(features, targets, epochs=60)
        assert train[-1] < train[0]

    def test_run_sweep(self, study):
        result = study.run([32, 64], epochs=10)
        assert result.dataset_sizes == [32, 64]
        assert set(result.train_rmse) == {32, 64}
        train, test = result.final_rmse(32)
        assert train > 0 and test > 0
        assert result.best_test_rmse() > 0

    def test_critic_error_stays_significant(self, study):
        # The paper's point: even the best critic misses by a margin that
        # is large relative to the reward spread -- here we just require
        # the residual error to remain a nonzero fraction of the target
        # standard deviation at small-study scale.
        features, targets = study.generate_dataset(256)
        _, test = study.train_critic(features, targets, epochs=100)
        assert min(test) > 0.05 * targets.std()
