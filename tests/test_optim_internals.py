"""White-box tests for baseline-optimizer internals."""

import math

import numpy as np
import pytest

from repro.core.constraints import PlatformConstraint
from repro.core.evaluator import DesignPointEvaluator
from repro.env.spaces import ActionSpace
from repro.optim import (
    BayesianOptimization,
    GeneticAlgorithm,
    GridSearch,
    RandomSearch,
    SimulatedAnnealing,
)
from repro.optim.base import GenomeOptimizer


@pytest.fixture
def evaluator(cost_model, tiny_model, space_dla):
    constraint = PlatformConstraint(kind="area", budget=1e15)
    return DesignPointEvaluator(tiny_model, "latency", constraint,
                                cost_model, space_dla, dataflow="dla")


class TestBase:
    def test_evaluate_past_budget_raises(self, evaluator):
        optimizer = RandomSearch(seed=0)
        optimizer.search(evaluator, 3)
        with pytest.raises(RuntimeError, match="budget"):
            optimizer.evaluate([0, 0] * 4)

    def test_random_genome_respects_mix_layout(self, cost_model,
                                               tiny_model, space_mix):
        constraint = PlatformConstraint(kind="area", budget=1e15)
        mix_eval = DesignPointEvaluator(tiny_model, "latency", constraint,
                                        cost_model, space_mix)
        optimizer = RandomSearch(seed=0)
        optimizer._evaluator = mix_eval
        genome = optimizer.random_genome()
        assert len(genome) == 3 * len(tiny_model)
        for i in range(2, len(genome), 3):
            assert 0 <= genome[i] < 3

    def test_base_run_is_abstract(self):
        with pytest.raises(NotImplementedError):
            GenomeOptimizer()._run()


class TestGridAdvance:
    def _grid_with(self, evaluator, stride=2):
        grid = GridSearch(stride=stride)
        grid._evaluator = evaluator
        return grid

    def test_counter_increments_least_significant_last_gene(self,
                                                            evaluator):
        grid = self._grid_with(evaluator)
        genome = [0] * evaluator.genome_length
        assert grid._advance(genome)
        expected = [0] * evaluator.genome_length
        expected[-1] = 2
        assert genome == expected

    def test_counter_carries(self, evaluator):
        grid = self._grid_with(evaluator)
        genome = [0] * evaluator.genome_length
        genome[-1] = 10  # next +2 overflows the 12-level digit
        assert grid._advance(genome)
        assert genome[-1] == 0
        assert genome[-2] == 2

    def test_counter_terminates(self, cost_model, conv_layer, space_dla):
        constraint = PlatformConstraint(kind="area", budget=1e15)
        single = DesignPointEvaluator([conv_layer], "latency", constraint,
                                      cost_model, space_dla,
                                      dataflow="dla")
        grid = GridSearch(stride=6)
        grid._evaluator = single
        genome = [0, 0]
        states = 1
        while grid._advance(genome):
            states += 1
        assert states == 4  # 2 strided values per gene, 2 genes


class TestSimulatedAnnealingInternals:
    def test_neighbour_moves_one_gene_by_step(self, evaluator):
        sa = SimulatedAnnealing(step=1, seed=0)
        sa._evaluator = evaluator
        genome = [5, 5] * 4
        for _ in range(20):
            neighbour = sa._neighbour(genome)
            diffs = [abs(a - b) for a, b in zip(genome, neighbour)]
            assert sum(d != 0 for d in diffs) <= 1
            assert max(diffs) <= 1

    def test_accept_always_improving(self):
        sa = SimulatedAnnealing(seed=0)
        assert sa._accept(current=10.0, candidate=5.0, temperature=1e-9)

    def test_accept_never_infeasible_candidate(self):
        sa = SimulatedAnnealing(seed=0)
        assert not sa._accept(10.0, math.inf, temperature=1e9)

    def test_accept_escapes_infeasible_current(self):
        sa = SimulatedAnnealing(seed=0)
        assert sa._accept(math.inf, 10.0, temperature=1e-9)

    def test_worse_accepted_more_at_high_temperature(self):
        sa = SimulatedAnnealing(seed=0)
        hot = sum(sa._accept(1.0, 2.0, temperature=100.0)
                  for _ in range(300))
        sa_cold = SimulatedAnnealing(seed=0)
        cold = sum(sa_cold._accept(1.0, 2.0, temperature=0.01)
                   for _ in range(300))
        assert hot > cold


class TestGeneticInternals:
    def test_crossover_genes_come_from_parents(self, evaluator):
        ga = GeneticAlgorithm(seed=0)
        ga._evaluator = evaluator
        a = [1, 1] * 4
        b = [9, 9] * 4
        child = ga._crossover(a, b)
        assert all(gene in (1, 9) for gene in child)

    def test_mutation_rate_zero_is_identity(self, evaluator):
        ga = GeneticAlgorithm(mutation_rate=0.0, seed=0)
        ga._evaluator = evaluator
        genome = [3, 4] * 4
        assert ga._mutate(genome) == genome

    def test_mutation_stays_in_level_range(self, evaluator):
        ga = GeneticAlgorithm(mutation_rate=1.0, seed=0)
        ga._evaluator = evaluator
        for _ in range(20):
            child = ga._mutate([0, 11] * 4)
            assert all(0 <= g <= 11 for g in child)


class TestBayesianInternals:
    def test_kernel_diagonal_is_one(self, evaluator):
        bo = BayesianOptimization(seed=0)
        bo._evaluator = evaluator
        x = np.random.default_rng(0).random((5, 8))
        gram = bo._kernel(x, x)
        np.testing.assert_allclose(np.diag(gram), np.ones(5), atol=1e-12)

    def test_kernel_decays_with_distance(self, evaluator):
        bo = BayesianOptimization(seed=0)
        bo._evaluator = evaluator
        near = bo._kernel(np.zeros((1, 4)), np.full((1, 4), 0.1))[0, 0]
        far = bo._kernel(np.zeros((1, 4)), np.full((1, 4), 2.0))[0, 0]
        assert near > far

    def test_encode_normalizes_to_unit_cube(self, evaluator):
        bo = BayesianOptimization(seed=0)
        bo._evaluator = evaluator
        encoded = bo._encode([11, 11] * 4)
        np.testing.assert_allclose(encoded, np.ones(8))
        encoded = bo._encode([0, 0] * 4)
        np.testing.assert_allclose(encoded, np.zeros(8))

    def test_expected_improvement_prefers_promising_region(self,
                                                           evaluator):
        bo = BayesianOptimization(seed=0)
        bo._evaluator = evaluator
        # Observed: low objective at 0-corner, high at 1-corner.
        features = np.array([[0.0] * 8, [1.0] * 8])
        targets = np.array([1.0, 10.0])
        candidates = np.array([[0.05] * 8, [0.95] * 8])
        ei = bo._expected_improvement(candidates, features, targets)
        assert ei[0] > ei[1]

    def test_infeasible_points_get_penalized_targets(self, cost_model,
                                                     tiny_model,
                                                     space_dla):
        constraint = PlatformConstraint(kind="area", budget=1.0)  # nothing
        evaluator = DesignPointEvaluator(tiny_model, "latency", constraint,
                                         cost_model, space_dla,
                                         dataflow="dla")
        bo = BayesianOptimization(seed=0, initial_samples=2)
        bo.search(evaluator, 4)
        assert len(bo._targets) == 4
        # All infeasible: targets are stacked penalties, non-decreasing.
        assert all(b >= a for a, b in zip(bo._targets, bo._targets[1:]))
