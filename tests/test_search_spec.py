"""Tests for the frozen, serializable SearchSpec."""

import dataclasses

import pytest

from repro.experiments.tasks import TaskSpec
from repro.search import SearchSpec


class TestValidation:
    def test_defaults_are_valid(self):
        spec = SearchSpec(model="ncf")
        assert spec.method == "confuciux"
        assert spec.budget == 500

    def test_rejects_unknown_model(self):
        with pytest.raises(ValueError, match="unknown model"):
            SearchSpec(model="alexnet9000")

    def test_rejects_layer_list_models(self):
        with pytest.raises(TypeError, match="workload-zoo name"):
            SearchSpec(model=["not", "a", "name"])

    @pytest.mark.parametrize("field,value", [
        ("objective", "throughput"),
        ("dataflow", "tpu"),
        ("constraint_kind", "thermal"),
        ("platform", "mars"),
        ("deployment", "serverless"),
    ])
    def test_rejects_bad_enums(self, field, value):
        with pytest.raises(ValueError, match=field):
            SearchSpec(model="ncf", **{field: value})

    def test_rejects_bad_budgets(self):
        with pytest.raises(ValueError, match="budget"):
            SearchSpec(model="ncf", budget=0)
        with pytest.raises(ValueError, match="finetune"):
            SearchSpec(model="ncf", finetune=-1)

    def test_frozen(self):
        spec = SearchSpec(model="ncf")
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.budget = 10

    def test_replace_revalidates(self):
        spec = SearchSpec(model="ncf", budget=10)
        assert spec.replace(budget=20).budget == 20
        with pytest.raises(ValueError):
            spec.replace(platform="mars")


class TestDerived:
    def test_finetune_budget_default(self):
        assert SearchSpec(model="ncf", budget=100).finetune_budget == 25
        assert SearchSpec(model="ncf", budget=100,
                          finetune=7).finetune_budget == 7
        assert SearchSpec(model="ncf", budget=100,
                          finetune=0).finetune_budget == 0

    def test_task_mirrors_spec(self):
        spec = SearchSpec(model="mobilenet_v2", objective="energy",
                          platform="cloud", layer_slice=5, mix=True)
        task = spec.task()
        assert isinstance(task, TaskSpec)
        assert task.model == "mobilenet_v2"
        assert task.objective == "energy"
        assert task.platform == "cloud"
        assert task.layer_slice == 5
        assert task.mix is True
        assert len(task.layers()) == 5


class TestExecutorFields:
    def test_rejects_unknown_executor(self):
        with pytest.raises(ValueError, match="executor"):
            SearchSpec(model="ncf", executor="gpu")

    def test_rejects_non_positive_workers(self):
        with pytest.raises(ValueError, match="workers"):
            SearchSpec(model="ncf", workers=0)

    def test_resolution_defaults_to_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        spec = SearchSpec(model="ncf")
        assert spec.resolved_executor() == "serial"
        assert SearchSpec(model="ncf", executor="thread") \
            .resolved_executor() == "thread"

    def test_env_var_fills_unset_fields_only(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        monkeypatch.setenv("REPRO_WORKERS", "3")
        spec = SearchSpec(model="ncf")
        assert spec.resolved_executor() == "process"
        assert spec.resolved_workers() == 3
        pinned = SearchSpec(model="ncf", executor="serial", workers=2)
        assert pinned.resolved_executor() == "serial"
        assert pinned.resolved_workers() == 2

    def test_bad_env_var_fails_fast(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "quantum")
        with pytest.raises(ValueError, match="REPRO_EXECUTOR"):
            SearchSpec(model="ncf").resolved_executor()

    def test_executor_round_trips_through_json(self):
        spec = SearchSpec(model="ncf", executor="process", workers=4)
        assert SearchSpec.from_json(spec.to_json()) == spec


class TestSerialization:
    def test_round_trip_dict(self):
        spec = SearchSpec(model="resnet50", method="sa", budget=42,
                          seed=7, layer_slice=3)
        assert SearchSpec.from_dict(spec.to_dict()) == spec

    def test_round_trip_json(self):
        spec = SearchSpec(model="ncf", method="random", seed=None,
                          finetune=9)
        clone = SearchSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.seed is None

    def test_from_dict_rejects_unknown_fields(self):
        data = SearchSpec(model="ncf").to_dict()
        data["temperature"] = 451
        with pytest.raises(ValueError, match="unknown SearchSpec fields"):
            SearchSpec.from_dict(data)

    def test_equal_specs_hash_unequal_differ(self):
        a = SearchSpec(model="ncf", budget=10)
        b = SearchSpec(model="ncf", budget=10)
        c = SearchSpec(model="ncf", budget=11)
        assert a == b
        assert a != c
