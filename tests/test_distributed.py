"""Lifecycle suite for the distributed execution backend.

Parity and crash-recovery of distributed *results* are locked by
``tests/test_parallel_parity.py`` (the executor matrix and the crash
matrix both include ``distributed`` cells).  This file covers the
fleet-lifecycle contracts those result-level suites cannot see:

* worker-agent reconnect -- a killed node agent is respawned and the
  ``(LayerTable, kernel)`` payload is re-shipped (PR 6's respawn
  contract carried over the wire), visible in the ``reships`` counter;
* external fleets -- agents started separately (the ``repro worker``
  CLI path) join a coordinator bound to ``$REPRO_BIND``-style fixed
  addresses, survive coordinator restarts, and serve successive
  backends;
* teardown hygiene -- after ``shutdown()`` / ``on_teardown`` no node
  agents, listener sockets, or reader threads are left behind;
* work stealing -- idle nodes drain the shared shard deque, counted in
  ``stolen_shards``; static round-robin dispatch stays available.
"""

from __future__ import annotations

import multiprocessing
import socket
import threading
import time

import numpy as np
import pytest

from repro.costmodel import CostModel, LayerTable
from repro.models import get_model
from repro.parallel import (
    DistributedBackend,
    FaultPlan,
    ParallelCoordinator,
    default_nodes,
    worker_agent_main,
)

TIMEOUT_S = 30.0


@pytest.fixture(scope="module")
def workload():
    layers = get_model("mobilenet_v2")[:4]
    table = LayerTable.build(layers)
    model = CostModel()
    rng = np.random.default_rng(5)
    n = 512
    inputs = (
        rng.integers(0, len(layers), size=n),
        np.zeros(n, dtype=np.int64),
        rng.integers(1, 512, size=n),
        rng.integers(1, 8192, size=n),
    )
    reference = model.batched.evaluate(table, *inputs)
    return model, table, inputs, reference


def _assert_matches(report, reference):
    assert np.array_equal(report.latency_cycles, reference.latency_cycles)
    assert np.array_equal(report.energy_nj, reference.energy_nj)
    assert np.array_equal(report.pes_used, reference.pes_used)


def _wait_for(predicate, timeout_s=TIMEOUT_S):
    deadline = time.monotonic() + timeout_s
    while not predicate():
        assert time.monotonic() < deadline, "timed out waiting for fleet"
        time.sleep(0.05)


def _agent_processes():
    return [p for p in multiprocessing.active_children()
            if p.name.startswith("repro-node")]


def test_fleet_spawns_evaluates_and_tears_down(workload):
    model, table, inputs, reference = workload
    backend = DistributedBackend(nodes=2)
    try:
        report = backend.evaluate(model.hw, table, *inputs)
        _assert_matches(report, reference)
        # Under $REPRO_FAULTS (the chaos CI legs) an agent may have been
        # killed mid-batch; its replacement reconnects asynchronously,
        # so wait for the fleet to heal rather than racing it.
        _wait_for(lambda: backend.connected_nodes == 2)
        assert backend.fleet_nodes == 2
        _wait_for(lambda: len(_agent_processes()) == 2)
    finally:
        backend.shutdown()
    assert backend.alive_workers == 0
    assert backend.connected_nodes == 0
    # Teardown hygiene: no orphaned node agents after shutdown.
    _wait_for(lambda: not _agent_processes(), timeout_s=10.0)


def test_node_kill_reships_table_and_recovers(workload):
    """Killing a node mid-batch respawns it; on reconnect the table is
    re-shipped (the ``reships`` counter) and the batch completes
    bit-identically."""
    model, table, inputs, reference = workload
    plan = FaultPlan(kill_worker=[(0, 0)])
    backend = DistributedBackend(nodes=2, fault_plan=plan)
    try:
        first = backend.evaluate(model.hw, table, *inputs)
        _assert_matches(first, reference)
        assert backend.respawns == 1
        assert backend.retries == 1
        # The replacement agent reconnects asynchronously; the re-ship
        # happens on its first dispatched shard, so wait for the fleet
        # to heal before asserting the counter.
        _wait_for(lambda: backend.connected_nodes == 2)
        second = backend.evaluate(model.hw, table, *inputs)
        _assert_matches(second, reference)
        assert backend.reships == 1
    finally:
        backend.shutdown()
    assert backend.alive_workers == 0


def test_external_agents_reconnect_across_backends(workload, monkeypatch):
    """Persistent external agents (the ``repro worker`` path) serve two
    successive coordinators on one fixed bind address -- the session
    restart story -- with the table shipped fresh to each."""
    # The agents below run in *threads* for speed, so an env-injected
    # kill fault (the chaos CI legs) would ``os._exit`` the test runner
    # itself; external-fleet chaos is ``run_worker_agent``'s child
    # process supervision story, not this test's.
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    model, table, inputs, reference = workload
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
    bind = f"127.0.0.1:{port}"
    agents = [
        threading.Thread(
            target=worker_agent_main,
            args=("127.0.0.1", port),
            kwargs={"name": f"ext-{i}", "reconnect": True,
                    "window_s": None},
            daemon=True)
        for i in range(2)
    ]
    for thread in agents:
        thread.start()
    for _round in range(2):
        backend = DistributedBackend(nodes=2, bind=bind)
        try:
            # The fleet starts lazily: the first evaluate binds the
            # listener and blocks on its startup barrier until at least
            # one external agent has joined.
            report = backend.evaluate(model.hw, table, *inputs)
            _assert_matches(report, reference)
            assert backend.connected_nodes >= 1
        finally:
            backend.shutdown()
        assert backend.connected_nodes == 0


def test_coordinator_teardown_leaves_no_fleet(workload):
    """ParallelCoordinator.on_teardown shuts the fleet down: no agents,
    and the listener port is released."""
    model, table, inputs, reference = workload
    coordinator = ParallelCoordinator("distributed", nodes=2,
                                      degrade=False)
    coordinator._ensure_backend()
    backend = coordinator.backend
    report = backend.evaluate(model.hw, table, *inputs)
    _assert_matches(report, reference)
    listener = backend._listener_box[0]
    assert listener is not None
    port = listener.getsockname()[1]
    coordinator.on_teardown()
    assert backend.alive_workers == 0
    assert backend._listener_box[0] is None
    _wait_for(lambda: not _agent_processes(), timeout_s=10.0)
    # The listener socket is closed: the port can be rebound at once.
    with socket.socket() as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(("127.0.0.1", port))


def test_work_stealing_counts_and_static_mode(workload, monkeypatch):
    """With stealing on, a 4-node fleet pulls shards off the shared
    deque (counted whenever a shard lands off its static owner); with
    stealing off, every shard goes to its round-robin owner and the
    counter stays zero.  Both modes are bit-identical."""
    # Exact scheduling counters only hold fault-free: an env-injected
    # kill (the chaos CI legs) re-dispatches the dead node's shard to a
    # survivor, which counts as a steal even with ``steal=False``.
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    model, table, inputs, reference = workload
    stealing = DistributedBackend(nodes=4, shards_per_node=4)
    try:
        _assert_matches(stealing.evaluate(model.hw, table, *inputs),
                        reference)
        assert stealing.sharded_batches == 1
    finally:
        stealing.shutdown()
    static = DistributedBackend(nodes=2, steal=False)
    try:
        _assert_matches(static.evaluate(model.hw, table, *inputs),
                        reference)
        assert static.stolen_shards == 0
    finally:
        static.shutdown()


def test_break_even_inlines_small_batches(workload):
    """Batches below min_batch_per_worker * nodes never leave the
    coordinator process (the per-transport break-even contract)."""
    model, table, inputs, reference = workload
    backend = DistributedBackend(nodes=2, min_batch_per_worker=10_000)
    try:
        report = backend.evaluate(model.hw, table, *inputs)
        _assert_matches(report, reference)
        assert backend.inline_batches == 1
        assert backend.sharded_batches == 0
    finally:
        backend.shutdown()


def test_default_nodes_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_NODES", "3")
    assert default_nodes() == 3
    monkeypatch.setenv("REPRO_NODES", "0")
    with pytest.raises(ValueError):
        default_nodes()
    monkeypatch.delenv("REPRO_NODES")
    assert default_nodes() >= 1
