"""Tests for solution reporting (Fig. 10 helpers and table rendering)."""

import pytest

from repro.core.reporting import (
    area_breakdown_fractions,
    ascii_bars,
    format_table,
    per_layer_area_fractions,
    per_layer_assignment,
    solution_report,
)


@pytest.fixture
def report(cost_model, tiny_model):
    assignments = [(8, 29), (16, 39), (32, 59), (64, 99)]
    return solution_report(tiny_model, assignments, cost_model,
                           dataflow="dla")


class TestBreakdowns:
    def test_fractions_sum_to_one(self, report):
        fractions = area_breakdown_fractions(report)
        assert set(fractions) == {"pe", "l1", "l2", "noc"}
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert all(0 <= v <= 1 for v in fractions.values())

    def test_pe_and_buffers_dominate(self, report):
        # Fig. 10 shows PE(ALU) ~40-50% and buffers ~30%: compute and L1
        # should together dominate the NoC.
        fractions = area_breakdown_fractions(report)
        assert fractions["pe"] + fractions["l1"] > fractions["noc"]

    def test_per_layer_fractions_sum_to_one(self, report):
        fractions = per_layer_area_fractions(report)
        assert len(fractions) == 4
        assert sum(fractions) == pytest.approx(1.0)

    def test_per_layer_assignment_extraction(self):
        pes, bufs = per_layer_assignment([(8, 29), (16, 39)])
        assert pes == [8, 16]
        assert bufs == [29, 39]


class TestRendering:
    def test_format_table_aligns(self):
        text = format_table(["a", "method"], [["1", "x"], ["22", "yy"]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "method" in lines[1]
        assert len(lines) == 5

    def test_ascii_bars(self):
        text = ascii_bars([1.0, 2.0, 4.0], width=8)
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[2].count("#") == 8
        assert lines[0].count("#") == 2

    def test_ascii_bars_handles_zero_peak(self):
        assert ascii_bars([0.0, 0.0]) != ""
