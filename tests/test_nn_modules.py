"""Tests for NN modules, optimizers, functional ops, and distributions."""

import numpy as np
import pytest

from repro.nn import (
    LSTM,
    Adam,
    Categorical,
    DiagGaussian,
    Linear,
    LSTMCell,
    MLP,
    SGD,
    Tensor,
    clip_grad_norm,
)
from repro.nn.functional import (
    huber_loss,
    log_softmax,
    mse_loss,
    one_hot,
    softmax,
)
from repro.nn.modules import Module, Parameter


class TestLinear:
    def test_output_shape(self):
        layer = Linear(4, 3, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            Linear(0, 3)

    def test_parameters_discovered(self):
        layer = Linear(4, 3)
        params = layer.parameters()
        assert len(params) == 2
        assert layer.num_parameters() == 4 * 3 + 3

    def test_trains_linear_regression(self):
        rng = np.random.default_rng(0)
        true_w = np.array([[2.0], [-1.0]])
        x = rng.standard_normal((64, 2))
        y = x @ true_w
        layer = Linear(2, 1, rng=rng)
        optimizer = Adam(layer.parameters(), lr=0.05)
        for _ in range(300):
            loss = mse_loss(layer(Tensor(x)), Tensor(y))
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(layer.weight.data, true_w, atol=0.05)


class TestMLP:
    def test_shapes_and_activations(self):
        mlp = MLP([4, 8, 2], activation="relu", rng=np.random.default_rng(0))
        assert mlp(Tensor(np.ones((3, 4)))).shape == (3, 2)

    def test_rejects_short_sizes(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_rejects_unknown_activation(self):
        with pytest.raises(ValueError, match="unknown activation"):
            MLP([4, 2], activation="swish")

    def test_output_activation(self):
        mlp = MLP([4, 8, 2], output_activation="tanh",
                  rng=np.random.default_rng(0))
        out = mlp(Tensor(np.random.default_rng(1).standard_normal((5, 4))))
        assert np.all(np.abs(out.numpy()) <= 1.0)

    def test_learns_xor(self):
        x = np.array([[0., 0.], [0., 1.], [1., 0.], [1., 1.]])
        y = np.array([[0.], [1.], [1.], [0.]])
        rng = np.random.default_rng(3)
        mlp = MLP([2, 16, 1], activation="tanh", rng=rng)
        optimizer = Adam(mlp.parameters(), lr=0.05)
        for _ in range(500):
            loss = mse_loss(mlp(Tensor(x)), Tensor(y))
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        prediction = mlp(Tensor(x)).numpy()
        assert np.all(np.abs(prediction - y) < 0.2)


class TestLSTM:
    def test_cell_shapes(self):
        cell = LSTMCell(4, 8, rng=np.random.default_rng(0))
        h, c = cell.initial_state(batch=2)
        h2, c2 = cell(Tensor(np.ones((2, 4))), (h, c))
        assert h2.shape == (2, 8)
        assert c2.shape == (2, 8)

    def test_forget_bias_initialized_to_one(self):
        cell = LSTMCell(4, 8)
        assert np.all(cell.bias.data[8:16] == 1.0)
        assert np.all(cell.bias.data[:8] == 0.0)

    def test_state_propagates_information(self):
        # With different inputs at t=0, the t=2 hidden states must differ:
        # memory across steps.
        rng = np.random.default_rng(0)
        cell = LSTMCell(2, 4, rng=rng)
        zero = Tensor(np.zeros((1, 2)))
        spike = Tensor(np.ones((1, 2)) * 3.0)

        def rollout(first):
            state = cell.initial_state()
            state = cell(first, state)
            state = cell(zero, state)
            h, _ = cell(zero, state)
            return h.numpy()

        assert not np.allclose(rollout(zero), rollout(spike))

    def test_sequence_wrapper(self):
        lstm = LSTM(3, 5, rng=np.random.default_rng(0))
        inputs = [Tensor(np.ones((1, 3))) for _ in range(4)]
        outputs, (h, c) = lstm(inputs)
        assert len(outputs) == 4
        assert h.shape == (1, 5)

    def test_bptt_gradients_flow_to_first_step(self):
        cell = LSTMCell(2, 4, rng=np.random.default_rng(0))
        x0 = Tensor(np.ones((1, 2)), requires_grad=True)
        state = cell(x0, cell.initial_state())
        for _ in range(3):
            state = cell(Tensor(np.zeros((1, 2))), state)
        state[0].sum().backward()
        assert x0.grad is not None
        assert np.any(x0.grad != 0.0)


class TestModuleInfrastructure:
    def test_state_dict_roundtrip(self):
        mlp = MLP([3, 4, 2], rng=np.random.default_rng(0))
        state = mlp.state_dict()
        clone = MLP([3, 4, 2], rng=np.random.default_rng(99))
        clone.load_state_dict(state)
        x = Tensor(np.ones((1, 3)))
        np.testing.assert_allclose(mlp(x).numpy(), clone(x).numpy())

    def test_load_state_dict_shape_mismatch(self):
        mlp = MLP([3, 4, 2])
        other = MLP([3, 5, 2])
        with pytest.raises(ValueError):
            mlp.load_state_dict(other.state_dict())

    def test_load_state_dict_length_mismatch(self):
        mlp = MLP([3, 4, 2])
        with pytest.raises(ValueError):
            mlp.load_state_dict(mlp.state_dict()[:-1])

    def test_soft_update_interpolates(self):
        a = MLP([2, 2], rng=np.random.default_rng(0))
        b = MLP([2, 2], rng=np.random.default_rng(1))
        before = b.parameters()[0].data.copy()
        target = a.parameters()[0].data.copy()
        b.soft_update(a, tau=0.5)
        np.testing.assert_allclose(
            b.parameters()[0].data, 0.5 * before + 0.5 * target)

    def test_zero_grad_clears_all(self):
        mlp = MLP([2, 2])
        mse_loss(mlp(Tensor(np.ones((1, 2)))), Tensor([[0.0]])).backward()
        assert any(p.grad is not None for p in mlp.parameters())
        mlp.zero_grad()
        assert all(p.grad is None for p in mlp.parameters())

    def test_nested_discovery_through_containers(self):
        class Nested(Module):
            def __init__(self):
                self.items = [Linear(2, 2), {"inner": Linear(2, 2)}]
                self.single = Parameter(np.zeros(3))

        nested = Nested()
        assert len(nested.parameters()) == 5  # 2x(W,b) + single


class TestOptimizers:
    def _quadratic_descends(self, optimizer_cls, **kwargs):
        x = Parameter(np.array([5.0, -3.0]))
        optimizer = optimizer_cls([x], **kwargs)
        for _ in range(200):
            loss = (x * x).sum()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert np.all(np.abs(x.data) < 0.1)

    def test_sgd_descends(self):
        self._quadratic_descends(SGD, lr=0.1)

    def test_sgd_momentum_descends(self):
        self._quadratic_descends(SGD, lr=0.05, momentum=0.9)

    def test_adam_descends(self):
        self._quadratic_descends(Adam, lr=0.1)

    def test_rejects_empty_parameters(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=-1.0)

    def test_skips_parameters_without_grad(self):
        x = Parameter(np.ones(2))
        optimizer = Adam([x], lr=0.1)
        optimizer.step()  # no grad: should not move or crash
        np.testing.assert_allclose(x.data, np.ones(2))

    def test_clip_grad_norm_scales(self):
        x = Parameter(np.zeros(4))
        x.grad = np.full(4, 10.0)
        norm = clip_grad_norm([x], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(x.grad) == pytest.approx(1.0, rel=1e-6)

    def test_clip_grad_norm_noop_below_max(self):
        x = Parameter(np.zeros(4))
        x.grad = np.full(4, 0.1)
        clip_grad_norm([x], max_norm=10.0)
        np.testing.assert_allclose(x.grad, np.full(4, 0.1))

    def test_clip_rejects_bad_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([Parameter(np.zeros(1))], max_norm=0.0)


class TestFunctional:
    def test_softmax_rows_sum_to_one(self):
        logits = Tensor(np.random.default_rng(0).standard_normal((4, 6)))
        probs = softmax(logits).numpy()
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(4))
        assert np.all(probs >= 0)

    def test_softmax_stability_large_logits(self):
        probs = softmax(Tensor([[1000.0, 1000.0]])).numpy()
        np.testing.assert_allclose(probs, [[0.5, 0.5]])

    def test_log_softmax_matches_log_of_softmax(self):
        logits = Tensor(np.random.default_rng(1).standard_normal((3, 5)))
        np.testing.assert_allclose(
            log_softmax(logits).numpy(), np.log(softmax(logits).numpy()),
            rtol=1e-10)

    def test_mse_loss_value(self):
        loss = mse_loss(Tensor([[1.0, 2.0]]), Tensor([[0.0, 0.0]]))
        assert loss.item() == pytest.approx(2.5)

    def test_huber_matches_mse_in_quadratic_zone(self):
        prediction = Tensor([[0.5]])
        target = Tensor([[0.0]])
        huber = huber_loss(prediction, target, delta=1.0).item()
        assert huber == pytest.approx(0.5 * 0.25)

    def test_huber_linear_zone(self):
        huber = huber_loss(Tensor([[3.0]]), Tensor([[0.0]]),
                           delta=1.0).item()
        assert huber == pytest.approx(0.5 + (3.0 - 1.0))

    def test_one_hot(self):
        encoded = one_hot([0, 2], num_classes=3)
        np.testing.assert_allclose(encoded, [[1, 0, 0], [0, 0, 1]])

    def test_one_hot_range_check(self):
        with pytest.raises(ValueError):
            one_hot([3], num_classes=3)


class TestCategorical:
    def test_requires_2d_logits(self):
        with pytest.raises(ValueError):
            Categorical(Tensor(np.zeros(3)))

    def test_sampling_matches_probabilities(self):
        logits = Tensor(np.log(np.array([[0.7, 0.2, 0.1]])))
        dist = Categorical(logits)
        rng = np.random.default_rng(0)
        draws = np.array([dist.sample(rng)[0] for _ in range(4000)])
        freq = np.bincount(draws, minlength=3) / 4000
        np.testing.assert_allclose(freq, [0.7, 0.2, 0.1], atol=0.03)

    def test_log_prob_gradients_flow(self):
        logits = Tensor(np.zeros((1, 4)), requires_grad=True)
        Categorical(logits).log_prob([2]).sum().backward()
        assert logits.grad is not None
        # d log p_2 / d logit_2 = 1 - p_2 = 0.75 at uniform.
        assert logits.grad[0, 2] == pytest.approx(0.75)

    def test_entropy_maximal_at_uniform(self):
        uniform = Categorical(Tensor(np.zeros((1, 4))))
        peaked = Categorical(Tensor([[10.0, 0.0, 0.0, 0.0]]))
        assert uniform.entropy().item() > peaked.entropy().item()
        assert uniform.entropy().item() == pytest.approx(np.log(4))

    def test_mode(self):
        dist = Categorical(Tensor([[0.0, 3.0, 1.0]]))
        assert dist.mode()[0] == 1


class TestDiagGaussian:
    def test_log_prob_matches_closed_form(self):
        mean = Tensor(np.zeros((1, 2)))
        log_std = Tensor(np.zeros((1, 2)))
        logp = DiagGaussian(mean, log_std).log_prob(
            np.zeros((1, 2))).item()
        assert logp == pytest.approx(-np.log(2 * np.pi))

    def test_rsample_gradients_flow(self):
        mean = Tensor(np.zeros((1, 2)), requires_grad=True)
        log_std = Tensor(np.zeros((1, 2)), requires_grad=True)
        dist = DiagGaussian(mean, log_std)
        sample = dist.rsample(np.random.default_rng(0))
        (sample * sample).sum().backward()
        assert mean.grad is not None
        assert log_std.grad is not None

    def test_entropy_grows_with_std(self):
        mean = Tensor(np.zeros((1, 2)))
        narrow = DiagGaussian(mean, Tensor(np.full((1, 2), -1.0)))
        wide = DiagGaussian(mean, Tensor(np.full((1, 2), 1.0)))
        assert wide.entropy().item() > narrow.entropy().item()

    def test_sample_statistics(self):
        rng = np.random.default_rng(0)
        dist = DiagGaussian(Tensor(np.full((1, 1), 2.0)),
                            Tensor(np.zeros((1, 1))))
        draws = np.array([dist.sample(rng)[0, 0] for _ in range(3000)])
        assert draws.mean() == pytest.approx(2.0, abs=0.1)
        assert draws.std() == pytest.approx(1.0, abs=0.1)
