"""Tests for SearchSession, SessionResult, observers, and the runners.

The heart of the api_redesign contract: every registered method runs
through one façade, produces a feasible ``SessionResult`` that round-trips
through JSON, and matches the legacy call paths bit-for-bit under fixed
seeds.
"""

import json

import pytest

import repro
from repro.experiments.tasks import TaskSpec
from repro.search import (
    CheckpointHook,
    EarlyStopping,
    ProgressReporter,
    SearchObserver,
    SearchSession,
    SearchSpec,
    SessionResult,
    method_names,
)

#: Tiny-budget spec kwargs shared by the whole-registry sweeps: the NCF
#: workload has 4 layers, the cloud platform gives a roomy budget so every
#: method finds a feasible point fast.
TINY = dict(model="ncf", platform="cloud", budget=8, seed=0)


class _Recorder(SearchObserver):
    """Counts every hook invocation for protocol assertions."""

    def __init__(self):
        super().__init__()
        self.started = 0
        self.steps = 0
        self.improvements = 0
        self.finished = []
        self.best_seen = None

    def on_start(self, session):
        self.started += 1

    def on_step(self, step, cost, best_cost):
        self.steps += 1
        assert step == self.steps

    def on_improvement(self, step, best_cost, best_assignments):
        self.improvements += 1
        assert self.best_seen is None or best_cost < self.best_seen
        self.best_seen = best_cost

    def on_finish(self, result):
        self.finished.append(result)


class TestEveryRegisteredMethod:
    """The acceptance sweep: all methods, one protocol."""

    @pytest.mark.parametrize("method", method_names())
    def test_feasible_result_and_json_round_trip(self, method, cost_model):
        spec = SearchSpec(method=method, **TINY)
        result = SearchSession(spec, cost_model=cost_model).run()

        assert isinstance(result, SessionResult)
        assert result.method == method
        assert result.feasible, f"{method} found no feasible point"
        assert result.best_cost > 0
        assert result.best_assignments is not None
        assert len(result.best_assignments) == 4  # one per NCF layer
        assert result.history, "empty convergence history"
        assert result.provenance["method_kind"]

        # Full JSON round trip: spec and result both survive.
        document = result.to_json()
        clone = SessionResult.from_json(document)
        assert clone.spec == spec
        assert clone.best_cost == result.best_cost
        assert clone.history == result.history
        assert tuple(tuple(a) for a in clone.best_assignments) \
            == tuple(tuple(a) for a in result.best_assignments)
        # And the document is genuinely plain JSON.
        json.loads(document)

    @pytest.mark.parametrize("method", ["random", "reinforce", "confuciux"])
    def test_fixed_seed_is_deterministic(self, method, cost_model):
        spec = SearchSpec(method=method, **TINY)
        first = SearchSession(spec, cost_model=cost_model).run()
        second = SearchSession(spec, cost_model=cost_model).run()
        assert first.best_cost == second.best_cost
        assert first.history == second.history


class TestLegacyEquivalence:
    """Bit-identical best costs vs. the pre-redesign call paths."""

    def test_genome_method_matches_direct_optimizer(self, cost_model):
        task = TaskSpec(model="ncf", platform="cloud")
        constraint = task.constraint(cost_model)
        legacy = repro.BASELINE_OPTIMIZERS["ga"](seed=5).search(
            task.make_evaluator(cost_model, constraint), 30)
        modern = repro.explore(model="ncf", method="ga", budget=30,
                               seed=5, platform="cloud",
                               cost_model=cost_model)
        assert modern.best_cost == legacy.best_cost
        assert modern.history == legacy.history

    def test_rl_method_matches_direct_agent(self, cost_model):
        task = TaskSpec(model="ncf", platform="cloud")
        constraint = task.constraint(cost_model)
        legacy = repro.RL_ALGORITHMS["reinforce"](seed=1).search(
            task.make_env(cost_model, constraint), 10)
        modern = repro.explore(model="ncf", method="reinforce", budget=10,
                               seed=1, platform="cloud",
                               cost_model=cost_model)
        assert modern.best_cost == legacy.best_cost

    def test_two_stage_matches_confuciux_run(self, cost_model):
        pipeline = repro.ConfuciuX(
            repro.get_model("ncf"), objective="latency", dataflow="dla",
            constraint_kind="area", platform="cloud",
            cost_model=cost_model, seed=2)
        legacy = pipeline._run(global_epochs=12, finetune_generations=3)
        modern = repro.explore(model="ncf", method="confuciux", budget=12,
                               finetune=3, seed=2, platform="cloud",
                               cost_model=cost_model)
        assert modern.best_cost == legacy.best_cost
        assert modern.detail.global_cost == legacy.global_cost

    def test_compare_methods_accepts_all_kinds(self, cost_model):
        from repro.experiments.runner import compare_methods

        task = TaskSpec(model="ncf", platform="cloud")
        results = compare_methods(
            task, ["random", "reinforce", "local-ga", "confuciux"],
            epochs=8, cost_model=cost_model)
        assert set(results) == {"random", "reinforce", "local-ga",
                                "confuciux"}
        for outcome in results.values():
            assert outcome.best_cost is not None


class TestObservers:
    def test_protocol_fires_and_changes_nothing(self, cost_model):
        spec = SearchSpec(method="sa", **TINY)
        plain = SearchSession(spec, cost_model=cost_model).run()
        recorder = _Recorder()
        observed = SearchSession(spec, cost_model=cost_model).run(
            callbacks=[recorder])

        assert recorder.started == 1
        assert recorder.steps == spec.budget
        assert recorder.improvements >= 1
        assert recorder.finished == [observed]
        # Observation is free: identical numbers with and without.
        assert observed.best_cost == plain.best_cost
        assert observed.history == plain.history

    def test_episodic_observer_counts_episodes(self, cost_model):
        recorder = _Recorder()
        result = repro.explore(method="reinforce", callbacks=[recorder],
                               cost_model=cost_model, **TINY)
        assert recorder.steps == TINY["budget"]
        assert result.feasible

    def test_early_stopping_genome(self, cost_model):
        stopper = EarlyStopping(patience=4)
        result = repro.explore(model="ncf", method="random", budget=500,
                               seed=0, platform="cloud",
                               callbacks=[stopper], cost_model=cost_model)
        assert result.stopped_early
        assert stopper.stopped_at is not None
        assert len(result.history) < 500
        assert result.feasible
        assert result.result.extra.get("stopped_early") is True

    def test_early_stopping_episodic(self, cost_model):
        result = repro.explore(model="ncf", method="reinforce", budget=300,
                               seed=0, platform="cloud",
                               callbacks=[EarlyStopping(patience=3)],
                               cost_model=cost_model)
        assert result.stopped_early
        assert len(result.history) < 300
        assert result.feasible

    def test_target_cost_stop(self, cost_model):
        # Stop the moment anything feasible appears.
        result = repro.explore(model="ncf", method="random", budget=500,
                               seed=0, platform="cloud",
                               callbacks=[EarlyStopping(
                                   target_cost=float("inf"))],
                               cost_model=cost_model)
        assert result.stopped_early
        assert result.feasible

    def test_request_stop(self, cost_model):
        class StopAtFive(SearchObserver):
            def on_step(self, step, cost, best_cost):
                if step >= 5:
                    self.request_stop()

        result = repro.explore(model="ncf", method="random", budget=500,
                               seed=0, platform="cloud",
                               callbacks=[StopAtFive()],
                               cost_model=cost_model)
        assert result.stopped_early
        assert len(result.history) == 5

    def test_observers_reset_between_runs(self, cost_model):
        # One observer instance serves many runs: a stop requested in run
        # 1 (or stale patience counters) must not leak into run 2.
        spec = SearchSpec(method="random", **dict(TINY, budget=30))
        session = SearchSession(spec, cost_model=cost_model)

        class StopAtFive(SearchObserver):
            def on_step(self, step, cost, best_cost):
                if step >= 5:
                    self.request_stop()

        stopper = StopAtFive()
        first = session.run(callbacks=[stopper])
        assert first.stopped_early and len(first.history) == 5
        second = session.run(callbacks=[stopper])
        assert second.stopped_early and len(second.history) == 5

        patience = EarlyStopping(patience=4)
        session.run(callbacks=[patience])
        stopped_at = patience.stopped_at
        session.run(callbacks=[patience])
        assert patience.stopped_at == stopped_at  # identical fresh run

    def test_local_ga_budget_counts_evaluations(self, cost_model):
        # Equal-budget fairness: local-ga must not outspend the other
        # genome methods by interpreting budget as whole generations.
        budget = 60
        result = repro.explore(model="ncf", method="local-ga",
                               budget=budget, seed=0, platform="cloud",
                               cost_model=cost_model)
        assert result.feasible
        assert result.result.evaluations <= budget + 20  # one population

    def test_checkpoint_hook_writes_best(self, cost_model, tmp_path):
        path = tmp_path / "checkpoint.json"
        result = repro.explore(method="sa", callbacks=[CheckpointHook(path)],
                               cost_model=cost_model, **TINY)
        document = json.loads(path.read_text())
        assert document["best_cost"] == result.best_cost
        assert document["best_assignments"] is not None

    def test_progress_reporter_writes_stream(self, cost_model):
        import io

        stream = io.StringIO()
        repro.explore(method="random", cost_model=cost_model,
                      callbacks=[ProgressReporter(every=2, stream=stream)],
                      **TINY)
        output = stream.getvalue()
        assert "[step 2]" in output
        assert "[done]" in output


class TestSessionResult:
    def test_save_and_load(self, cost_model, tmp_path):
        result = repro.explore(method="random", cost_model=cost_model,
                               **TINY)
        path = tmp_path / "run.json"
        result.save(path)
        loaded = SessionResult.load(path)
        assert loaded.spec == result.spec
        assert loaded.best_cost == result.best_cost

    def test_summary_mentions_method_and_model(self, cost_model):
        result = repro.explore(method="grid", cost_model=cost_model, **TINY)
        assert "grid" in result.summary()
        assert "ncf" in result.summary()

    def test_two_stage_detail_and_extra(self, cost_model):
        result = repro.explore(method="confuciux", cost_model=cost_model,
                               **TINY)
        assert result.detail is not None
        assert result.detail.best_cost == result.best_cost
        assert result.result.extra["global_cost"] is not None
        # extra survives serialization.
        clone = SessionResult.from_json(result.to_json())
        assert clone.result.extra["global_cost"] \
            == result.result.extra["global_cost"]

    def test_session_validates_method_eagerly(self):
        with pytest.raises(KeyError, match="unknown method"):
            SearchSession(SearchSpec(model="ncf", method="alphago"))
