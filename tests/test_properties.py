"""Property-based tests (hypothesis) on core invariants.

Covers the cost model's monotonicity/positivity contracts, the action-space
encode/decode round trip, the env-vs-evaluator consistency (the same genome
must cost the same through either path), autograd gradient linearity, and
the return-processing pipeline.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constraints import PlatformConstraint
from repro.core.evaluator import DesignPointEvaluator
from repro.costmodel import CostModel
from repro.env import ActionSpace, HWAssignmentEnv
from repro.models.layers import Layer, LayerType
from repro.nn.autograd import Tensor
from repro.rl.common import discounted_returns, standardize

_COST_MODEL = CostModel()
_SPACE = ActionSpace.build("dla")

layer_strategy = st.builds(
    lambda k, c, y, r, t: Layer(
        "prop",
        t,
        K=c if t is LayerType.DWCONV else k,
        C=c,
        Y=max(y, r),
        X=max(y, r),
        R=1 if t is LayerType.PWCONV else r,
        S=1 if t is LayerType.PWCONV else r,
    ),
    k=st.integers(1, 256),
    c=st.integers(1, 256),
    y=st.integers(3, 64),
    r=st.sampled_from([1, 3, 5]),
    t=st.sampled_from([LayerType.CONV, LayerType.DWCONV, LayerType.PWCONV,
                       LayerType.GEMM]),
)


class TestCostModelProperties:
    @settings(max_examples=60, deadline=None)
    @given(layer=layer_strategy, pe_idx=st.integers(0, 11),
           buf_idx=st.integers(0, 11), style=st.sampled_from(
               ["dla", "eye", "shi"]))
    def test_report_always_positive_and_consistent(self, layer, pe_idx,
                                                   buf_idx, style):
        pes = _SPACE.pe_levels[pe_idx]
        l1 = _SPACE.buf_levels[buf_idx]
        report = _COST_MODEL.evaluate_layer(layer, style, pes, l1)
        assert report.latency_cycles > 0
        assert report.energy_nj > 0
        assert report.area_um2 > 0
        assert 0 < report.pe_utilization <= 1.0 + 1e-12
        assert report.pes_used <= pes
        # Power identity at 1 GHz.
        assert report.power_mw == pytest.approx(
            1000.0 * report.energy_nj / report.latency_cycles)

    @settings(max_examples=40, deadline=None)
    @given(layer=layer_strategy, buf_idx=st.integers(0, 11))
    def test_latency_monotone_in_pes(self, layer, buf_idx):
        l1 = _SPACE.buf_levels[buf_idx]
        latencies = [
            _COST_MODEL.evaluate_layer(layer, "dla", pes, l1).latency_cycles
            for pes in _SPACE.pe_levels
        ]
        assert all(b <= a + 1e-9 for a, b in zip(latencies, latencies[1:]))

    @settings(max_examples=40, deadline=None)
    @given(layer=layer_strategy, pe_idx=st.integers(0, 11))
    def test_area_monotone_in_buffer(self, layer, pe_idx):
        pes = _SPACE.pe_levels[pe_idx]
        areas = [
            _COST_MODEL.evaluate_layer(layer, "dla", pes, l1).area_um2
            for l1 in _SPACE.buf_levels
        ]
        assert all(b > a for a, b in zip(areas, areas[1:]))

    @settings(max_examples=30, deadline=None)
    @given(layer=layer_strategy)
    def test_cache_determinism(self, layer):
        first = _COST_MODEL.evaluate_layer(layer, "eye", 16, 39)
        second = _COST_MODEL.evaluate_layer(layer, "eye", 16, 39)
        assert first == second


class TestActionSpaceProperties:
    @settings(max_examples=50, deadline=None)
    @given(pe_idx=st.integers(0, 11), buf_idx=st.integers(0, 11))
    def test_decode_nearest_roundtrip(self, pe_idx, buf_idx):
        pes, l1 = _SPACE.decode((pe_idx, buf_idx))
        assert _SPACE.nearest_levels(pes, l1) == (pe_idx, buf_idx)

    @settings(max_examples=30, deadline=None)
    @given(levels=st.integers(2, 20))
    def test_ladders_always_valid(self, levels):
        space = ActionSpace.build("dla", num_levels=levels)
        assert space.num_levels == levels
        assert space.pe_levels[0] >= 1


class TestEnvEvaluatorConsistency:
    @settings(max_examples=20, deadline=None)
    @given(genome_levels=st.lists(st.tuples(st.integers(0, 11),
                                            st.integers(0, 11)),
                                  min_size=4, max_size=4))
    def test_same_genome_same_cost(self, genome_levels):
        layers = [
            Layer("a", LayerType.CONV, K=16, C=8, Y=16, X=16, R=3, S=3),
            Layer("b", LayerType.DWCONV, K=16, C=16, Y=16, X=16, R=3, S=3),
            Layer("c", LayerType.PWCONV, K=32, C=16, Y=16, X=16),
            Layer("d", LayerType.GEMM, K=32, C=32, Y=8, X=1),
        ]
        constraint = PlatformConstraint(kind="area", budget=1e18)
        env = HWAssignmentEnv(layers, _SPACE, "latency", constraint,
                              _COST_MODEL, dataflow="dla")
        env.reset()
        done = False
        step = 0
        while not done:
            _, _, done, info = env.step(genome_levels[step])
            step += 1
        episode = info["episode"]
        evaluator = DesignPointEvaluator(layers, "latency", constraint,
                                         _COST_MODEL, _SPACE,
                                         dataflow="dla")
        outcome = evaluator.evaluate_genome(episode.genome)
        assert episode.cost == pytest.approx(outcome.cost)
        assert episode.used == pytest.approx(outcome.used)


class TestAutogradProperties:
    @settings(max_examples=40, deadline=None)
    @given(values=st.lists(st.floats(-10, 10), min_size=2, max_size=8),
           scale=st.floats(-3, 3))
    def test_gradient_linearity(self, values, scale):
        # d(scale * sum(x)) / dx = scale everywhere.
        x = Tensor(np.array(values), requires_grad=True)
        (x * scale).sum().backward()
        np.testing.assert_allclose(x.grad, np.full(len(values), scale),
                                   atol=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(rows=st.integers(1, 5), cols=st.integers(1, 5))
    def test_matmul_shape_contract(self, rows, cols):
        a = Tensor(np.ones((rows, 3)), requires_grad=True)
        b = Tensor(np.ones((3, cols)), requires_grad=True)
        out = a @ b
        assert out.shape == (rows, cols)
        out.sum().backward()
        assert a.grad.shape == (rows, 3)
        assert b.grad.shape == (3, cols)


class TestReturnProperties:
    @settings(max_examples=50, deadline=None)
    @given(rewards=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=60),
           discount=st.floats(0.0, 1.0))
    def test_returns_shape_and_terminal(self, rewards, discount):
        returns = discounted_returns(rewards, discount)
        assert returns.shape == (len(rewards),)
        assert returns[-1] == pytest.approx(rewards[-1])

    @settings(max_examples=50, deadline=None)
    @given(rewards=st.lists(st.floats(0.0, 1e6), min_size=2, max_size=60))
    def test_nonnegative_rewards_give_nonnegative_returns(self, rewards):
        returns = discounted_returns(rewards, 0.9)
        assert np.all(returns >= -1e-9)

    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(st.floats(-1e5, 1e5), min_size=2, max_size=40))
    def test_standardize_bounds(self, values):
        out = standardize(np.array(values))
        assert abs(out.mean()) < 1e-6
        assert out.std() <= 1.0 + 1e-6
