"""Tests for JSON serialization of search results."""

import json

import pytest

from repro import ConfuciuX
from repro.core.serialization import (
    confuciux_result_to_dict,
    load_search_result,
    save_confuciux_result,
    save_search_result,
    search_result_from_dict,
    search_result_to_dict,
)
from repro.rl.common import SearchResult


@pytest.fixture
def populated_result():
    result = SearchResult(algorithm="reinforce")
    result.best_cost = 1.5e7
    result.best_assignments = ((16, 39), (8, 29))
    result.best_genome = [5, 2, 3, 1]
    result.history = [float("inf"), 2e7, 1.5e7]
    result.evaluations = 100
    result.episodes = 50
    result.wall_time_s = 1.25
    result.memory_bytes = 1024
    return result


class TestSearchResultRoundtrip:
    def test_dict_roundtrip(self, populated_result):
        data = search_result_to_dict(populated_result)
        restored = search_result_from_dict(data)
        assert restored.algorithm == "reinforce"
        assert restored.best_cost == populated_result.best_cost
        assert restored.best_assignments == \
            populated_result.best_assignments
        assert restored.history == populated_result.history

    def test_infinity_encoded_as_null(self, populated_result):
        data = search_result_to_dict(populated_result)
        assert data["history"][0] is None
        text = json.dumps(data)  # valid strict JSON
        assert "Infinity" not in text

    def test_file_roundtrip(self, populated_result, tmp_path):
        path = tmp_path / "result.json"
        save_search_result(populated_result, path)
        restored = load_search_result(path)
        assert restored.best_cost == populated_result.best_cost
        assert restored.evaluations == 100

    def test_infeasible_result_roundtrip(self, tmp_path):
        result = SearchResult(algorithm="sa")
        result.history = [float("inf")] * 3
        path = tmp_path / "nan.json"
        save_search_result(result, path)
        restored = load_search_result(path)
        assert restored.best_cost is None
        assert not restored.feasible
        assert restored.format_cost() == "NAN"

    def test_missing_field_raises(self):
        with pytest.raises(KeyError):
            search_result_from_dict({"algorithm": "x"})


class TestConfuciuXResultSerialization:
    def test_two_stage_summary(self, cost_model, mobilenet_slice,
                               tmp_path):
        pipeline = ConfuciuX(mobilenet_slice, platform="cloud", seed=0,
                             cost_model=cost_model)
        result = pipeline._run(global_epochs=20, finetune_generations=5)
        data = confuciux_result_to_dict(result)
        assert data["best_cost"] == result.best_cost
        assert data["constraint"]["kind"] == "area"
        assert data["global_result"]["algorithm"] == "reinforce"
        assert data["finetune_result"]["algorithm"] == "local-ga"
        path = tmp_path / "confuciux.json"
        save_confuciux_result(result, path)
        loaded = json.loads(path.read_text())
        assert loaded["objective"] == "latency"
