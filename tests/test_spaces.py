"""Tests for the Table-I action space and observation encoding."""

import numpy as np
import pytest

from repro.env.observation import OBSERVATION_DIM, ObservationEncoder
from repro.env.spaces import ActionSpace, canonical_pe_levels
from repro.models import get_model


class TestPELevels:
    def test_l12_matches_table1(self):
        assert canonical_pe_levels(12) == [
            1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 96, 128]

    @pytest.mark.parametrize("levels", [10, 12, 14])
    def test_strictly_increasing_and_sized(self, levels):
        ladder = canonical_pe_levels(levels)
        assert len(ladder) == levels
        assert all(b > a for a, b in zip(ladder, ladder[1:]))
        assert ladder[0] == 1
        assert ladder[-1] == 128

    def test_custom_ceiling(self):
        ladder = canonical_pe_levels(8, max_pes=256)
        assert ladder[-1] == 256

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            canonical_pe_levels(1)
        with pytest.raises(ValueError):
            canonical_pe_levels(12, max_pes=4)


class TestActionSpace:
    def test_build_dla_table1(self, space_dla):
        assert space_dla.pe_levels == (1, 2, 4, 8, 12, 16, 24, 32, 48, 64,
                                       96, 128)
        assert space_dla.buf_levels == (19, 29, 39, 49, 59, 69, 79, 89, 99,
                                        109, 119, 129)
        assert not space_dla.is_mix
        assert space_dla.actions_per_step == 2
        assert space_dla.head_sizes == (12, 12)

    def test_mix_space(self, space_mix):
        assert space_mix.is_mix
        assert space_mix.actions_per_step == 3
        assert space_mix.head_sizes == (12, 12, 3)
        assert len(space_mix.buf_levels) == 12

    def test_decode(self, space_dla):
        assert space_dla.decode((0, 0)) == (1, 19)
        assert space_dla.decode((11, 11)) == (128, 129)
        assert space_dla.decode((4, 2)) == (12, 39)

    def test_decode_mix_includes_style(self, space_mix):
        decoded = space_mix.decode((0, 0, 1))
        assert len(decoded) == 3
        assert decoded[2] in ("dla", "shi", "eye")

    def test_decode_validates(self, space_dla):
        with pytest.raises(ValueError):
            space_dla.decode((0,))
        with pytest.raises(ValueError):
            space_dla.decode((12, 0))
        with pytest.raises(ValueError):
            space_dla.decode((0, -1))

    def test_max_action(self, space_dla, space_mix):
        assert space_dla.max_action() == (11, 11)
        assert space_mix.max_action() == (11, 11, 0)

    def test_nearest_levels(self, space_dla):
        assert space_dla.nearest_levels(13, 40) == (4, 2)
        assert space_dla.nearest_levels(1000, 1000) == (11, 11)
        assert space_dla.nearest_levels(1, 1) == (0, 0)

    def test_design_space_size_magnitude(self, space_dla):
        # Section I: O(10^72) for 128 PEs/bufs over 52 layers; the paper's
        # Section IV-C4 quotes 12^104 = O(10^112) for the level space.
        size = space_dla.design_space_size(num_layers=52)
        assert size == pytest.approx(144.0 ** 52)
        assert 1e111 < size < 1e113

    def test_validation_rejects_unsorted(self):
        with pytest.raises(ValueError):
            ActionSpace(pe_levels=(4, 2), buf_levels=(19, 29))
        with pytest.raises(ValueError):
            ActionSpace(pe_levels=(2, 4), buf_levels=(29, 19))
        with pytest.raises(ValueError):
            ActionSpace(pe_levels=(2, 4, 8), buf_levels=(19, 29))

    @pytest.mark.parametrize("levels", [10, 14])
    def test_table9_level_sweeps(self, levels):
        space = ActionSpace.build("dla", num_levels=levels)
        assert space.num_levels == levels
        assert space.head_sizes == (levels, levels)


class TestObservationEncoder:
    def test_dimension_is_10(self, mobilenet_slice, space_dla):
        encoder = ObservationEncoder.for_model(mobilenet_slice, space_dla)
        obs = encoder.encode(mobilenet_slice[0], 0, None)
        assert obs.shape == (OBSERVATION_DIM,)

    def test_values_in_unit_range(self, mobilenet_slice, space_dla):
        encoder = ObservationEncoder.for_model(mobilenet_slice, space_dla)
        for step, layer in enumerate(mobilenet_slice):
            for prev in (None, (0, 0), (11, 11)):
                obs = encoder.encode(layer, step, prev)
                assert np.all(obs >= -1.0) and np.all(obs <= 1.0)

    def test_previous_action_encoded(self, mobilenet_slice, space_dla):
        encoder = ObservationEncoder.for_model(mobilenet_slice, space_dla)
        low = encoder.encode(mobilenet_slice[0], 0, (0, 0))
        high = encoder.encode(mobilenet_slice[0], 0, (11, 11))
        assert low[7] == -1.0 and low[8] == -1.0
        assert high[7] == 1.0 and high[8] == 1.0

    def test_time_dimension_progresses(self, mobilenet_slice, space_dla):
        encoder = ObservationEncoder.for_model(mobilenet_slice, space_dla)
        first = encoder.encode(mobilenet_slice[0], 0, None)[9]
        last = encoder.encode(mobilenet_slice[-1],
                              len(mobilenet_slice) - 1, None)[9]
        assert first == -1.0 and last == 1.0

    def test_rejects_empty_model(self, space_dla):
        with pytest.raises(ValueError):
            ObservationEncoder.for_model([], space_dla)

    def test_encode_all(self, mobilenet_slice, space_dla):
        encoder = ObservationEncoder.for_model(mobilenet_slice, space_dla)
        encodings = encoder.encode_all(mobilenet_slice)
        assert len(encodings) == len(mobilenet_slice)

    def test_distinguishes_layer_types(self, space_dla):
        layers = get_model("mobilenet_v2")[:5]
        encoder = ObservationEncoder.for_model(layers, space_dla)
        conv_obs = encoder.encode(layers[0], 0, None)
        dw_obs = encoder.encode(layers[1], 1, None)
        assert conv_obs[6] != dw_obs[6]
