"""Tests for the dataflow styles: ladders, tile fitting, spatial plans."""

import pytest

from repro.costmodel.dataflow import (
    DATAFLOW_ORDER,
    DATAFLOWS,
    EyerissStyle,
    NVDLAStyle,
    ShiDianNaoStyle,
    get_dataflow,
)
from repro.models.layers import Layer, LayerType, gemm_layer


class TestRegistry:
    def test_three_styles(self):
        assert set(DATAFLOWS) == {"dla", "eye", "shi"}
        assert set(DATAFLOW_ORDER) == set(DATAFLOWS)

    def test_get_by_name(self):
        assert isinstance(get_dataflow("dla"), NVDLAStyle)
        assert isinstance(get_dataflow("eye"), EyerissStyle)
        assert isinstance(get_dataflow("shi"), ShiDianNaoStyle)

    def test_instances_pass_through(self):
        df = NVDLAStyle()
        assert get_dataflow(df) is df

    def test_unknown_style_raises(self):
        with pytest.raises(KeyError, match="unknown dataflow"):
            get_dataflow("tpu")


class TestBufferLevels:
    def test_nvdla_matches_table1_exactly(self):
        # Table I: 19, 29, 39, ..., 129 bytes (9k + 9 + k, k = 1..12).
        assert NVDLAStyle().buffer_levels(12) == [
            19, 29, 39, 49, 59, 69, 79, 89, 99, 109, 119, 129]

    @pytest.mark.parametrize("style", DATAFLOW_ORDER)
    @pytest.mark.parametrize("levels", [10, 12, 14])
    def test_ladders_strictly_increasing(self, style, levels):
        ladder = get_dataflow(style).buffer_levels(levels)
        assert len(ladder) == levels
        assert all(b > a for a, b in zip(ladder, ladder[1:]))

    def test_rejects_zero_levels(self):
        with pytest.raises(ValueError):
            NVDLAStyle().buffer_levels(0)


class TestTileFit:
    def test_nvdla_3x3_inverse_of_ladder(self, conv_layer):
        dla = NVDLAStyle()
        for k, l1_bytes in enumerate(dla.buffer_levels(12), start=1):
            assert dla.tile_fit(conv_layer, l1_bytes) == k

    def test_always_at_least_one(self, conv_layer):
        for style in DATAFLOW_ORDER:
            assert get_dataflow(style).tile_fit(conv_layer, 1) == 1

    def test_l1_requirement_roundtrip(self, conv_layer):
        dla = NVDLAStyle()
        for k in (1, 4, 12):
            need = dla.l1_requirement(conv_layer, k)
            assert dla.tile_fit(conv_layer, need) >= k

    def test_gemm_footprint_uses_1x1(self, gemm):
        dla = NVDLAStyle()
        # Footprint is (R*S + 1) per filter + R*S fixed = 2k + 1.
        assert dla.tile_fit(gemm, 21) == 10


class TestSpatialPlans:
    @pytest.mark.parametrize("style", DATAFLOW_ORDER)
    @pytest.mark.parametrize("pes", [1, 8, 64, 128])
    @pytest.mark.parametrize("l1", [19, 69, 129])
    def test_plan_invariants(self, style, pes, l1, conv_layer):
        plan = get_dataflow(style).plan(conv_layer, pes, l1)
        assert plan.units >= 1
        assert plan.unit_macs >= 1
        assert plan.weight_fetches >= 1.0
        assert plan.input_fetches >= 1.0
        assert plan.output_fetches >= 1.0
        assert plan.tile_k >= 1

    @pytest.mark.parametrize("style", DATAFLOW_ORDER)
    def test_total_work_covers_layer(self, style, conv_layer):
        plan = get_dataflow(style).plan(conv_layer, 16, 69)
        assert plan.units * plan.unit_macs >= conv_layer.macs

    def test_dla_parallelism_scales_with_channels(self):
        dla = NVDLAStyle()
        small = Layer("s", LayerType.CONV, K=4, C=4, Y=16, X=16, R=3, S=3)
        large = Layer("l", LayerType.CONV, K=64, C=64, Y=16, X=16, R=3, S=3)
        assert dla.plan(large, 128, 19).units > dla.plan(small, 128, 19).units

    def test_eye_parallelism_scales_with_rows(self):
        eye = EyerissStyle()
        small = Layer("s", LayerType.CONV, K=16, C=16, Y=8, X=8, R=3, S=3)
        large = Layer("l", LayerType.CONV, K=16, C=16, Y=64, X=64, R=3, S=3)
        assert eye.plan(large, 128, 19).units > eye.plan(small, 128, 19).units

    def test_shi_parallelism_scales_with_output_plane(self):
        shi = ShiDianNaoStyle()
        small = Layer("s", LayerType.CONV, K=16, C=16, Y=8, X=8, R=3, S=3)
        large = Layer("l", LayerType.CONV, K=16, C=16, Y=64, X=64, R=3, S=3)
        assert shi.plan(large, 128, 19).units > shi.plan(small, 128, 19).units

    def test_dla_dwconv_tile_does_not_change_total_work(self, dw_layer):
        # Section IV-B: for DWCONV under dla, growing the filter tile buys
        # nothing -- each output channel only needs its own input channel.
        dla = NVDLAStyle()
        small = dla.plan(dw_layer, 8, 19)
        large = dla.plan(dw_layer, 8, 129)
        small_total = small.units * small.unit_macs
        large_total = large.units * large.unit_macs
        # Equal up to the ceil slack of a partially filled last tile.
        assert small_total <= large_total <= 1.25 * small_total

    def test_dla_larger_tile_fewer_input_refetches(self):
        dla = NVDLAStyle()
        layer = Layer("l", LayerType.CONV, K=256, C=8, Y=16, X=16, R=3, S=3)
        small = dla.plan(layer, 8, 19)
        large = dla.plan(layer, 8, 129)
        assert large.input_fetches <= small.input_fetches

    def test_shi_more_pes_fewer_weight_refetches(self, conv_layer):
        shi = ShiDianNaoStyle()
        few = shi.plan(conv_layer, 2, 19)
        many = shi.plan(conv_layer, 128, 19)
        assert many.weight_fetches <= few.weight_fetches

    def test_dwconv_no_cross_channel_reduction_in_unit_macs(self, dw_layer):
        for style in DATAFLOW_ORDER:
            plan = get_dataflow(style).plan(dw_layer, 16, 69)
            total = plan.units * plan.unit_macs
            assert total < 4 * dw_layer.macs  # ceil slack only, no x C
