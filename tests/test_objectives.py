"""The objective subsystem: registry, specs, and legacy bit-parity.

Two contracts are locked down here.  First, the spec grammar: names,
``weighted:`` / ``multi:`` strings, dicts, and instances all resolve,
round-trip through JSON, and fail fast on typos.  Second -- the
refactor's acceptance bar -- registry objectives are *bit-identical* to
the legacy string paths: for every batchable method, a session run with
``objective="latency"|"energy"|"edp"`` given as a name, a resolved
instance, or a re-parsed spec produces the same costs, RNG streams, and
reports, across the executor matrix.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.serialization import search_result_to_dict
from repro.objectives import (
    ComponentObjective,
    CostTotals,
    MultiObjective,
    Objective,
    PenaltyObjective,
    WeightedObjective,
    list_objectives,
    objective_label,
    objective_spec,
    register_objective,
    resolve_objective,
    unregister_objective,
)
from repro.search import SearchSession, SearchSpec, list_methods

LEGACY = ("latency", "energy", "edp")


def _batchable_names():
    return [info.name for info in list_methods() if info.batchable]


# ----------------------------------------------------------------------
# Registry and spec grammar
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtin_components_registered(self):
        assert {"latency", "energy", "edp", "area", "power"} \
            <= set(list_objectives())

    def test_resolve_name_string_dict_instance(self):
        by_name = resolve_objective("latency")
        assert isinstance(by_name, ComponentObjective)
        assert resolve_objective(by_name) is by_name
        weighted = resolve_objective("weighted:latency=0.5,energy=0.5")
        assert isinstance(weighted, WeightedObjective)
        assert resolve_objective(weighted.spec()) == weighted
        multi = resolve_objective("multi:latency,energy")
        assert isinstance(multi, MultiObjective)
        assert multi.component_names == ["latency", "energy"]

    def test_unknown_name_raises_keyerror(self):
        with pytest.raises(KeyError, match="nope"):
            resolve_objective("nope")

    @pytest.mark.parametrize("bad", [
        "weighted:", "weighted:latency", "weighted:latency=x",
        "multi:", {"kind": "mystery"},
    ])
    def test_malformed_specs_raise(self, bad):
        with pytest.raises((ValueError, KeyError)):
            resolve_objective(bad)

    def test_register_and_unregister_custom(self):
        class Inverse(Objective):
            name = "neg-power"

            def evaluate(self, report):
                return -report.power_mw

            def spec(self):
                return "neg-power"

        register_objective("neg-power", Inverse)
        try:
            assert resolve_objective("neg-power").evaluate(
                CostTotals(0.0, 0.0, 0.0, 3.0)) == -3.0
            spec = SearchSpec(model="mobilenet_v2", objective="neg-power")
            assert spec.objective == "neg-power"
            with pytest.raises(ValueError, match="already registered"):
                register_objective("neg-power", Inverse)
        finally:
            unregister_objective("neg-power")
        with pytest.raises(KeyError):
            resolve_objective("neg-power")

    def test_penalty_dict_round_trip(self):
        penalty = PenaltyObjective(resolve_objective("latency"),
                                   limit_on="area", limit=100.0, weight=2.0)
        rebuilt = resolve_objective(penalty.spec())
        assert rebuilt == penalty
        totals = CostTotals(10.0, 0.0, 150.0, 0.0)
        assert rebuilt.evaluate(totals) == 10.0 + 2.0 * 50.0
        under = CostTotals(10.0, 0.0, 50.0, 0.0)
        assert rebuilt.evaluate(under) == 10.0

    def test_labels(self):
        assert objective_label("latency") == "latency"
        assert objective_label("multi:latency,energy") \
            == "multi(latency,energy)"
        assert "weighted" in objective_label(
            {"kind": "weighted", "weights": {"edp": 1.0}})

    def test_objective_spec_canonicalizes_instances(self):
        assert objective_spec(resolve_objective("edp")) == "edp"
        assert objective_spec("multi:latency,energy") \
            == "multi:latency,energy"


# ----------------------------------------------------------------------
# Evaluation semantics
# ----------------------------------------------------------------------
class TestEvaluation:
    def test_components_match_report_attributes(self, cost_model,
                                                conv_layer):
        report = cost_model.evaluate_layer(conv_layer, "dla", 64, 128)
        assert resolve_objective("latency").evaluate(report) \
            == report.latency_cycles
        assert resolve_objective("energy").evaluate(report) \
            == report.energy_nj
        assert resolve_objective("edp").evaluate(report) \
            == report.energy_nj * report.latency_cycles
        assert resolve_objective("area").evaluate(report) \
            == report.area_um2
        assert resolve_objective("power").evaluate(report) \
            == report.power_mw

    def test_legacy_names_bit_identical_to_string_path(self, cost_model,
                                                       tiny_model):
        report = cost_model.evaluate_model(
            tiny_model, [(16, 64)] * len(tiny_model), dataflow="dla")
        for name in LEGACY:
            assert resolve_objective(name).evaluate(report) \
                == report.objective(name)

    def test_scalar_results_stay_python_floats(self):
        totals = CostTotals(2.0, 3.0, 5.0, 7.0)
        weighted = resolve_objective("weighted:latency=0.25,energy=0.75")
        assert type(weighted.evaluate(totals)) is float
        penalty = PenaltyObjective(weighted, "area", 1.0, weight=0.5)
        assert type(penalty.evaluate(totals)) is float

    def test_elementwise_over_batch_arrays(self):
        totals = CostTotals(np.array([1.0, 2.0]), np.array([3.0, 4.0]),
                            np.array([5.0, 6.0]), np.array([7.0, 8.0]))
        weighted = resolve_objective("weighted:latency=1,area=2")
        np.testing.assert_array_equal(weighted.evaluate(totals),
                                      np.array([11.0, 14.0]))
        multi = resolve_objective("multi:latency,energy")
        np.testing.assert_array_equal(
            multi.evaluate_components(totals),
            np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert multi.evaluate(totals) is totals.latency_cycles

    def test_report_objective_accepts_instances(self, cost_model,
                                                conv_layer):
        report = cost_model.evaluate_layer(conv_layer, "dla", 32, 99)
        weighted = resolve_objective("weighted:latency=0.5,energy=0.5")
        assert report.objective(weighted) == weighted.evaluate(report)
        assert report.objective("area") == report.area_um2

    def test_multi_rejects_nesting_and_empty(self):
        with pytest.raises(ValueError):
            MultiObjective([])
        with pytest.raises(ValueError, match="nest"):
            MultiObjective([resolve_objective("multi:latency,energy")])

    def test_penalty_rejects_multi_base(self):
        """A penalty over a multi base would silently collapse the
        trade-off to its primary component; the supported shape is a
        multi of penalty-augmented components."""
        with pytest.raises(ValueError, match="multi"):
            PenaltyObjective(resolve_objective("multi:latency,energy"),
                             limit_on="area", limit=1e8)
        supported = MultiObjective([
            PenaltyObjective(resolve_objective("latency"), "area", 1e8),
            resolve_objective("energy"),
        ])
        assert supported.is_multi and len(supported.components) == 2


# ----------------------------------------------------------------------
# SearchSpec threading
# ----------------------------------------------------------------------
class TestSpecThreading:
    def test_instance_stored_as_json_spec(self):
        spec = SearchSpec(model="mobilenet_v2",
                          objective=resolve_objective(
                              "weighted:latency=0.5,energy=0.5"))
        assert spec.objective == {"kind": "weighted",
                                  "weights": {"latency": 0.5,
                                              "energy": 0.5}}
        assert SearchSpec.from_json(spec.to_json()) == spec

    def test_string_specs_round_trip_verbatim(self):
        for objective in ("latency", "multi:latency,energy",
                          "weighted:latency=0.5,edp=0.5"):
            spec = SearchSpec(model="mobilenet_v2", objective=objective)
            assert spec.objective == objective
            assert SearchSpec.from_json(spec.to_json()) == spec

    def test_invalid_objective_raises_valueerror(self):
        with pytest.raises(ValueError, match="objective"):
            SearchSpec(model="mobilenet_v2", objective="throughput")

    def test_resolved_objective(self):
        spec = SearchSpec(model="mobilenet_v2",
                          objective="multi:latency,area")
        assert spec.resolved_objective().is_multi

    def test_specs_stay_hashable_with_dict_objectives(self):
        """Frozen specs are dedup keys; composite objective specs must
        not break that, and equal specs must hash equal."""
        weighted = {"kind": "weighted", "weights": {"latency": 1.0}}
        a = SearchSpec(model="mobilenet_v2", objective=weighted)
        b = SearchSpec(model="mobilenet_v2", objective=dict(weighted))
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1
        plain = SearchSpec(model="mobilenet_v2")
        assert hash(plain) != hash(a)


# ----------------------------------------------------------------------
# Legacy bit-parity across every batchable method
# ----------------------------------------------------------------------
def _comparable(outcome) -> dict:
    data = search_result_to_dict(outcome.result)
    data.pop("wall_time_s", None)
    return data


@pytest.mark.parametrize("method", _batchable_names())
def test_registry_objectives_bit_identical_per_batchable_method(method):
    """Name vs instance vs re-parsed spec: one answer per method.

    The legacy string path and the resolved-objective path must agree on
    everything the result records -- costs, genomes, histories (which
    pin the RNG streams), evaluation counts.
    """
    info = repro.get_method(method)
    budget, finetune = (6, 3) if info.kind == "two-stage" else (30, None)
    objective = "edp"
    reference = None
    for form in (objective,
                 resolve_objective(objective),
                 objective_spec(resolve_objective(objective))):
        spec = SearchSpec(model="mobilenet_v2", method=method,
                          objective=form, budget=budget, finetune=finetune,
                          seed=7, layer_slice=4)
        observed = _comparable(SearchSession(spec).run())
        if reference is None:
            reference = observed
        else:
            assert observed == reference, (
                f"{method}: objective form {form!r} diverged")


@pytest.mark.parametrize("objective", LEGACY)
def test_population_matches_scalar_path_for_every_legacy_name(
        cost_model, tiny_model, objective):
    """evaluate_population stays bit-identical to evaluate_genome under
    resolved objectives (the pre-refactor parity, re-proven on the new
    code path)."""
    from repro.core.constraints import platform_constraint
    from repro.core.evaluator import DesignPointEvaluator
    from repro.env.spaces import ActionSpace

    space = ActionSpace.build("dla")
    constraint = platform_constraint(tiny_model, "dla", "area", "cloud",
                                     cost_model, space)
    evaluator = DesignPointEvaluator(tiny_model, objective, constraint,
                                     cost_model, space, dataflow="dla")
    rng = np.random.default_rng(5)
    genomes = [[int(g) for g in rng.integers(space.num_levels,
                                             size=evaluator.genome_length)]
               for _ in range(16)]
    batched = evaluator.evaluate_population(genomes)
    for genome, got in zip(genomes, batched):
        want = evaluator.evaluate_genome(genome)
        assert got.cost == want.cost
        assert got.feasible == want.feasible
        assert got.used == want.used


@pytest.mark.parametrize("objective", [
    "area", "weighted:latency=0.5,energy=0.5",
    {"kind": "penalty", "base": "latency", "limit_on": "area",
     "limit": 1e9, "weight": 0.001},
])
def test_population_matches_scalar_path_for_new_objectives(
        cost_model, tiny_model, objective):
    """The batched kernel and the scalar path agree on the *new*
    objective kinds too (same totals, same elementwise arithmetic)."""
    from repro.core.constraints import platform_constraint
    from repro.core.evaluator import DesignPointEvaluator
    from repro.env.spaces import ActionSpace

    space = ActionSpace.build("dla")
    constraint = platform_constraint(tiny_model, "dla", "area", "cloud",
                                     cost_model, space)
    evaluator = DesignPointEvaluator(tiny_model, objective, constraint,
                                     cost_model, space, dataflow="dla")
    rng = np.random.default_rng(6)
    genomes = [[int(g) for g in rng.integers(space.num_levels,
                                             size=evaluator.genome_length)]
               for _ in range(12)]
    batched = evaluator.evaluate_population(genomes)
    for genome, got in zip(genomes, batched):
        want = evaluator.evaluate_genome(genome)
        assert got.cost == want.cost
        assert got.feasible == want.feasible


def test_env_rewards_identical_for_name_and_instance(cost_model,
                                                     mobilenet_slice):
    """The environment's reward stream is the same whether the objective
    arrives as a string or a resolved instance."""
    from repro.experiments.tasks import TaskSpec

    def run(objective):
        task = TaskSpec(model=mobilenet_slice, objective=objective,
                        platform="cloud")
        env = task.make_env(cost_model)
        env.reset()
        rewards = []
        rng = np.random.default_rng(3)
        done = False
        while not done:
            action = (int(rng.integers(env.space.num_levels)),
                      int(rng.integers(env.space.num_levels)))
            _, reward, done, _ = env.step(action)
            rewards.append(reward)
        return rewards

    assert run("energy") == run(resolve_objective("energy"))


def test_weighted_objective_session_runs_and_serializes(tmp_path):
    outcome = repro.explore(model="mobilenet_v2", method="random",
                            objective="weighted:latency=0.7,energy=0.3",
                            budget=40, seed=0, layer_slice=4)
    assert outcome.feasible
    path = tmp_path / "weighted.json"
    outcome.save(path)
    loaded = repro.SessionResult.load(path)
    assert loaded.spec == outcome.spec
    assert loaded.best_cost == outcome.best_cost


# ----------------------------------------------------------------------
# Scenario presets (battery-life / sla)
# ----------------------------------------------------------------------
class TestScenarioPresets:
    def test_registered_and_resolvable(self):
        names = list_objectives()
        assert "battery-life" in names and "sla" in names

    @pytest.mark.parametrize("name, base, limit_on", [
        ("battery-life", "energy", "area"),
        ("sla", "latency", "power"),
    ])
    def test_name_is_the_spec_and_roundtrips(self, name, base, limit_on):
        objective = resolve_objective(name)
        assert objective.spec() == name
        assert objective.name == name
        assert objective.base.name == base
        assert objective.limit_on == limit_on
        assert resolve_objective(objective.spec()) == objective

    @pytest.mark.parametrize("name", ["battery-life", "sla"])
    def test_evaluates_as_documented_penalty(self, name):
        """The preset equals its explicit penalty construction, on both
        sides of the cap."""
        preset = resolve_objective(name)
        explicit = PenaltyObjective(
            base=ComponentObjective(preset.base.name),
            limit_on=preset.limit_on, limit=preset.limit,
            weight=preset.weight)
        below = CostTotals(1.0e6, 2.0e5, preset.limit * 0.5,
                           preset.limit * 0.5)
        above = CostTotals(1.0e6, 2.0e5, preset.limit * 3.0,
                           preset.limit * 3.0)
        for totals in (below, above):
            assert preset.evaluate(totals) == explicit.evaluate(totals)
        assert preset.evaluate(above) > preset.evaluate(below)

    def test_custom_caps_serialize_as_penalty_dicts(self):
        from repro.objectives import BatteryLifeObjective, SlaObjective

        custom = BatteryLifeObjective(limit=2.0e7)
        spec = custom.spec()
        assert isinstance(spec, dict) and spec["kind"] == "penalty"
        assert resolve_objective(spec).evaluate(
            CostTotals(1.0, 1.0, 3.0e7, 1.0)) \
            == custom.evaluate(CostTotals(1.0, 1.0, 3.0e7, 1.0))
        assert SlaObjective(weight=2.0).spec()["weight"] == 2.0

    @pytest.mark.parametrize("name", ["battery-life", "sla"])
    def test_search_spec_roundtrip(self, name):
        spec = SearchSpec(model="mobilenet_v2", objective=name)
        restored = SearchSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.resolved_objective() == resolve_objective(name)

    def test_session_runs_and_labels(self, tmp_path):
        outcome = repro.explore(model="mobilenet_v2", method="random",
                                objective="battery-life", budget=40,
                                seed=0, layer_slice=4)
        assert outcome.feasible
        assert "battery-life" in outcome.summary()
        path = tmp_path / "battery.json"
        outcome.save(path)
        loaded = repro.SessionResult.load(path)
        assert loaded.spec == outcome.spec
        assert loaded.best_cost == outcome.best_cost
        # the penalty actually bites above the cap: a known over-cap
        # design scores strictly worse than its bare energy component
        preset = resolve_objective("battery-life")
        over_cap = CostTotals(1.0e6, 2.0e5, preset.limit * 2.0, 1.0e3)
        assert preset.evaluate(over_cap) \
            == over_cap.energy_nj + preset.weight * preset.limit
