"""Table V: comparison against state-of-the-art RL algorithms.

All 14 rows of the paper (MobileNet-V2, ResNet-50, MnasNet cells), columns
A2C / ACKTR / PPO2 / DDPG / SAC / TD3 / Con'X(global), reporting the
converged objective value, the search effort (environment evaluations and
wall time), and the memory overhead row.
"""

from __future__ import annotations

from repro.core.reporting import format_table
from repro.experiments import TaskSpec, default_epochs
from repro.experiments.lp_study import (
    display_columns,
    rl_comparison_methods,
    run_row,
)

LAYER_SLICE = 12

ROWS = [
    ("mobilenet_v2", "latency", "area", "iot"),
    ("mobilenet_v2", "latency", "area", "iotx"),
    ("mobilenet_v2", "latency", "power", "iot"),
    ("mobilenet_v2", "latency", "power", "iotx"),
    ("mobilenet_v2", "energy", "area", "iot"),
    ("mobilenet_v2", "energy", "power", "iot"),
    ("resnet50", "latency", "area", "cloud"),
    ("resnet50", "latency", "power", "cloud"),
    ("resnet50", "energy", "area", "cloud"),
    ("resnet50", "energy", "power", "cloud"),
    ("mnasnet", "latency", "area", "iot"),
    ("mnasnet", "latency", "power", "iot"),
    ("mnasnet", "energy", "area", "iot"),
    ("mnasnet", "energy", "power", "iot"),
]


def test_table05_rl_algorithms(benchmark, cost_model, save_report):
    epochs = default_epochs(80)
    # Resolved at run time so methods registered after import (e.g. by a
    # plugin conftest) join the grid automatically.
    methods = rl_comparison_methods()

    def run():
        table = []
        memory = {name: 0 for name in methods}
        outcomes = []
        for model, objective, kind, platform in ROWS:
            task = TaskSpec(model=model, dataflow="dla",
                            objective=objective, constraint_kind=kind,
                            platform=platform, layer_slice=LAYER_SLICE)
            results = run_row(task, methods, epochs,
                              cost_model=cost_model)
            row = [f"{model} {objective} {kind}:{platform}"]
            for name in methods:
                result = results[name]
                row.append(f"{result.format_cost()} ({result.wall_time_s:.1f}s)")
                memory[name] = max(memory[name], result.memory_bytes)
            table.append(row)
            outcomes.append(results)
        table.append(
            ["memory overhead (MB)"]
            + [f"{memory[name] / 1e6:.1f}" for name in methods])
        return table, outcomes

    table, outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    headers = ["task"] + display_columns(methods)
    save_report("table05_rl_algorithms", format_table(
        headers, table,
        title=f"Table V -- RL algorithm comparison, Eps={epochs}, "
              f"first {LAYER_SLICE} layers (value (wall time))",
    ))

    # Shape checks: Con'X feasible everywhere; at least as good as the
    # median competitor on most rows; actor-critic memory exceeds Con'X.
    wins = 0
    for results in outcomes:
        conx = results["reinforce"]
        assert conx.feasible
        others = sorted(r.best_cost for name, r in results.items()
                        if name != "reinforce" and r.best_cost is not None)
        if not others or conx.best_cost <= others[len(others) // 2]:
            wins += 1
    assert wins >= len(outcomes) // 2
    memory_row = table[-1]
    conx_memory = float(memory_row[1 + methods.index("reinforce")])
    ddpg_memory = float(memory_row[1 + methods.index("ddpg")])
    assert conx_memory < ddpg_memory  # replay buffers dominate (paper: 2.1
    #                                   vs 13.9+ MB)
