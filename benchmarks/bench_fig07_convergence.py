"""Fig. 7: convergence and sample efficiency of Con'X(global).

Two traces on MobileNet-V2 under the IoT area budget -- (a) minimize
latency, (b) minimize energy -- against random search as the
sample-efficiency reference, plus the epochs-to-quality metric.
"""

from __future__ import annotations

from repro.core.reporting import ascii_bars, format_table
from repro.experiments import TaskSpec, default_epochs
from repro.experiments.runner import compare_methods

LAYER_SLICE = 16


def trace_summary(history, buckets=8):
    """Downsample a best-so-far trace for the ASCII rendering."""
    step = max(1, len(history) // buckets)
    points = history[::step][:buckets]
    return [v if v != float("inf") else 0.0 for v in points]


def test_fig07_convergence(benchmark, cost_model, save_report):
    epochs = default_epochs(200)

    def run():
        out = {}
        for objective in ("latency", "energy"):
            task = TaskSpec(model="mobilenet_v2", objective=objective,
                            platform="iot", layer_slice=LAYER_SLICE)
            out[objective] = compare_methods(
                task, ["reinforce", "random"], epochs,
                cost_model=cost_model)
        return out

    traces = benchmark.pedantic(run, rounds=1, iterations=1)

    sections = []
    rows = []
    for objective, results in traces.items():
        conx = results["reinforce"]
        random = results["random"]
        target = (random.best_cost if random.best_cost is not None
                  else conx.best_cost * 2)
        reach = conx.epochs_to_reach(target)
        rows.append([
            objective,
            conx.format_cost(),
            random.format_cost(),
            str(reach) if reach is not None else ">budget",
            f"{conx.evaluations}",
        ])
        sections.append(
            f"\n(a={objective}) Con'X(global) best-so-far trace "
            f"(downsampled):\n"
            + ascii_bars(trace_summary(conx.history),
                         labels=[f"ep{i * (epochs // 8)}"
                                 for i in range(8)]))
    report = format_table(
        ["objective", "Con'X best", "random best",
         "epochs to reach random's best", "env evals"],
        rows,
        title=f"Fig. 7 -- convergence, MobileNet-V2 "
              f"(first {LAYER_SLICE} layers), IoT area, Eps={epochs}",
    ) + "\n" + "\n".join(sections)
    save_report("fig07_convergence", report)

    # Shape check: Con'X reaches random search's final quality early.
    for objective, results in traces.items():
        conx, random = results["reinforce"], results["random"]
        assert conx.feasible
        if random.best_cost is not None:
            reach = conx.epochs_to_reach(random.best_cost)
            assert reach is not None and reach <= epochs
