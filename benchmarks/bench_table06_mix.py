"""Table VI: dataflow-HW co-automation.

For each (model, platform) row, compares Con'X(global) with the three fixed
dataflow styles against Con'X-MIX, which also picks a style per layer.
"""

from __future__ import annotations

from repro.core.joint import JointSearch
from repro.core.reporting import format_table
from repro.experiments import TaskSpec, default_epochs
from repro.experiments.runner import compare_methods

LAYER_SLICE = 12

ROWS = [
    ("mobilenet_v2", "iot"),
    ("mobilenet_v2", "iotx"),
    ("mnasnet", "cloud"),
    ("mnasnet", "iot"),
    ("resnet50", "cloud"),
    ("resnet50", "iot"),
    ("resnet50", "iotx"),
    ("gnmt", "cloud"),
    ("ncf", "cloud"),
    ("ncf", "iot"),
]


def run_cell(cost_model, model, platform, dataflow, epochs, mix=False):
    task = TaskSpec(model=model, dataflow=dataflow, platform=platform,
                    mix=mix, layer_slice=LAYER_SLICE)
    results = compare_methods(task, ["reinforce"], epochs,
                              cost_model=cost_model)
    return results["reinforce"]


def test_table06_mix(benchmark, cost_model, save_report):
    epochs = default_epochs(120)

    def run():
        table = []
        outcomes = []
        for model, platform in ROWS:
            cells = {}
            for dataflow in ("dla", "shi", "eye"):
                cells[dataflow] = run_cell(cost_model, model, platform,
                                           dataflow, epochs)
            cells["mix"] = run_cell(cost_model, model, platform, "dla",
                                    epochs, mix=True)
            table.append([
                f"{model} {platform}",
                cells["dla"].format_cost(),
                cells["shi"].format_cost(),
                cells["eye"].format_cost(),
                cells["mix"].format_cost(),
            ])
            outcomes.append(cells)
        return table, outcomes

    table, outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("table06_mix", format_table(
        ["model platform", "Con'X-dla", "Con'X-shi", "Con'X-eye",
         "Con'X-MIX"],
        table,
        title=f"Table VI -- dataflow-HW co-automation (latency, cycles), "
              f"Eps={epochs}, first {LAYER_SLICE} layers",
    ))

    # Shape check: MIX is competitive with the best fixed style on most
    # rows (the paper: MIX improves 4%..69% over the best fixed).
    competitive = 0
    for cells in outcomes:
        fixed = [cells[s].best_cost for s in ("dla", "shi", "eye")
                 if cells[s].best_cost is not None]
        if cells["mix"].best_cost is not None and fixed:
            if cells["mix"].best_cost <= min(fixed) * 1.5:
                competitive += 1
    assert competitive >= len(outcomes) // 2
