"""Fig. 8: the per-layer dataflow + resource assignment chosen by MIX.

Runs Con'X-MIX on the full 52-layer MobileNet-V2 under the IoT area budget
and renders the per-layer style letters with the PE and buffer bars.
"""

from __future__ import annotations

from repro.core.joint import (
    JointSearch,
    dataflow_assignment_table,
    style_histogram,
)
from repro.core.reporting import ascii_bars, format_table
from repro.experiments import default_epochs
from repro.models import get_model


def test_fig08_mix_assignment(benchmark, cost_model, save_report):
    layers = get_model("mobilenet_v2")
    epochs = default_epochs(150)

    def run():
        search = JointSearch(layers, objective="latency",
                             constraint_kind="area", platform="iot",
                             seed=0, cost_model=cost_model)
        return search.run(global_epochs=epochs, finetune_generations=0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.best_cost is not None, "MIX found no feasible assignment"

    rows = dataflow_assignment_table(result, layers)
    histogram = style_histogram(rows)
    letters = " ".join(row["letter"] for row in rows)
    pes = [row["pes"] for row in rows]
    bufs = [row["l1_bytes"] for row in rows]

    report = format_table(
        ["metric", "value"],
        [
            ["best latency (cycles)", f"{result.best_cost:.2E}"],
            ["style histogram", str(histogram)],
            ["per-layer styles", letters],
        ],
        title=f"Fig. 8 -- Con'X-MIX per-layer assignment, MobileNet-V2, "
              f"IoT area, Eps={epochs}",
    )
    report += "\n\nPEs per layer:\n" + ascii_bars(
        pes, labels=[str(r["layer"]) for r in rows])
    report += "\n\nBuffer bytes per layer:\n" + ascii_bars(
        bufs, labels=[str(r["layer"]) for r in rows])
    save_report("fig08_mix_assignment", report)

    # Shape checks: all 52 layers assigned; more than one style in play
    # (the paper's MIX strategy mixes styles across layers).
    assert len(rows) == 52
    assert len(histogram) >= 2
