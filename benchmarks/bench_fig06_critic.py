"""Fig. 6: the critic network's learning curve vs dataset size.

Trains standalone critic MLPs to regress per-layer latency of MobileNet-V2
from (state, action) encodings, sweeping the training-set size; the paper's
argument for actor-only REINFORCE is that the test RMSE stays large
relative to the reward scale even at the maximum dataset a critic could
see in an Eps = 5000 run.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import CriticStudy
from repro.core.reporting import format_table
from repro.experiments import default_epochs
from repro.models import get_model

DATASET_SIZES = [1_000, 5_000, 10_000, 20_000]


def test_fig06_critic_learning_curve(benchmark, cost_model, save_report):
    layers = get_model("mobilenet_v2")
    epochs = default_epochs(300)
    study = CriticStudy(layers, dataflow="dla", cost_model=cost_model,
                        seed=0)

    def run():
        return study.run(DATASET_SIZES, epochs=epochs)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    # Reward scale for context: std of per-layer latency over the space.
    _, sample_targets = study.generate_dataset(2000)
    reward_std = float(np.std(sample_targets))

    rows = []
    for size in DATASET_SIZES:
        train, test = result.final_rmse(size)
        rows.append([f"{size:.1E}", f"{train:.3E}", f"{test:.3E}",
                     f"{test / reward_std:.2f}"])
    rows.append(["reward std", f"{reward_std:.3E}", "", ""])
    save_report("fig06_critic", format_table(
        ["dataset size", "train RMSE (cy)", "test RMSE (cy)",
         "test RMSE / reward std"],
        rows,
        title=f"Fig. 6 -- critic regression of per-layer latency "
              f"(MobileNet-V2, {epochs} training epochs)",
    ))

    # Shape check: even the best critic keeps a significant residual
    # relative to the reward spread (the paper's 5.3e4-cycles argument).
    assert result.best_test_rmse() > 0.02 * reward_std
