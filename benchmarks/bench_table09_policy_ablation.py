"""Table IX: policy-network ablation -- MLP vs RNN x action levels L.

MobileNet-V2, NVDLA-style, latency objective, area budgets for the Cloud /
IoT / IoTx tiers; reports the converged value and the constraint
utilization for every (policy, L) cell.
"""

from __future__ import annotations

from repro.core.reporting import format_table
from repro.experiments import TaskSpec, default_epochs
from repro.experiments.runner import compare_methods
from repro.rl import Reinforce

LAYER_SLICE = 12
LEVELS = (10, 12, 14)
PLATFORMS = ("cloud", "iot", "iotx")


def run_cell(cost_model, policy, levels, platform, epochs):
    task = TaskSpec(model="mobilenet_v2", dataflow="dla",
                    platform=platform, num_levels=levels,
                    layer_slice=LAYER_SLICE)
    constraint = task.constraint(cost_model)
    env = task.make_env(cost_model, constraint)
    agent = Reinforce(policy=policy, seed=0)
    result = agent.search(env, epochs)
    used = None
    if env.best is not None:
        used = env.best.used / constraint.budget
    return result, used


def test_table09_policy_ablation(benchmark, cost_model, save_report):
    epochs = default_epochs(120)

    def run():
        table = []
        cells = {}
        for platform in PLATFORMS:
            for policy in ("mlp", "rnn"):
                row = [f"{policy.upper()} {platform}"]
                for levels in LEVELS:
                    result, used = run_cell(cost_model, policy, levels,
                                            platform, epochs)
                    cells[(policy, platform, levels)] = result
                    used_text = f"{100 * used:.1f}%" if used else "-"
                    row.append(f"{result.format_cost()} ({used_text})")
                table.append(row)
        return table, cells

    table, cells = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("table09_policy_ablation", format_table(
        ["policy platform"] + [f"L={l}" for l in LEVELS],
        table,
        title=f"Table IX -- policy-network ablation, MobileNet-V2 "
              f"(first {LAYER_SLICE} layers), value (constraint used), "
              f"Eps={epochs}",
    ))

    # Shape checks: every cell feasible at cloud; the RNN policy wins or
    # ties the MLP on a majority of (platform, L) cells (Table IX's
    # conclusion).
    for levels in LEVELS:
        assert cells[("rnn", "cloud", levels)].feasible
    rnn_wins = 0
    comparisons = 0
    for platform in PLATFORMS:
        for levels in LEVELS:
            rnn = cells[("rnn", platform, levels)]
            mlp = cells[("mlp", platform, levels)]
            if rnn.best_cost is not None and mlp.best_cost is not None:
                comparisons += 1
                if rnn.best_cost <= mlp.best_cost * 1.05:
                    rnn_wins += 1
    assert comparisons > 0
    assert rnn_wins >= comparisons // 2
