"""Fig. 9: overall latency as a function of epochs across the two stages.

MobileNet-V2, latency objective, IoT area budget: the REINFORCE stage
descends from the first valid value, then the GA stage continues the
descent from the global solution (the 7.3E+7 -> 3.2E+7 -> 2.5E+7 shape of
the paper's figure).
"""

from __future__ import annotations

from repro.core.reporting import ascii_bars, format_table
from repro.experiments import default_epochs

LAYER_SLICE = 16


def test_fig09_two_stage_trace(benchmark, run_spec, save_report):
    epochs = default_epochs(200)
    generations = max(30, epochs // 3)

    def run():
        session_result = run_spec(
            model="mobilenet_v2", method="confuciux", objective="latency",
            dataflow="dla", constraint_kind="area", platform="iot",
            budget=epochs, finetune=generations, seed=0,
            layer_slice=LAYER_SLICE)
        return session_result.detail

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.best_cost is not None

    trace = result.trace
    finite = [v for v in trace if v != float("inf")]
    step = max(1, len(finite) // 12)
    sampled = finite[::step][:12]

    report = format_table(
        ["milestone", "latency (cycles)"],
        [
            ["initial valid value", f"{result.initial_valid_cost:.2E}"],
            [f"global search (epoch {epochs})",
             f"{result.global_cost:.2E}"],
            [f"fine-tuned (+{generations} generations)",
             f"{result.best_cost:.2E}"],
        ],
        title=f"Fig. 9 -- two-stage trace, MobileNet-V2 "
              f"(first {LAYER_SLICE} layers), IoT area",
    )
    report += "\n\nBest-so-far latency across both stages:\n" + ascii_bars(
        sampled, labels=[f"t{i * step}" for i in range(len(sampled))])
    save_report("fig09_two_stage_trace", report)

    # Shape checks: monotone descent crossing both stage boundaries.
    assert all(b <= a for a, b in zip(finite, finite[1:]))
    assert result.best_cost <= result.global_cost \
        <= result.initial_valid_cost
