"""Fig. 4: the fine-grained HW design space of three MobileNet-V2 layers.

Sweeps PEs 1..64 and the filter tile (hence the L1 buffer size) for layers
12 and 34 (CONV) and 23 (DWCONV) under the NVDLA-style dataflow, reporting
the latency/energy/area ranges and the spread at fixed area -- the paper's
argument that the space is huge and no design point wins everywhere.

Each per-layer sweep is a single batched estimator evaluation instead of a
scalar call per design point (see PERFORMANCE.md).
"""

from __future__ import annotations

import numpy as np

from repro.core.reporting import format_table
from repro.costmodel.dataflow import NVDLAStyle
from repro.models import get_model

#: The paper's three example layers (0-indexed into the 52-layer list).
LAYER_INDICES = {"layer12_conv": 12, "layer34_conv": 34, "layer23_dwconv": 23}


def sweep_layer(cost_model, layer, max_pes=64, max_tile=64):
    dla = NVDLAStyle()
    pe_values = np.arange(1, max_pes + 1, 3, dtype=np.int64)
    l1_values = np.array(
        [dla.l1_requirement(layer, tile)
         for tile in range(1, max_tile + 1, 3)], dtype=np.int64)
    pes = np.repeat(pe_values, len(l1_values))
    l1_bytes = np.tile(l1_values, len(pe_values))
    batch = cost_model.evaluate_layer_batch(layer, "dla", pes, l1_bytes)
    return list(zip(pes.tolist(), l1_bytes.tolist(),
                    batch.latency_cycles.tolist(),
                    batch.energy_nj.tolist(),
                    batch.area_um2.tolist()))


def test_fig04_design_space(benchmark, cost_model, save_report):
    layers = get_model("mobilenet_v2")

    def run():
        return {
            name: sweep_layer(cost_model, layers[index])
            for name, index in LAYER_INDICES.items()
        }

    sweeps = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, points in sweeps.items():
        lat = np.array([p[2] for p in points])
        energy = np.array([p[3] for p in points])
        area = np.array([p[4] for p in points])
        # Spread of latency among near-equal-area design points.
        median_area = np.median(area)
        band = lat[(area > 0.8 * median_area) & (area < 1.2 * median_area)]
        rows.append([
            name,
            len(points),
            f"{lat.min():.2E}..{lat.max():.2E}",
            f"{energy.min():.2E}..{energy.max():.2E}",
            f"{area.min():.2E}..{area.max():.2E}",
            f"{band.max() / band.min():.1f}x",
        ])
    save_report("fig04_design_space", format_table(
        ["layer", "points", "latency (cy)", "energy (nJ)", "area (um2)",
         "latency spread @ ~equal area"],
        rows,
        title="Fig. 4 -- design-space ranges, MobileNet-V2, NVDLA-style",
    ))

    # Shape checks: wide latency spread at comparable area.
    for name, points in sweeps.items():
        lat = np.array([p[2] for p in points])
        assert lat.max() / lat.min() > 3.0, name
