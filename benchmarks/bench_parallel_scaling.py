"""Perf tracker: parallel speedup of sharded population evaluation.

Takes the ``BENCH_costmodel.json`` workload (20 MobileNet-V2 layers x a
random design-point population) and times one big
``evaluate_population`` batch through every execution backend at 1 / 2 /
4 workers (node-fleet sizes, for the distributed backend), verifying
bit-identical results against the serial kernel.
Writes ``BENCH_parallel.json`` at the repo root::

    {"serial_s": ..., "cpu_count": ...,
     "thread": {"1": ..., "2": ..., "4": ...},
     "process": {"1": ..., "2": ..., "4": ...},
     "distributed": {"1": ..., "2": ..., "4": ...},
     "speedup_process_4": ..., "speedup_distributed_4": ...,
     "break_even": {"sizes": {batch: {"serial_s": ..., "process_s": ...}},
                    "batch": ..., "per_worker": ...,
                    "default_min_batch_per_worker": ...,
                    "per_transport": {"thread": ..., "process": ...,
                                      "distributed": ...}},
     "stealing": {"stealing": {...}, "static": {...},
                  "static_over_stealing_x": ...},
     "hetero": {"static": {...}, "adaptive": {...},
                "hetero_speedup_x": ...},
     "hetero_speedup_x": ...,
     "fault_tolerance": {"crash_free": {...}, "faulted": {...},
                         "recovery_overhead_x": ...}}

The ``break_even`` section measures the adaptive-dispatch crossover:
the smallest batch for which sharding across 2 worker processes beats
the in-process kernel.  ``break_even.batch`` / ``break_even.per_worker``
record the measured crossover, or the explicit sentinel
``"no_crossover"`` when no timed batch size shards profitably (the
1-CPU dev container, for instance) -- never ``null``; the schema is
asserted below so regressions in the recording fail the bench.
``SearchSpec.dispatch_min_batch`` / ``$REPRO_DISPATCH_MIN`` default to
the built-in ``DEFAULT_DISPATCH_MIN_BATCH``; these numbers are how that
constant is re-measured when the kernel or the IPC path changes.

The ``fault_tolerance`` section is the receipt behind PERFORMANCE.md's
"supervision is free when nothing fails" claim: a crash-free session
through the supervised process pool must report **zero** retries,
respawns, and timeouts in its execution provenance (asserted, not just
recorded -- the supervision loop touching the hot path would show up
here first), and a session recovering from an injected worker kill is
timed against it so the recovery overhead stays a number, not folklore.

The ``stealing`` section pits pull-based work stealing against static
round-robin dispatch on a 2-node distributed fleet whose node 0 is
slowed by an injected delay fault: with stealing, the healthy node
drains the slow node's queued shards, so the delay costs one shard
instead of half the batch.  Both numbers are recorded (never asserted
-- a 1-CPU host serializes the fleet anyway) along with the
``stolen_shards`` counters.

The ``hetero`` section measures profile-guided adaptive shard planning
(``SearchSpec.autotune`` / ``$REPRO_AUTOTUNE``): a 4-worker process
pool whose worker 0 is throttled per-row (a persistent straggler)
evaluates the population with static round-robin shards versus
throughput-proportional shards.  ``hetero_speedup_x`` (static time /
adaptive time) is asserted >= 1.2 -- the straggler's sleep dominates
wall clock, so the bar holds even on a 1-CPU host -- and gated against
the baseline by the trend gate.

Process or node sharding only buys wall-clock when there are cores to
shard onto: the acceptance bars (>= 2x at 4 process workers, >= 2x at 4
distributed localhost nodes) are asserted when the machine has >= 4
CPUs and recorded either way, so the perf trajectory stays comparable
across hosts.  The population is larger than the cost
model bench's 512 (sharding has per-batch IPC overhead that the paper's
population sizes would hide in noise) -- the *workload definition*
(model, layers, genome distribution) is identical.
"""

from __future__ import annotations

import gc
import json
import os
import pathlib
import time

import numpy as np

from repro.core.constraints import platform_constraint
from repro.core.evaluator import DesignPointEvaluator
from repro.core.reporting import format_table
from repro.costmodel import CostModel
from repro.env.spaces import ActionSpace
from repro.models import get_model
from repro.parallel import make_backend

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

NUM_LAYERS = 20
POPULATION = 4096
WORKER_COUNTS = (1, 2, 4)
REPEATS = 3
#: Populations timed for the adaptive-dispatch break-even (elements =
#: population x NUM_LAYERS).
BREAK_EVEN_POPULATIONS = (4, 16, 64, 256, 1024)
BREAK_EVEN_WORKERS = 2


def _population(space, num_layers, size, seed):
    rng = np.random.default_rng(seed)
    return [
        [int(g) for g in rng.integers(space.num_levels, size=2 * num_layers)]
        for _ in range(size)
    ]


def _time_population(evaluator, genomes):
    best = float("inf")
    outcomes = None
    for _ in range(REPEATS):
        gc.collect()
        started = time.perf_counter()
        outcomes = evaluator.evaluate_population(genomes)
        best = min(best, time.perf_counter() - started)
    return best, outcomes


def test_parallel_scaling(save_report):
    layers = get_model("mobilenet_v2")[:NUM_LAYERS]
    space = ActionSpace.build("dla")
    constraint = platform_constraint(layers, "dla", "area", "cloud",
                                     CostModel(), space)
    genomes = _population(space, NUM_LAYERS, POPULATION, seed=0)

    def make_evaluator(backend=None):
        model = CostModel()
        model.set_executor(backend)
        return DesignPointEvaluator(layers, "latency", constraint, model,
                                    space, dataflow="dla")

    serial_s, reference = _time_population(make_evaluator(), genomes)

    timings = {"thread": {}, "process": {}, "distributed": {}}
    for executor in ("thread", "process", "distributed"):
        for workers in WORKER_COUNTS:
            with make_backend(executor, workers) as backend:
                evaluator = make_evaluator(backend)
                # Warm-up spawns the pool (or node fleet) and ships the
                # layer table so the measurement sees steady-state
                # generations.
                evaluator.evaluate_population(genomes[:32])
                seconds, outcomes = _time_population(evaluator, genomes)
            timings[executor][str(workers)] = seconds
            for want, got in zip(reference, outcomes):
                assert want.cost == got.cost
                assert want.feasible == got.feasible

    # ---- adaptive-dispatch break-even: small-batch crossover ----------
    break_even_sizes = {}
    break_even_batch = None
    with make_backend("process", BREAK_EVEN_WORKERS) as backend:
        evaluator = make_evaluator(backend)
        evaluator.evaluate_population(genomes[:32])  # warm the pool
        serial_evaluator = make_evaluator()
        for population in BREAK_EVEN_POPULATIONS:
            subset = genomes[:population]
            small_serial_s, _ = _time_population(serial_evaluator, subset)
            process_s, _ = _time_population(evaluator, subset)
            batch_elements = population * NUM_LAYERS
            break_even_sizes[str(batch_elements)] = {
                "serial_s": small_serial_s,
                "process_s": process_s,
            }
            if break_even_batch is None and process_s <= small_serial_s:
                break_even_batch = batch_elements

    # ---- work stealing vs static dispatch under a slow node -----------
    from repro.parallel import DistributedBackend, FaultPlan

    STEAL_DELAY_S = 0.25
    stealing = {}
    for mode, steal in (("stealing", True), ("static", False)):
        # Batch 0 is the warm-up below; the delay fault slows node 0 on
        # the measured batch 1, once.
        plan = FaultPlan(delay_s=((1, 0, STEAL_DELAY_S),))
        backend = DistributedBackend(nodes=2, shards_per_node=4,
                                     steal=steal, fault_plan=plan)
        try:
            evaluator = make_evaluator(backend)
            evaluator.evaluate_population(genomes[:32])
            gc.collect()
            started = time.perf_counter()
            outcomes = evaluator.evaluate_population(genomes)
            stealing[mode] = {
                "seconds": time.perf_counter() - started,
                "stolen_shards": backend.stolen_shards,
                "delay_s": STEAL_DELAY_S,
            }
        finally:
            backend.shutdown()
        for want, got in zip(reference, outcomes):
            assert want.cost == got.cost
            assert want.feasible == got.feasible
    assert stealing["static"]["stolen_shards"] == 0
    stealing["static_over_stealing_x"] = (
        stealing["static"]["seconds"] / stealing["stealing"]["seconds"])

    # ---- heterogeneous fleet: adaptive shard planning vs static -------
    # A 4-worker pool whose worker 0 is throttled (sleeps proportional
    # to every row it is handed) models the heterogeneous fleets the
    # throughput-aware planner exists for: static round-robin keeps
    # handing the straggler a quarter of every batch, while the adaptive
    # plan learns its measured rate from the first batch's timing echoes
    # and shifts rows onto the healthy workers.  Stealing is off on the
    # process pool, so the ratio isolates planning.
    from repro.parallel import TuningState

    HETERO_WORKERS = 4
    HETERO_THROTTLE_S = 3e-5  # per row: ~0.6 s/batch for the straggler
    HETERO_BATCHES = 3
    hetero = {}
    for mode in ("static", "adaptive"):
        tuner = TuningState(plan_shards=True) if mode == "adaptive" \
            else None
        plan = FaultPlan(throttle_s=((0, HETERO_THROTTLE_S),))
        backend = make_backend("process", HETERO_WORKERS,
                               fault_plan=plan, tuner=tuner)
        try:
            evaluator = make_evaluator(backend)
            # Warm-up spawns the pool AND (adaptive) seeds the
            # throughput model with one full-size batch of echoes.
            evaluator.evaluate_population(genomes)
            gc.collect()
            started = time.perf_counter()
            for _ in range(HETERO_BATCHES):
                outcomes = evaluator.evaluate_population(genomes)
            hetero[mode] = {
                "seconds": (time.perf_counter() - started)
                / HETERO_BATCHES,
            }
            if tuner is not None:
                snapshot = tuner.snapshot()
                hetero[mode]["adaptive_plans"] = \
                    snapshot["adaptive_plans"]
                hetero[mode]["rates"] = snapshot["rates"]["process"]
                assert snapshot["adaptive_plans"] >= HETERO_BATCHES
        finally:
            backend.shutdown()
        for want, got in zip(reference, outcomes):
            assert want.cost == got.cost
            assert want.feasible == got.feasible
    hetero["hetero_speedup_x"] = (hetero["static"]["seconds"]
                                  / hetero["adaptive"]["seconds"])
    hetero["throttle_s_per_row"] = HETERO_THROTTLE_S
    hetero["workers"] = HETERO_WORKERS
    # The straggler's sleep dominates both modes' wall clock, so the
    # ratio holds even on a 1-CPU host: this is the bench's perf claim
    # and the trend gate protects it.
    assert hetero["hetero_speedup_x"] >= 1.2, (
        f"adaptive planning should beat static round-robin by >= 1.2x "
        f"with a throttled straggler, got "
        f"{hetero['hetero_speedup_x']:.2f}x")

    # ---- fault tolerance: supervision overhead and recovery cost ------
    from repro.parallel import ParallelCoordinator
    from repro.search import SearchSession, SearchSpec

    def _timed_session(fault_plan=None):
        spec = SearchSpec(model="mobilenet_v2", method="ga", budget=40,
                          seed=5, layer_slice=NUM_LAYERS,
                          executor="process", workers=2,
                          dispatch_min_batch=0)
        coordinator = ParallelCoordinator("process", workers=2,
                                          fault_plan=fault_plan,
                                          degrade=False)
        started = time.perf_counter()
        outcome = SearchSession(spec).run(callbacks=[coordinator])
        seconds = time.perf_counter() - started
        execution = outcome.provenance["execution"]
        return seconds, outcome.best_cost, execution

    # The explicit empty plan pins a fault-free pool even when the
    # environment carries a $REPRO_FAULTS chaos plan.
    crash_free_s, crash_free_cost, crash_free_exec = _timed_session(
        FaultPlan())
    faulted_s, faulted_cost, faulted_exec = _timed_session(
        FaultPlan(kill_worker=[(0, 0)]))

    # Supervision must be invisible when nothing fails: the poll loop
    # and retry accounting may not touch the crash-free hot path.
    assert crash_free_exec["retries"] == 0
    assert crash_free_exec["respawns"] == 0
    assert crash_free_exec["timeouts"] == 0
    # Recovery must be invisible in the *results*: one killed worker
    # later, the session still lands on the identical best cost.
    assert faulted_cost == crash_free_cost
    assert faulted_exec["respawns"] == 1

    fault_tolerance = {
        "crash_free": {"seconds": crash_free_s, **crash_free_exec},
        "faulted": {"seconds": faulted_s, **faulted_exec},
        "recovery_overhead_x": faulted_s / crash_free_s,
    }

    from repro.parallel import DEFAULT_DISPATCH_MIN_BATCH, TRANSPORT_MIN_BATCH

    cpu_count = os.cpu_count() or 1
    speedup_process_4 = serial_s / timings["process"]["4"]
    speedup_distributed_4 = serial_s / timings["distributed"]["4"]
    rows = [["serial", "-", f"{serial_s * 1e3:.2f} ms", "1.00x"]]
    for executor in ("thread", "process", "distributed"):
        for workers in WORKER_COUNTS:
            seconds = timings[executor][str(workers)]
            rows.append([executor, str(workers), f"{seconds * 1e3:.2f} ms",
                         f"{serial_s / seconds:.2f}x"])
    # The measured crossover, or an explicit sentinel when sharding never
    # won -- the JSON must always say which, not degrade to null.
    NO_CROSSOVER = "no_crossover"
    if break_even_batch is None:
        break_even_batch = break_even_per_worker = NO_CROSSOVER
    else:
        break_even_per_worker = break_even_batch // BREAK_EVEN_WORKERS
    break_even_rows = [
        [batch, f"{record['serial_s'] * 1e3:.3f} ms",
         f"{record['process_s'] * 1e3:.3f} ms",
         "process" if record["process_s"] <= record["serial_s"]
         else "in-process"]
        for batch, record in break_even_sizes.items()
    ]
    save_report("bench_parallel_scaling", format_table(
        ["backend", "workers", "batch time", "speedup"], rows,
        title=f"population {POPULATION} x {NUM_LAYERS} layers on "
              f"{cpu_count} CPU(s), bit-identical across backends")
        + "\n\n" + format_table(
        ["batch elements", "in-process", f"process x"
         f"{BREAK_EVEN_WORKERS}", "winner"], break_even_rows,
        title=f"adaptive-dispatch break-even (measured crossover: "
              f"{break_even_batch}, shipped default: "
              f"{DEFAULT_DISPATCH_MIN_BATCH}/worker)")
        + "\n\n" + format_table(
        ["dispatch", "batch time", "stolen shards"],
        [["stealing", f"{stealing['stealing']['seconds'] * 1e3:.2f} ms",
          str(stealing["stealing"]["stolen_shards"])],
         ["static", f"{stealing['static']['seconds'] * 1e3:.2f} ms",
          str(stealing["static"]["stolen_shards"])]],
        title=f"2-node fleet, node 0 delayed {STEAL_DELAY_S}s (static "
              f"is {stealing['static_over_stealing_x']:.2f}x the "
              f"stealing time)")
        + "\n\n" + format_table(
        ["planning", "batch time"],
        [["static round-robin",
          f"{hetero['static']['seconds'] * 1e3:.2f} ms"],
         ["adaptive (throughput-aware)",
          f"{hetero['adaptive']['seconds'] * 1e3:.2f} ms"]],
        title=f"{HETERO_WORKERS}-worker pool, worker 0 throttled "
              f"{HETERO_THROTTLE_S * 1e6:.0f} us/row (adaptive is "
              f"{hetero['hetero_speedup_x']:.2f}x faster)")
        + "\n\n" + format_table(
        ["run", "session time", "retries", "respawns"],
        [["crash-free", f"{crash_free_s:.3f} s",
          str(crash_free_exec["retries"]),
          str(crash_free_exec["respawns"])],
         ["1 worker killed", f"{faulted_s:.3f} s",
          str(faulted_exec["retries"]),
          str(faulted_exec["respawns"])]],
        title=f"fault tolerance (recovery overhead "
              f"{faulted_s / crash_free_s:.2f}x, identical best cost)"))

    payload = {
        "serial_s": serial_s,
        "cpu_count": cpu_count,
        "population": POPULATION,
        "num_layers": NUM_LAYERS,
        **timings,
        "speedup_process_4": speedup_process_4,
        "speedup_distributed_4": speedup_distributed_4,
        "break_even": {
            "sizes": break_even_sizes,
            "batch": break_even_batch,
            "per_worker": break_even_per_worker,
            "default_min_batch_per_worker": DEFAULT_DISPATCH_MIN_BATCH,
            "per_transport": dict(TRANSPORT_MIN_BATCH),
        },
        "stealing": stealing,
        "hetero": hetero,
        "hetero_speedup_x": hetero["hetero_speedup_x"],
        "fault_tolerance": fault_tolerance,
    }

    # Schema: the crossover fields are an int batch size or the explicit
    # sentinel, in lockstep -- a null here means the recording regressed.
    break_even = payload["break_even"]
    assert set(break_even["sizes"]) \
        == {str(p * NUM_LAYERS) for p in BREAK_EVEN_POPULATIONS}
    for record in break_even["sizes"].values():
        assert isinstance(record["serial_s"], float)
        assert isinstance(record["process_s"], float)
    if break_even["batch"] == NO_CROSSOVER:
        assert break_even["per_worker"] == NO_CROSSOVER
    else:
        assert isinstance(break_even["batch"], int)
        assert break_even["per_worker"] \
            == break_even["batch"] // BREAK_EVEN_WORKERS
    assert isinstance(break_even["default_min_batch_per_worker"], int)
    assert set(break_even["per_transport"]) >= {"thread", "process",
                                                "distributed"}
    assert all(isinstance(v, int)
               for v in break_even["per_transport"].values())

    (REPO_ROOT / "BENCH_parallel.json").write_text(
        json.dumps(payload, indent=2) + "\n")

    # The scaling bars only mean something with cores to scale onto.
    if cpu_count >= 4:
        assert speedup_process_4 >= 2.0, (
            f"expected >= 2x at 4 workers on {cpu_count} CPUs, got "
            f"{speedup_process_4:.2f}x")
        assert speedup_distributed_4 >= 2.0, (
            f"expected >= 2x at 4 distributed localhost nodes on "
            f"{cpu_count} CPUs, got {speedup_distributed_4:.2f}x")
