"""Fig. 5: per-layer action-pair contours and the LS heuristic comparison.

Regenerates (a) the exhaustive 12x12 latency/energy grids for the paper's
three example layers, (b) the per-layer optima showing no pair suits every
layer, and (c) the end-to-end LS comparison of Heuristic A (size for the
most compute-intensive layer) vs Heuristic B (best uniform end-to-end) vs
the per-layer optimal lower bound.

Every contour grid and the exhaustive uniform sweep behind Heuristic B are
single batched estimator evaluations (see PERFORMANCE.md) -- the numbers
are bit-identical to the old per-pair scalar loops.
"""

from __future__ import annotations

import numpy as np

from repro.core.reporting import format_table
from repro.env.spaces import ActionSpace
from repro.experiments import ls_study
from repro.models import get_model

def paper_layer_indices(layers):
    """The paper's three example layers: two CONV-family layers around
    positions 12 and 34, and the DWCONV nearest position 23 (layer
    numbering differs slightly between our zoo and the paper's listing)."""
    from repro.models.layers import LayerType

    dw_indices = [i for i, l in enumerate(layers)
                  if l.layer_type is LayerType.DWCONV]
    dw_near_23 = min(dw_indices, key=lambda i: abs(i - 23))
    return {"layer12": 12, "layer34": 34, f"layer{dw_near_23}_dw":
            dw_near_23}


def test_fig05_per_layer_ls(benchmark, cost_model, save_report):
    layers = get_model("mobilenet_v2")
    space = ActionSpace.build("dla")
    layer_indices = paper_layer_indices(layers)

    def run():
        contours = {}
        for objective in ("latency", "energy"):
            for name, index in layer_indices.items():
                contours[(objective, name)] = ls_study.layer_contour(
                    layers[index], "dla", objective, cost_model, space)
        optima = ls_study.per_layer_optima(layers, "dla", "latency",
                                           cost_model, space)
        h_a = ls_study.heuristic_a(layers, "dla", "latency", cost_model,
                                   space)
        h_b = ls_study.heuristic_b(layers, "dla", "latency", cost_model,
                                   space)
        return contours, optima, h_a, h_b

    contours, optima, h_a, h_b = benchmark.pedantic(run, rounds=1,
                                                    iterations=1)

    rows = []
    for (objective, name), grid in contours.items():
        pe_idx, buf_idx, value = ls_study.best_action_pair(grid)
        rows.append([
            f"{name} ({objective})",
            f"(p{pe_idx + 1}, b{buf_idx + 1})",
            f"{value:.2E}",
            f"{grid.max() / grid.min():.1f}x",
            f"{ls_study.plateau_fraction(grid):.2f}",
        ])
    distinct_pairs = {(p, b) for p, b, _ in optima}
    summary = [
        ["distinct optimal pairs over 52 layers", len(distinct_pairs), "",
         "", ""],
        ["Heuristic A end-to-end latency", f"{h_a.end_to_end_cost:.2E}",
         f"(PE={h_a.pes}, Buf={h_a.l1_bytes})", "", ""],
        ["Heuristic B end-to-end latency", f"{h_b.end_to_end_cost:.2E}",
         f"(PE={h_b.pes}, Buf={h_b.l1_bytes})", "", ""],
    ]
    save_report("fig05_per_layer_ls", format_table(
        ["cell", "best pair", "best value", "range", "plateau frac"],
        rows + summary,
        title="Fig. 5 -- per-layer contours and LS heuristics "
              "(MobileNet-V2, NVDLA-style)",
    ))

    # Shape checks: many distinct optima; DWCONV latency flat in buffers.
    assert len(distinct_pairs) > 1
    dw_name = next(n for n in layer_indices if n.endswith("_dw"))
    dw_grid = contours[("latency", dw_name)]
    assert ls_study.plateau_fraction(dw_grid) > 0.9
    assert h_b.end_to_end_cost <= h_a.end_to_end_cost
