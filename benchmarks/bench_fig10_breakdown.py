"""Fig. 10: solution analysis -- area breakdown and per-layer assignment.

Runs ConfuciuX on MobileNet-V2 and ResNet-50 (latency, IoT area budget)
and reports the PE / L1 / L2 / NoC area split plus the per-layer PE and
buffer bars, checking the paper's qualitative observations: heterogeneous
per-layer assignments, and DWCONV layers receiving fewer resources.
"""

from __future__ import annotations

import numpy as np

from repro.core.reporting import (
    area_breakdown_fractions,
    ascii_bars,
    format_table,
    per_layer_assignment,
    solution_report,
)
from repro.experiments import default_epochs
from repro.models import get_model
from repro.models.layers import LayerType
from repro.search import SearchSession, SearchSpec

LAYER_SLICE = 20


def test_fig10_breakdown(benchmark, cost_model, save_report):
    epochs = default_epochs(200)

    def run():
        out = {}
        for model in ("mobilenet_v2", "resnet50"):
            layers = get_model(model)[:LAYER_SLICE]
            spec = SearchSpec(model=model, method="confuciux",
                              objective="latency", dataflow="dla",
                              constraint_kind="area", platform="iot",
                              seed=0, budget=epochs,
                              finetune=epochs // 4,
                              layer_slice=LAYER_SLICE)
            result = SearchSession(spec, cost_model=cost_model).run()
            out[model] = (layers, result)
        return out

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)

    sections = []
    for model, (layers, result) in outcomes.items():
        assert result.best_cost is not None, model
        report = solution_report(layers, result.best_assignments,
                                 cost_model, dataflow="dla")
        fractions = area_breakdown_fractions(report)
        pes, bufs = per_layer_assignment(result.best_assignments)
        labels = [f"{i + 1}:{layer.layer_type.name[:2]}"
                  for i, layer in enumerate(layers)]
        sections.append(format_table(
            ["component", "area fraction"],
            [[k, f"{100 * v:.1f}%"] for k, v in fractions.items()],
            title=f"\nFig. 10 ({model}) -- area breakdown "
                  f"(latency {result.best_cost:.2E} cy)",
        ))
        sections.append("PEs per layer:\n" + ascii_bars(pes, labels=labels))
        sections.append("Buffer bytes per layer:\n"
                        + ascii_bars(bufs, labels=labels))
    save_report("fig10_breakdown", "\n\n".join(sections))

    # Shape checks.
    for model, (layers, result) in outcomes.items():
        pes, bufs = per_layer_assignment(result.best_assignments)
        # Heterogeneous assignment: not all layers get the same resources.
        assert len(set(pes)) > 1 or len(set(bufs)) > 1
    # MobileNet: DWCONV layers get no more PEs than the CONV average
    # (the paper: "DWCONV layers are assigned less resources").
    layers, result = outcomes["mobilenet_v2"]
    pes, _ = per_layer_assignment(result.best_assignments)
    dw = [p for p, l in zip(pes, layers)
          if l.layer_type is LayerType.DWCONV]
    conv = [p for p, l in zip(pes, layers)
            if l.layer_type is not LayerType.DWCONV]
    assert np.mean(dw) <= np.mean(conv) * 1.5
