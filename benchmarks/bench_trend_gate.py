"""Trend gate: fail the bench job when perf artifacts regress.

Compares freshly generated ``BENCH_*.json`` files at the repo root
against a baseline snapshot (the committed artifacts, captured before
the benches overwrite them) and exits non-zero when any **dimensionless**
metric regresses by more than the tolerance (default 20%).

Only ratios are gated -- speedups, recovery overhead -- never absolute
seconds: CI runners and dev machines differ wildly in clock speed, but a
"batched kernel is 11x faster than scalar" claim should survive any
host.  Higher is better for every gated metric except those listed in
``LOWER_IS_BETTER``.

Usage (mirrors the CI bench job)::

    cp BENCH_*.json /tmp/bench-baseline/       # before the benches
    PYTHONPATH=src python -m pytest benchmarks/bench_*.py ...
    python benchmarks/bench_trend_gate.py --baseline /tmp/bench-baseline

A metric missing from the baseline (first run after adding it) is
reported and skipped; a metric missing from the *fresh* artifact fails
the gate -- the recording regressed, which is exactly what this script
exists to catch.  A metric present on either side but holding a
**non-numeric sentinel** (``break_even.batch = "no_crossover"`` when a
transport never beats serial on a host, for example) is explicitly
``skipped`` and logged, never silently ignored and never a failure:
sentinels are legitimate recordings, not missing data.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

#: (file, dotted path) -> dimensionless metric to gate.  Extend this
#: list when a bench starts recording a new ratio worth protecting.
GATED_METRICS = [
    ("BENCH_costmodel.json", "speedup"),
    ("BENCH_costmodel.json", "fused_speedup_x"),
    ("BENCH_costmodel.json", "mix_speedup_x"),
    ("BENCH_rl.json", "speedup_envs_8"),
    ("BENCH_parallel.json", "speedup_process_4"),
    ("BENCH_parallel.json", "speedup_distributed_4"),
    ("BENCH_parallel.json", "break_even.batch"),
    # Adaptive shard planning vs static round-robin with a throttled
    # straggler; higher is better, so NOT in LOWER_IS_BETTER.
    ("BENCH_parallel.json", "hetero_speedup_x"),
    ("BENCH_parallel.json", "fault_tolerance.recovery_overhead_x"),
    ("BENCH_service.json", "submit_overhead_x"),
]

#: Dotted paths where a larger fresh value is the regression.
LOWER_IS_BETTER = {"fault_tolerance.recovery_overhead_x",
                   "submit_overhead_x",
                   "break_even.batch"}

DEFAULT_TOLERANCE = 0.20

def _lookup(document: dict, dotted: str):
    """The raw value at ``dotted`` or ``None`` when the path is absent.
    Non-numeric sentinels (``"no_crossover"``) are returned verbatim so
    the gate can log them as skipped instead of silently ignoring
    them."""
    node = document
    for key in dotted.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def _is_number(value) -> bool:
    # bool is an int subclass but is never a perf ratio.
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def check_trends(fresh_dir: pathlib.Path, baseline_dir: pathlib.Path,
                 tolerance: float = DEFAULT_TOLERANCE) -> list:
    """Return a list of (metric, baseline, fresh, verdict) rows;
    verdict is one of ``ok`` / ``REGRESSED`` / ``new-metric`` /
    ``MISSING`` / ``skipped`` (a non-numeric sentinel on either
    side -- logged, never a failure)."""
    rows = []
    cache = {}

    def load(root, name):
        key = (root, name)
        if key not in cache:
            path = root / name
            cache[key] = (json.loads(path.read_text())
                          if path.exists() else None)
        return cache[key]

    for filename, dotted in GATED_METRICS:
        label = f"{filename}:{dotted}"
        fresh_doc = load(fresh_dir, filename)
        base_doc = load(baseline_dir, filename)
        fresh = _lookup(fresh_doc, dotted) if fresh_doc else None
        base = _lookup(base_doc, dotted) if base_doc else None
        if fresh is None:
            rows.append((label, base, fresh, "MISSING"))
        elif not _is_number(fresh) or (base is not None
                                       and not _is_number(base)):
            # A sentinel recording (e.g. "no_crossover") on either side
            # means the ratio is not comparable on this host: skip it
            # explicitly rather than treating it as missing or ok.
            rows.append((label, base, fresh, "skipped"))
        elif base is None:
            rows.append((label, base, fresh, "new-metric"))
        elif dotted in LOWER_IS_BETTER:
            limit = base * (1.0 + tolerance)
            rows.append((label, base, fresh,
                         "ok" if fresh <= limit else "REGRESSED"))
        else:
            limit = base * (1.0 - tolerance)
            rows.append((label, base, fresh,
                         "ok" if fresh >= limit else "REGRESSED"))
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate BENCH_*.json dimensionless metrics against a "
                    "baseline snapshot.")
    parser.add_argument("--baseline", required=True, type=pathlib.Path,
                        help="directory holding the baseline BENCH_*.json "
                             "(the committed artifacts)")
    parser.add_argument("--fresh", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parents[1],
                        help="directory holding the fresh artifacts "
                             "(default: repo root)")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="allowed fractional regression "
                             "(default: 0.20)")
    args = parser.parse_args(argv)

    rows = check_trends(args.fresh, args.baseline, args.tolerance)
    width = max(len(label) for label, *_ in rows)
    failed = False
    def fmt(value) -> str:
        if value is None:
            return "-"
        return f"{value:.3f}" if _is_number(value) else str(value)

    for label, base, fresh, verdict in rows:
        base_s = fmt(base)
        fresh_s = fmt(fresh)
        print(f"{label:<{width}}  baseline={base_s:>8}  "
              f"fresh={fresh_s:>8}  {verdict}")
        failed |= verdict in ("REGRESSED", "MISSING")
    if failed:
        print(f"\ntrend gate FAILED (tolerance "
              f"{args.tolerance:.0%}) -- a gated metric regressed or "
              f"went missing", file=sys.stderr)
        return 1
    print(f"\ntrend gate passed (tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
