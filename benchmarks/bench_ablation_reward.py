"""Ablation: the reward-shaping and penalty design choices of Section III-E.

The paper motivates two design decisions without a dedicated table:

* shaping rewards as ``P_t - P_min`` ("the P_min term stabilizes the
  training ... makes the reward always positive"), and
* penalizing violations with the negated *accumulated* episode reward
  rather than a threshold-based constant ("a threshold-based constant
  penalty ... is not feasible" because reward scales differ by orders of
  magnitude).

This bench ablates both knobs on the same task and also sweeps the
discount factor around the paper's d = 0.9 default, asserting that the
paper's configuration is never beaten decisively.
"""

from __future__ import annotations

from repro.core.reporting import format_table
from repro.experiments import TaskSpec, default_epochs
from repro.rl import Reinforce

LAYER_SLICE = 12
SEEDS = (0, 1, 2)


def run_variant(cost_model, epochs, seed, reward_shaping="pmin",
                penalty_mode="accumulated", discount=0.9):
    task = TaskSpec(model="mobilenet_v2", dataflow="dla", platform="iot",
                    layer_slice=LAYER_SLICE)
    constraint = task.constraint(cost_model)
    from repro.env.environment import HWAssignmentEnv

    env = HWAssignmentEnv(
        task.layers(), task.space(), task.objective, constraint,
        cost_model, dataflow="dla", reward_shaping=reward_shaping,
        penalty_mode=penalty_mode)
    agent = Reinforce(seed=seed, discount=discount)
    return agent.search(env, epochs)


def median_cost(results):
    feasible = sorted(r.best_cost for r in results
                      if r.best_cost is not None)
    if not feasible:
        return None
    return feasible[len(feasible) // 2]


def test_ablation_reward_design(benchmark, cost_model, save_report):
    epochs = default_epochs(120)

    def run():
        variants = {
            "paper (pmin + accumulated, d=0.9)": dict(),
            "raw reward (no P_min)": dict(reward_shaping="raw"),
            "constant penalty": dict(penalty_mode="constant"),
            "discount d=0.5": dict(discount=0.5),
            "discount d=0.99": dict(discount=0.99),
        }
        out = {}
        for name, kwargs in variants.items():
            out[name] = [run_variant(cost_model, epochs, seed, **kwargs)
                         for seed in SEEDS]
        return out

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, results in outcomes.items():
        feasible = sum(1 for r in results if r.best_cost is not None)
        median = median_cost(results)
        rows.append([
            name,
            f"{feasible}/{len(results)}",
            f"{median:.2E}" if median is not None else "NAN",
        ])
    save_report("ablation_reward", format_table(
        ["variant", "feasible seeds", "median best latency (cy)"],
        rows,
        title=f"Ablation -- reward shaping / penalty / discount "
              f"(MobileNet-V2 first {LAYER_SLICE} layers, IoT area, "
              f"Eps={epochs}, {len(SEEDS)} seeds)",
    ))

    # The paper's configuration must find feasible points on every seed
    # and not be decisively beaten by any ablated variant.
    paper = outcomes["paper (pmin + accumulated, d=0.9)"]
    assert all(r.best_cost is not None for r in paper)
    paper_median = median_cost(paper)
    for name, results in outcomes.items():
        other = median_cost(results)
        if other is not None:
            assert paper_median <= other * 2.0, name
