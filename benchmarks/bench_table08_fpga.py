"""Table VIII: LP deployment at compile time (FPGA resource constraints).

Cloud FPGA (4096 PEs, 8 KB aggregate L1) and Edge FPGA (256 PEs, 4 KB)
caps; baseline-dla is the best uniform assignment under the cap, compared
against ConfuciuX-dla and ConfuciuX-MIX after both stages.
"""

from __future__ import annotations

from repro.core.constraints import ResourceConstraint
from repro.core.reporting import format_table
from repro.experiments import default_epochs
from repro.models import get_model
from repro.search import SearchSession, SearchSpec

LAYER_SLICE = 12

PLATFORMS = {
    # Aggregate L1 caps scaled to the sliced models (the paper's 8KB/4KB
    # apply to full models on real FPGAs; the ratio cloud:edge is kept).
    "cloud_fpga": ResourceConstraint(max_pes=4096, max_l1_bytes=65536,
                                     platform="cloud_fpga"),
    "edge_fpga": ResourceConstraint(max_pes=256, max_l1_bytes=16384,
                                    platform="edge_fpga"),
}
MODELS = ("resnet50", "mobilenet_v2")


def uniform_baseline(cost_model, layers, constraint):
    """Baseline-dla as in the paper: the *maximal* uniform (PE, Buf)
    configuration fitting the caps (Table VIII's baseline nearly saturates
    its budget, e.g. 4081 of 4096 PEs)."""
    from repro.env.spaces import ActionSpace

    space = ActionSpace.build("dla")
    feasible = None
    for pes in space.pe_levels:
        for l1_bytes in space.buf_levels:
            if pes * len(layers) > constraint.max_pes:
                continue
            if pes * l1_bytes * len(layers) > constraint.max_l1_bytes:
                continue
            if (feasible is None or pes > feasible[0]
                    or (pes == feasible[0] and l1_bytes > feasible[1])):
                feasible = (pes, l1_bytes)
    if feasible is None:
        return None
    pes, l1_bytes = feasible
    report = cost_model.evaluate_model(
        layers, [(pes, l1_bytes)] * len(layers), dataflow="dla")
    return (report.latency_cycles, pes, l1_bytes)


def run_confuciux(cost_model, model, constraint, epochs, mix):
    """Two stages through the session API; the session detail is the
    classic ConfuciuXResult the table reads its stage costs from."""
    spec = SearchSpec(model=model, method="confuciux",
                      objective="latency", dataflow="dla", mix=mix,
                      constraint_kind="resource",
                      max_total_pes=constraint.max_pes,
                      max_total_l1=constraint.max_l1_bytes,
                      seed=0, budget=epochs, finetune=epochs // 4,
                      layer_slice=LAYER_SLICE)
    return SearchSession(spec, cost_model=cost_model).run().detail


def test_table08_fpga(benchmark, cost_model, save_report):
    epochs = default_epochs(400)

    def run():
        table = []
        outcomes = []
        for platform, constraint in PLATFORMS.items():
            for model in MODELS:
                layers = get_model(model)[:LAYER_SLICE]
                baseline = uniform_baseline(cost_model, layers, constraint)
                dla = run_confuciux(cost_model, model, constraint, epochs,
                                    mix=False)
                mix = run_confuciux(cost_model, model, constraint, epochs,
                                    mix=True)
                table.append([
                    f"{platform} {model}",
                    f"{baseline[0]:.2E}" if baseline else "NAN",
                    f"{dla.global_cost:.2E}" if dla.global_cost else "NAN",
                    f"{dla.best_cost:.2E}" if dla.best_cost else "NAN",
                    f"{mix.global_cost:.2E}" if mix.global_cost else "NAN",
                    f"{mix.best_cost:.2E}" if mix.best_cost else "NAN",
                ])
                outcomes.append((baseline, dla, mix))
        return table, outcomes

    table, outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("table08_fpga", format_table(
        ["platform model", "baseline-dla", "Con'X-dla global",
         "Con'X-dla tuned", "Con'X-MIX global", "Con'X-MIX tuned"],
        table,
        title=f"Table VIII -- LP at compile time (FPGA caps), latency "
              f"(cycles), Eps={epochs}, first {LAYER_SLICE} layers",
    ))

    # Shape checks: fine-tuning never regresses, and tuned ConfuciuX-dla
    # stays within reach of the saturated uniform baseline even at the
    # scaled-down default budget (parity/wins need REPRO_EPOCHS >= 800;
    # see the epoch-scaling note in EXPERIMENTS.md).
    for baseline, dla, mix in outcomes:
        assert dla.best_cost is not None
        assert dla.best_cost <= dla.global_cost
        if mix.best_cost is not None:
            assert mix.best_cost <= mix.global_cost
        if baseline is not None:
            assert dla.best_cost <= baseline[0] * 2.5
