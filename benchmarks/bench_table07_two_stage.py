"""Table VII: the benefit of two-stage optimization.

Six rows; for each, reports the first valid value found by the global
stage, the converged global value with its improvement, and the fine-tuned
value with its further improvement -- the paper's 56..99% / 7..93% split.
"""

from __future__ import annotations

from repro.core.reporting import format_table
from repro.experiments import default_epochs

LAYER_SLICE = 12

ROWS = [
    ("mobilenet_v2", "iot"),
    ("mnasnet", "iot"),
    ("resnet50", "cloud"),
    ("resnet50", "iot"),
    ("gnmt", "iot"),
    ("ncf", "iot"),
]


def test_table07_two_stage(benchmark, run_spec, save_report):
    epochs = default_epochs(150)
    generations = max(20, epochs // 3)

    def run():
        out = []
        for model, platform in ROWS:
            session_result = run_spec(
                model=model, method="confuciux", objective="latency",
                dataflow="dla", constraint_kind="area", platform=platform,
                budget=epochs, finetune=generations, seed=0,
                layer_slice=LAYER_SLICE)
            out.append(((model, platform), session_result.detail))
        return out

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)

    table = []
    for (model, platform), result in outcomes:
        impr1, impr2 = result.improvement_fractions()
        table.append([
            f"{model}-dla {platform}",
            f"{result.initial_valid_cost:.2E}"
            if result.initial_valid_cost else "NAN",
            f"{result.global_cost:.2E}" if result.global_cost else "NAN",
            f"{100 * impr1:.1f}%" if impr1 is not None else "-",
            f"{result.best_cost:.2E}" if result.best_cost else "NAN",
            f"{100 * impr2:.1f}%" if impr2 is not None else "-",
        ])
    save_report("table07_two_stage", format_table(
        ["task", "initial valid (cy)", "global (cy)", "impr.",
         "fine-tuned (cy)", "impr."],
        table,
        title=f"Table VII -- two-stage optimization, Eps={epochs} + "
              f"{generations} GA generations, first {LAYER_SLICE} layers",
    ))

    # Shape checks: stage 1 improves on the first valid point; stage 2
    # never regresses and usually improves further.
    improved = 0
    for _, result in outcomes:
        assert result.best_cost is not None
        assert result.global_cost <= result.initial_valid_cost
        assert result.best_cost <= result.global_cost
        impr1, impr2 = result.improvement_fractions()
        if impr2 and impr2 > 0:
            improved += 1
    assert improved >= len(outcomes) // 2
