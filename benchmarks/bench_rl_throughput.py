"""Perf tracker: lockstep episode waves vs scalar RL stepping.

Times the episodic-RL hot path -- rolling whole training epochs through
the HW-assignment environment -- on the ``BENCH_costmodel.json`` workload
(the first 20 MobileNet-V2 layers) for the scalar one-step-at-a-time loop
and for lockstep waves at ``envs`` in {2, 4, 8}
(:class:`~repro.env.vector.VectorHWAssignmentEnv`: one batched cost call
and one batched policy forward per wave).  Writes ``BENCH_rl.json`` at
the repo root::

    {"method": ..., "episodes": ..., "num_layers": ...,
     "scalar_s": ..., "scalar_eps_per_s": ...,
     "envs": {"2": {"seconds": ..., "eps_per_s": ..., "speedup": ...},
              "4": ..., "8": ...},
     "speedup_envs_8": ...}

The speedup is pure kernel/forward vectorization -- no IPC, no extra
processes -- so it holds on a single CPU (like the cost-model bench);
the acceptance bar is >= 3x epoch throughput at ``envs=8``.  A one-env
wave run is also checked against the scalar loop for identical results
(the full bit-parity matrix lives in tests/test_rl_vector_parity.py).

Lockstep waves change *which* episodes are sampled for ``envs > 1``
(reproducibly per seed -- see the RNG contract in API.md), so this bench
compares throughput, not search quality.
"""

from __future__ import annotations

import gc
import json
import pathlib
import time

from repro.core.constraints import platform_constraint
from repro.core.reporting import format_table
from repro.costmodel import CostModel
from repro.env.spaces import ActionSpace
from repro.env.vector import VectorHWAssignmentEnv
from repro.models import get_model
from repro.search.registry import get_method

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

NUM_LAYERS = 20
EPISODES = 48
ENV_COUNTS = (2, 4, 8)
METHOD = "a2c"
SEED = 0
#: Repetitions per configuration; the minimum is reported.
REPEATS = 3


def _run_once(info, layers, space, constraint, envs):
    """One full training run (fresh agent, fresh env); returns
    (seconds, SearchResult)."""
    method = info.factory(seed=SEED)
    cost_model = CostModel()
    env = VectorHWAssignmentEnv(
        _make_env(layers, space, constraint, cost_model), envs) \
        if envs else _make_env(layers, space, constraint, cost_model)
    gc.collect()
    started = time.perf_counter()
    result = method.search(env, EPISODES)
    return time.perf_counter() - started, result


def _make_env(layers, space, constraint, cost_model):
    from repro.env.environment import HWAssignmentEnv

    return HWAssignmentEnv(layers, space, "latency", constraint, cost_model,
                           dataflow="dla")


def _time(info, layers, space, constraint, envs):
    best_s, result = float("inf"), None
    for _ in range(REPEATS):
        seconds, result = _run_once(info, layers, space, constraint, envs)
        best_s = min(best_s, seconds)
    return best_s, result


def test_rl_throughput(save_report):
    layers = get_model("mobilenet_v2")[:NUM_LAYERS]
    space = ActionSpace.build("dla")
    constraint = platform_constraint(layers, "dla", "area", "cloud",
                                     CostModel(), space)
    info = get_method(METHOD)

    scalar_s, scalar_result = _time(info, layers, space, constraint, None)

    # One-env waves must reproduce the scalar run exactly.
    _, one_env_result = _run_once(info, layers, space, constraint, 1)
    assert one_env_result.best_cost == scalar_result.best_cost
    assert one_env_result.history == scalar_result.history
    assert one_env_result.evaluations == scalar_result.evaluations

    timings = {}
    for envs in ENV_COUNTS:
        seconds, result = _time(info, layers, space, constraint, envs)
        assert result.episodes == EPISODES
        timings[str(envs)] = {
            "seconds": seconds,
            "eps_per_s": EPISODES / seconds,
            "speedup": scalar_s / seconds,
        }

    speedup_envs_8 = timings["8"]["speedup"]
    rows = [["scalar", f"{scalar_s * 1e3:.1f} ms",
             f"{EPISODES / scalar_s:.0f}", "1.00x"]]
    for envs in ENV_COUNTS:
        record = timings[str(envs)]
        rows.append([f"envs={envs}", f"{record['seconds'] * 1e3:.1f} ms",
                     f"{record['eps_per_s']:.0f}",
                     f"{record['speedup']:.2f}x"])
    save_report("rl_throughput", format_table(
        ["stepping", "wall time", "epochs/s", "speedup"], rows,
        title=f"{METHOD} x {EPISODES} epochs on {NUM_LAYERS} MobileNet-V2 "
              f"layers (one batched cost call per wave; envs=1 "
              f"bit-identical to scalar)"))

    payload = {
        "method": METHOD,
        "episodes": EPISODES,
        "num_layers": NUM_LAYERS,
        "scalar_s": scalar_s,
        "scalar_eps_per_s": EPISODES / scalar_s,
        "envs": timings,
        "speedup_envs_8": speedup_envs_8,
    }
    (REPO_ROOT / "BENCH_rl.json").write_text(
        json.dumps(payload, indent=2) + "\n")

    # Kernel vectorization, not parallelism: the bar holds on any host.
    assert speedup_envs_8 >= 3.0, (
        f"expected >= 3x epoch throughput at envs=8, got "
        f"{speedup_envs_8:.2f}x")
