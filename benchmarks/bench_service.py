"""Perf tracker: what the service layer costs on top of a session run.

Times three things against one small search workload:

* **Submit overhead** -- a cache-miss submission through
  :class:`~repro.service.SearchServer` (job object, scheduler hop,
  store write) vs calling :class:`~repro.search.session.SearchSession`
  directly.  This is the service tax on a run that actually executes;
  it must stay a small constant factor (gated, lower is better).
* **Cache-hit speedup** -- the same spec submitted again.  A hit skips
  the search entirely (one disk read, or a memory-front lookup), so the
  ratio is the whole point of the result store; recorded, not gated
  (it scales with how long the *search* takes, which this bench keeps
  deliberately tiny -- real sessions see far larger ratios).
* **Warm-pool submit latency** -- per-job wall time over one shared
  keep-alive process pool after the first job has paid the spawn cost.

Writes ``BENCH_service.json`` at the repo root::

    {"direct_s": ..., "miss_s": ..., "hit_s": ...,
     "submit_overhead_x": ..., "hit_speedup_x": ...,
     "warm_pool": {"first_job_s": ..., "warm_job_s": ...}}

Hit responses are asserted bit-identical to the run that produced them
(that is the cache contract, not just a perf property).
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.core.reporting import format_table
from repro.search import SearchSession, SearchSpec
from repro.service import ResultStore, SearchServer

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: Distinct seeds -> distinct cache identities; one timing sample each.
SEEDS = (100, 101, 102, 103, 104)


def _spec(seed: int, **overrides) -> SearchSpec:
    base = dict(model="mnasnet", method="random", budget=60, seed=seed,
                layer_slice=4)
    base.update(overrides)
    return SearchSpec(**base)


def _timed(fn):
    started = time.perf_counter()
    out = fn()
    return time.perf_counter() - started, out


def test_service_latency(save_report, tmp_path):
    direct_s = min(
        _timed(lambda seed=seed: SearchSession(_spec(seed)).run())[0]
        for seed in SEEDS)

    store = ResultStore(root=tmp_path / "cache")
    with SearchServer(store=store, executor="serial") as server:
        misses, hits = [], []
        for seed in SEEDS:
            seconds, fresh = _timed(
                lambda s=seed: server.submit(_spec(s)).wait(timeout=120))
            misses.append(seconds)
            seconds, cached = _timed(
                lambda s=seed: server.submit(_spec(s)).wait(timeout=120))
            hits.append(seconds)
            assert not fresh.cached and cached.cached
            assert cached.result.to_dict() == fresh.result.to_dict()
        assert server.executions == len(SEEDS)
    miss_s, hit_s = min(misses), min(hits)

    with SearchServer(store=ResultStore(root=tmp_path / "warm"),
                      executor="process", workers=2) as warm:
        ga = dict(method="ga", budget=60)
        first_job_s, _ = _timed(
            lambda: warm.submit(_spec(200, **ga)).wait(timeout=120))
        warm_job_s = min(
            _timed(lambda seed=seed: warm.submit(
                _spec(seed, **ga)).wait(timeout=120))[0]
            for seed in (201, 202, 203))

    submit_overhead_x = miss_s / direct_s
    hit_speedup_x = miss_s / hit_s
    payload = {
        "direct_s": direct_s,
        "miss_s": miss_s,
        "hit_s": hit_s,
        "submit_overhead_x": submit_overhead_x,
        "hit_speedup_x": hit_speedup_x,
        "warm_pool": {"first_job_s": first_job_s,
                      "warm_job_s": warm_job_s},
    }
    (REPO_ROOT / "BENCH_service.json").write_text(
        json.dumps(payload, indent=2) + "\n")

    rows = [
        ["direct session", f"{direct_s * 1e3:.2f}", "1.00"],
        ["served miss", f"{miss_s * 1e3:.2f}",
         f"{submit_overhead_x:.2f}"],
        ["served hit", f"{hit_s * 1e3:.2f}",
         f"{miss_s / hit_s:.2f}x faster than miss"],
        ["warm-pool job", f"{warm_job_s * 1e3:.2f}",
         f"(first: {first_job_s * 1e3:.2f})"],
    ]
    save_report("bench_service", format_table(
        ["path", "ms", "vs direct"], rows,
        title="Search-as-a-service latency"))

    # The service tax on an executing run is a constant factor, not a
    # multiple; generous bound because the workload is milliseconds.
    assert submit_overhead_x < 3.0, (
        f"served miss {submit_overhead_x:.2f}x slower than a direct "
        f"session run")
    assert hit_speedup_x > 1.0, "a cache hit must beat re-running"
