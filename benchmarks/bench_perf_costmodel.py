"""Perf tracker: scalar-loop vs batched population evaluation.

Times the repository's hottest path -- evaluating a whole search
population against the analytical cost model -- both ways on a fixed
workload (20 MobileNet-V2 layers x 512 random design points, cold caches)
and writes ``BENCH_costmodel.json`` at the repo root:

    {"scalar_s": ..., "batched_s": ..., "speedup": ...}

so the perf trajectory is tracked across future PRs.  The batched engine
must beat the scalar loop by >= 10x on this workload (the acceptance bar
of the PR that introduced it); parity of every returned cost is asserted
while we are at it.
"""

from __future__ import annotations

import gc
import json
import pathlib
import time

import numpy as np

from repro.core.constraints import platform_constraint
from repro.core.evaluator import DesignPointEvaluator
from repro.core.reporting import format_table
from repro.costmodel import CostModel
from repro.env.spaces import ActionSpace
from repro.models import get_model

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

NUM_LAYERS = 20
POPULATION = 512
#: Repetitions per path; the minimum is reported (standard perf practice:
#: the floor is the honest number, the rest is GC/scheduler jitter).
REPEATS = 3


def _make_evaluator(layers, space, constraint):
    """A fresh evaluator around a fresh (cold-cache) cost model."""
    return DesignPointEvaluator(layers, "latency", constraint, CostModel(),
                                space, dataflow="dla")


def _population(space, num_layers, size, seed):
    rng = np.random.default_rng(seed)
    return [
        [int(g) for g in rng.integers(space.num_levels, size=2 * num_layers)]
        for _ in range(size)
    ]


def test_perf_costmodel(save_report):
    layers = get_model("mobilenet_v2")[:NUM_LAYERS]
    space = ActionSpace.build("dla")
    constraint = platform_constraint(layers, "dla", "area", "cloud",
                                     CostModel(), space)
    genomes = _population(space, NUM_LAYERS, POPULATION, seed=0)

    scalar_s = float("inf")
    for _ in range(REPEATS):
        scalar_eval = _make_evaluator(layers, space, constraint)
        gc.collect()
        started = time.perf_counter()
        scalar_outcomes = [scalar_eval.evaluate_genome(g) for g in genomes]
        scalar_s = min(scalar_s, time.perf_counter() - started)

    batched_s = float("inf")
    for _ in range(REPEATS):
        batched_eval = _make_evaluator(layers, space, constraint)
        gc.collect()
        started = time.perf_counter()
        batched_outcomes = batched_eval.evaluate_population(genomes)
        batched_s = min(batched_s, time.perf_counter() - started)

    for scalar, batched in zip(scalar_outcomes, batched_outcomes):
        assert scalar.cost == batched.cost
        assert scalar.feasible == batched.feasible
        assert scalar.used == batched.used

    speedup = scalar_s / batched_s
    payload = {
        "scalar_s": scalar_s,
        "batched_s": batched_s,
        "speedup": speedup,
    }
    (REPO_ROOT / "BENCH_costmodel.json").write_text(
        json.dumps(payload, indent=2) + "\n")

    save_report("perf_costmodel", format_table(
        ["path", "wall time (s)", "points/s"],
        [
            ["scalar loop", f"{scalar_s:.4f}",
             f"{POPULATION / scalar_s:.0f}"],
            ["batched", f"{batched_s:.4f}",
             f"{POPULATION / batched_s:.0f}"],
            ["speedup", f"{speedup:.1f}x", ""],
        ],
        title=f"Cost-model perf -- {NUM_LAYERS} layers x {POPULATION} "
              f"points, cold cache",
    ))

    assert speedup >= 10.0, (
        f"batched path only {speedup:.1f}x faster than the scalar loop"
    )
