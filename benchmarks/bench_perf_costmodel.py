"""Perf tracker: scalar-loop vs batched vs fused population evaluation.

Times the repository's hottest path -- evaluating a whole search
population against the analytical cost model -- on a fixed workload
(20 MobileNet-V2 layers x 512 random design points, cold caches) and
writes ``BENCH_costmodel.json`` at the repo root:

    {"scalar_s": ..., "batched_s": ..., "speedup": ...,
     "fused_s": ..., "fused_speedup_x": ..., "fused32_speedup_x": ...}

so the perf trajectory is tracked across future PRs.  The batched engine
must beat the scalar loop by >= 10x on this workload (the acceptance bar
of the PR that introduced it), and the fused tensor program must beat
the batched kernel by >= 1.5x on the kernel-level population batch
(the bar of the PR that introduced the fused kernels; ``fused32`` --
and ``fused_jit`` when numba is importable -- are recorded but not
gated).  Bit parity of every returned cost is asserted while we are at
it.
"""

from __future__ import annotations

import gc
import json
import pathlib
import time

import numpy as np

from repro.core.constraints import platform_constraint
from repro.core.evaluator import DesignPointEvaluator
from repro.core.reporting import format_table
from repro.costmodel import (
    DEFAULT_HW,
    CostModel,
    LayerTable,
    STYLE_INDEX,
    compile_program,
    evaluate_with_kernel,
    numba_available,
)
from repro.env.spaces import ActionSpace
from repro.models import get_model

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

NUM_LAYERS = 20
POPULATION = 512
#: Repetitions per path; the minimum is reported (standard perf practice:
#: the floor is the honest number, the rest is GC/scheduler jitter).
REPEATS = 3
#: Kernel-level timings are ~1ms per call, so take many more samples.
KERNEL_REPEATS = 30


def _make_evaluator(layers, space, constraint):
    """A fresh evaluator around a fresh (cold-cache) cost model."""
    return DesignPointEvaluator(layers, "latency", constraint, CostModel(),
                                space, dataflow="dla")


def _population(space, num_layers, size, seed):
    rng = np.random.default_rng(seed)
    return [
        [int(g) for g in rng.integers(space.num_levels, size=2 * num_layers)]
        for _ in range(size)
    ]


def test_perf_costmodel(save_report):
    layers = get_model("mobilenet_v2")[:NUM_LAYERS]
    space = ActionSpace.build("dla")
    constraint = platform_constraint(layers, "dla", "area", "cloud",
                                     CostModel(), space)
    genomes = _population(space, NUM_LAYERS, POPULATION, seed=0)

    scalar_s = float("inf")
    for _ in range(REPEATS):
        scalar_eval = _make_evaluator(layers, space, constraint)
        gc.collect()
        started = time.perf_counter()
        scalar_outcomes = [scalar_eval.evaluate_genome(g) for g in genomes]
        scalar_s = min(scalar_s, time.perf_counter() - started)

    batched_s = float("inf")
    for _ in range(REPEATS):
        batched_eval = _make_evaluator(layers, space, constraint)
        gc.collect()
        started = time.perf_counter()
        batched_outcomes = batched_eval.evaluate_population(genomes)
        batched_s = min(batched_s, time.perf_counter() - started)

    for scalar, batched in zip(scalar_outcomes, batched_outcomes):
        assert scalar.cost == batched.cost
        assert scalar.feasible == batched.feasible
        assert scalar.used == batched.used

    speedup = scalar_s / batched_s

    # ------------------------------------------------------------------
    # Kernel-level: the batched reference vs the fused tensor programs
    # on one (population x layers) single-style batch -- the exact call
    # the searches spend their time in.
    # ------------------------------------------------------------------
    table = LayerTable.build(layers)
    rng = np.random.default_rng(1)
    batch_n = POPULATION * NUM_LAYERS
    layer_idx = np.tile(np.arange(NUM_LAYERS), POPULATION)
    style_idx = np.full(batch_n, STYLE_INDEX["dla"], dtype=np.int64)
    pes = rng.integers(1, 600, size=batch_n)
    l1 = rng.integers(1, 12_000, size=batch_n)

    def _time_kernel(fn):
        fn()  # warm scratch buffers / JIT before the clock starts
        best = float("inf")
        gc.collect()
        for _ in range(KERNEL_REPEATS):
            started = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - started)
        return best

    kernel_batched_s = _time_kernel(lambda: evaluate_with_kernel(
        "batched", DEFAULT_HW, table, layer_idx, style_idx, pes, l1))

    kernel_rows = [["batched kernel", f"{kernel_batched_s * 1e3:.3f}", ""]]
    kernel_speedups = {}
    kinds = ["fused", "fused32"] + (["fused-jit"] if numba_available()
                                    else [])
    for kind in kinds:
        program = compile_program(DEFAULT_HW, table, kind)
        seconds = _time_kernel(lambda: program.evaluate(
            layer_idx, style_idx, pes, l1))
        key = kind.replace("-", "_")
        kernel_speedups[f"{key}_s"] = seconds
        kernel_speedups[f"{key}_speedup_x"] = kernel_batched_s / seconds
        kernel_rows.append([f"{kind} kernel", f"{seconds * 1e3:.3f}",
                            f"{kernel_batched_s / seconds:.2f}x"])

    # The fused float64 program must be bit-identical to the reference.
    reference = evaluate_with_kernel("batched", DEFAULT_HW, table,
                                     layer_idx, style_idx, pes, l1)
    fused_program = compile_program(DEFAULT_HW, table, "fused")
    fused_report = fused_program.evaluate(layer_idx, style_idx, pes, l1)
    assert np.array_equal(reference.latency_cycles,
                          fused_report.latency_cycles)
    assert np.array_equal(reference.energy_nj, fused_report.energy_nj)

    # ------------------------------------------------------------------
    # MIX fast path: a batch mixing all three dataflow styles, where the
    # fused program compacts each style's rows instead of planning every
    # style over the full tensor (the old where-lattice ran ~0.66x the
    # batched kernel here).
    # ------------------------------------------------------------------
    mix_style_idx = rng.integers(0, 3, size=batch_n)
    mix_batched_s = _time_kernel(lambda: evaluate_with_kernel(
        "batched", DEFAULT_HW, table, layer_idx, mix_style_idx, pes, l1))
    mix_fused_s = _time_kernel(lambda: fused_program.evaluate(
        layer_idx, mix_style_idx, pes, l1))
    mix_speedup_x = mix_batched_s / mix_fused_s
    kernel_rows.append(["batched kernel (MIX)",
                        f"{mix_batched_s * 1e3:.3f}", ""])
    kernel_rows.append(["fused kernel (MIX)", f"{mix_fused_s * 1e3:.3f}",
                        f"{mix_speedup_x:.2f}x"])

    mix_reference = evaluate_with_kernel(
        "batched", DEFAULT_HW, table, layer_idx, mix_style_idx, pes, l1)
    mix_report = fused_program.evaluate(layer_idx, mix_style_idx, pes, l1)
    assert np.array_equal(mix_reference.latency_cycles,
                          mix_report.latency_cycles)
    assert np.array_equal(mix_reference.energy_nj, mix_report.energy_nj)
    assert np.array_equal(mix_reference.tile_k, mix_report.tile_k)

    payload = {
        "scalar_s": scalar_s,
        "batched_s": batched_s,
        "speedup": speedup,
        "kernel_batched_s": kernel_batched_s,
        "mix_batched_s": mix_batched_s,
        "mix_fused_s": mix_fused_s,
        "mix_speedup_x": mix_speedup_x,
        **kernel_speedups,
    }
    (REPO_ROOT / "BENCH_costmodel.json").write_text(
        json.dumps(payload, indent=2) + "\n")

    save_report("perf_costmodel", format_table(
        ["path", "wall time (s)", "points/s"],
        [
            ["scalar loop", f"{scalar_s:.4f}",
             f"{POPULATION / scalar_s:.0f}"],
            ["batched", f"{batched_s:.4f}",
             f"{POPULATION / batched_s:.0f}"],
            ["speedup", f"{speedup:.1f}x", ""],
        ],
        title=f"Cost-model perf -- {NUM_LAYERS} layers x {POPULATION} "
              f"points, cold cache",
    ))
    save_report("perf_costmodel_kernels", format_table(
        ["kernel", "wall time (ms)", "vs batched"],
        kernel_rows,
        title=f"Kernel-level -- one dla batch of {batch_n} points",
    ))

    assert speedup >= 10.0, (
        f"batched path only {speedup:.1f}x faster than the scalar loop"
    )
    assert kernel_speedups["fused_speedup_x"] >= 1.5, (
        f"fused program only {kernel_speedups['fused_speedup_x']:.2f}x "
        f"faster than the batched kernel"
    )
    assert mix_speedup_x >= 1.0, (
        f"fused MIX path only {mix_speedup_x:.2f}x the batched kernel "
        f"on a mixed-style batch"
    )
