"""Table III: converged LP solutions -- GA vs PPO2 vs Con'X(global).

All 18 (model, dataflow, platform) rows of the paper, objective = minimum
end-to-end latency under an area constraint.  Models are sliced to their
first 16 layers by default so the whole grid runs in minutes; set
``REPRO_EPOCHS`` (and edit ``LAYER_SLICE``) for fuller runs.
"""

from __future__ import annotations

from repro.core.reporting import format_table
from repro.experiments import TaskSpec, default_epochs
from repro.experiments.lp_study import TABLE3_METHODS, format_row, run_row

LAYER_SLICE = 16

#: The paper's 18 rows: (model, dataflow, platform).
ROWS = [
    ("mobilenet_v2", "dla", "iot"),
    ("mobilenet_v2", "eye", "iotx"),
    ("mobilenet_v2", "shi", "iotx"),
    ("mnasnet", "dla", "cloud"),
    ("mnasnet", "eye", "iotx"),
    ("mnasnet", "shi", "iotx"),
    ("resnet50", "dla", "cloud"),
    ("resnet50", "eye", "cloud"),
    ("resnet50", "shi", "cloud"),
    ("gnmt", "dla", "iotx"),
    ("gnmt", "eye", "iot"),
    ("gnmt", "shi", "iot"),
    ("transformer", "dla", "iotx"),
    ("transformer", "eye", "iot"),
    ("transformer", "shi", "iot"),
    ("ncf", "dla", "iotx"),
    ("ncf", "eye", "cloud"),
    ("ncf", "shi", "iot"),
]


def test_table03_lp_converged(benchmark, cost_model, save_report):
    epochs = default_epochs(200)

    def run():
        table = []
        outcomes = []
        for model, dataflow, platform in ROWS:
            task = TaskSpec(model=model, dataflow=dataflow,
                            platform=platform, layer_slice=LAYER_SLICE)
            results = run_row(task, TABLE3_METHODS, epochs,
                              cost_model=cost_model)
            label = f"{model}-{dataflow} {platform}"
            table.append(format_row(label, results, TABLE3_METHODS))
            outcomes.append(results)
        return table, outcomes

    table, outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("table03_lp_converged", format_table(
        ["model-dataflow platform", "GA", "PPO2", "Con'X (global)"],
        table,
        title=f"Table III -- LP converged latency (cycles), Eps={epochs}, "
              f"first {LAYER_SLICE} layers",
    ))

    # Shape checks: Con'X always feasible (the paper: GA NANs under tight
    # constraints, Con'X never does), and wins or stays competitive on a
    # majority of rows.  Individual rows are noisy at scaled-down budgets,
    # so the quality claim is asserted in aggregate.
    competitive = 0
    for results in outcomes:
        conx = results["reinforce"]
        assert conx.feasible
        others = [results[m].best_cost for m in ("ga", "ppo2")
                  if results[m].best_cost is not None]
        if not others or conx.best_cost <= min(others) * 1.5:
            competitive += 1
    assert competitive >= len(outcomes) // 2
