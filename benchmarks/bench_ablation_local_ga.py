"""Ablation: the stage-2 GA's conservative operators (Section III-G).

The paper argues that conventional two-parent crossover breaks the learnt
per-layer budget relationship (a child can over- or under-request
resources across the board), which is why the fine-tuning GA swaps layer
pairs *within* one genome instead.  This bench fine-tunes the same
stage-1 solution with both crossover modes and several mutation steps,
measuring final quality and how many offspring stayed feasible.
"""

from __future__ import annotations

from repro.core.evaluator import DesignPointEvaluator
from repro.core.reporting import format_table
from repro.experiments import TaskSpec, default_epochs
from repro.ga import LocalGA
from repro.search import SearchSession, SearchSpec

LAYER_SLICE = 12
SEEDS = (0, 1, 2)


def test_ablation_local_ga(benchmark, cost_model, save_report):
    epochs = default_epochs(150)
    generations = max(30, epochs // 3)
    task = TaskSpec(model="mobilenet_v2", dataflow="dla", platform="iot",
                    layer_slice=LAYER_SLICE)
    constraint = task.constraint(cost_model)

    def run():
        # One shared stage-1 solution seeds every variant (the session
        # detail carries the full two-stage ConfuciuXResult).
        spec = SearchSpec(model="mobilenet_v2", method="confuciux",
                          objective="latency", dataflow="dla",
                          platform="iot", seed=0, budget=epochs,
                          finetune=0, layer_slice=LAYER_SLICE)
        stage1 = SearchSession(spec, cost_model=cost_model).run().detail
        assert stage1.best_cost is not None
        seed_assignments = stage1.global_result.best_assignments

        variants = {
            "local crossover, step 4 (paper)": dict(crossover_mode="local",
                                                    mutation_step=4),
            "global crossover, step 4": dict(crossover_mode="global",
                                             mutation_step=4),
            "local crossover, step 16": dict(crossover_mode="local",
                                             mutation_step=16),
            "local crossover, step 1": dict(crossover_mode="local",
                                            mutation_step=1),
        }
        out = {}
        for name, kwargs in variants.items():
            costs = []
            for seed in SEEDS:
                evaluator = DesignPointEvaluator(
                    task.layers(), "latency", constraint, cost_model,
                    task.space(), dataflow="dla")
                ga = LocalGA(seed=seed, **kwargs)
                result = ga.search(evaluator, seed_assignments,
                                   generations)
                costs.append(result.best_cost)
            out[name] = costs
        return stage1.global_cost, out

    stage1_cost, outcomes = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [["stage-1 seed", f"{stage1_cost:.2E}", "-"]]
    for name, costs in outcomes.items():
        feasible = [c for c in costs if c is not None]
        median = sorted(feasible)[len(feasible) // 2] if feasible else None
        rows.append([
            name,
            f"{median:.2E}" if median is not None else "NAN",
            f"{100 * (stage1_cost - median) / stage1_cost:.1f}%"
            if median is not None else "-",
        ])
    save_report("ablation_local_ga", format_table(
        ["variant", "median fine-tuned latency (cy)",
         "improvement over stage 1"],
        rows,
        title=f"Ablation -- stage-2 GA operators (MobileNet-V2 first "
              f"{LAYER_SLICE} layers, IoT area, {generations} generations, "
              f"{len(SEEDS)} seeds)",
    ))

    # The paper's configuration must never regress below the seed, and the
    # local crossover must be at least as good as the global blend.
    paper = [c for c in outcomes["local crossover, step 4 (paper)"]
             if c is not None]
    assert paper and all(c <= stage1_cost for c in paper)
    blend = [c for c in outcomes["global crossover, step 4"]
             if c is not None]
    if blend:
        assert min(paper) <= min(blend) * 1.25
