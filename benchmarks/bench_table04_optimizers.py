"""Table IV: optimization-method comparison across platform constraints.

MobileNet-V2, NVDLA-style, LP deployment.  14 rows: {latency, energy} x
{area, power} x {Unlimited, Cloud, IoT, IoTx} (the paper omits the
unlimited-power rows, keeping 14).  Columns: Grid, Random, SA, GA, Bayesian
optimization, Con'X(global).
"""

from __future__ import annotations

from repro.core.reporting import format_table
from repro.experiments import TaskSpec, default_epochs
from repro.experiments.lp_study import (
    classic_optimizer_methods,
    display_columns,
    format_row,
    run_row,
)

LAYER_SLICE = 16

ROWS = [
    ("latency", "area", "unlimited"),
    ("latency", "area", "cloud"),
    ("latency", "area", "iot"),
    ("latency", "area", "iotx"),
    ("latency", "power", "cloud"),
    ("latency", "power", "iot"),
    ("latency", "power", "iotx"),
    ("energy", "area", "unlimited"),
    ("energy", "area", "cloud"),
    ("energy", "area", "iot"),
    ("energy", "area", "iotx"),
    ("energy", "power", "cloud"),
    ("energy", "power", "iot"),
    ("energy", "power", "iotx"),
]


def test_table04_optimizers(benchmark, cost_model, save_report):
    epochs = default_epochs(150)
    # Resolved at run time so methods registered after import (e.g. by a
    # plugin conftest) join the grid automatically.
    methods = classic_optimizer_methods()

    def run():
        table = []
        outcomes = []
        for objective, kind, platform in ROWS:
            task = TaskSpec(model="mobilenet_v2", dataflow="dla",
                            objective=objective, constraint_kind=kind,
                            platform=platform, layer_slice=LAYER_SLICE)
            results = run_row(task, methods, epochs,
                              cost_model=cost_model)
            label = f"{objective} {kind}:{platform}"
            table.append(format_row(label, results, methods))
            outcomes.append(((objective, kind, platform), results))
        return table, outcomes

    table, outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("table04_optimizers", format_table(
        ["objective constraint"] + display_columns(methods),
        table,
        title=f"Table IV -- optimizer comparison, MobileNet-V2 "
              f"(first {LAYER_SLICE} layers), NVDLA-style, LP, Eps={epochs}",
    ))

    # Shape checks mirroring the paper's qualitative claims.
    for (objective, kind, platform), results in outcomes:
        conx = results["reinforce"]
        assert conx.feasible, f"Con'X infeasible at {kind}:{platform}"
        feasible_baselines = [r.best_cost for name, r in results.items()
                              if name != "reinforce"
                              and r.best_cost is not None]
        if platform in ("iot", "iotx") and feasible_baselines:
            # Under tight budgets Con'X should be at least competitive.
            assert conx.best_cost <= min(feasible_baselines) * 2.0
