"""Shared fixtures for the benchmark suite.

Each bench regenerates one table or figure from the paper's evaluation,
prints it in the paper's row format, and writes it under
``benchmarks/results/`` so the output survives pytest's capture.  Search
budgets default to scaled-down epoch counts (see DESIGN.md); export
``REPRO_EPOCHS`` to run closer to the paper's Eps = 5000.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.costmodel import CostModel
from repro.search import SearchSession, SearchSpec

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def cost_model() -> CostModel:
    """One shared estimator: its cache is reused across every bench."""
    return CostModel(cache_size=1_000_000)


@pytest.fixture(scope="session")
def run_spec(cost_model):
    """Run one :class:`SearchSpec` through the unified session API on the
    shared cost model; accepts spec fields as keyword arguments."""

    def _run(spec=None, callbacks=(), **spec_kwargs):
        if spec is None:
            spec = SearchSpec(**spec_kwargs)
        return SearchSession(spec, cost_model=cost_model).run(
            callbacks=callbacks)

    return _run


@pytest.fixture(scope="session")
def save_report():
    """Print a report and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        print()
        print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _save
