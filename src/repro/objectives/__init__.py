"""Pluggable optimization objectives and Pareto utilities.

The objective subsystem replaces the hard-coded
``objective: "latency" | "energy" | "edp"`` strings with first-class,
vectorized objectives shared by every consumer -- the genome evaluator,
the batched population kernel, the RL environment's rewards, and the
search sessions:

* :class:`~repro.objectives.base.Objective` -- the protocol: elementwise
  ``evaluate(report)`` over scalar or batch cost reports.
* :func:`~repro.objectives.registry.register_objective` /
  :func:`~repro.objectives.registry.resolve_objective` -- the registry
  and the JSON-safe spec grammar (``"latency"``,
  ``"weighted:latency=0.5,energy=0.5"``, ``"multi:latency,energy"``,
  structured dicts).
* :class:`~repro.objectives.base.MultiObjective` plus the vectorized
  non-dominated-sort / :class:`~repro.objectives.pareto.ParetoArchive`
  utilities behind the ``pareto-ga`` search method.
* :mod:`~repro.objectives.presets` -- named deployment scenarios
  (``battery-life``, ``sla``) built from the penalty grammar, whose
  names round-trip as their specs.

Legacy names stay bit-identical to the pre-refactor string paths.
"""

from repro.objectives.base import (
    COMPONENT_ORDER,
    ComponentObjective,
    CostTotals,
    MultiObjective,
    Objective,
    PenaltyObjective,
    WeightedObjective,
)
from repro.objectives.pareto import (
    INFEASIBLE_BASE,
    ParetoArchive,
    constrained_rows,
    crowding_distance,
    domination_matrix,
    non_dominated_mask,
    non_dominated_sort,
)
from repro.objectives.registry import (
    get_objective,
    list_objectives,
    objective_cost_label,
    objective_label,
    objective_spec,
    register_objective,
    resolve_objective,
    unregister_objective,
)
from repro.objectives.presets import BatteryLifeObjective, SlaObjective

__all__ = [
    "COMPONENT_ORDER",
    "CostTotals",
    "Objective",
    "ComponentObjective",
    "WeightedObjective",
    "PenaltyObjective",
    "MultiObjective",
    "register_objective",
    "unregister_objective",
    "get_objective",
    "list_objectives",
    "resolve_objective",
    "objective_spec",
    "objective_label",
    "objective_cost_label",
    "BatteryLifeObjective",
    "SlaObjective",
    "INFEASIBLE_BASE",
    "ParetoArchive",
    "constrained_rows",
    "domination_matrix",
    "non_dominated_mask",
    "non_dominated_sort",
    "crowding_distance",
]
