"""Named deployment-scenario objectives (ROADMAP follow-on to PR 4).

A scenario preset is a penalty-augmented objective with a memorable name
and documented default caps, registered like any other objective, so it
is reachable from ``SearchSpec.objective``, ``repro.explore``, and the
CLI's ``--objective`` -- and its *name* is its JSON spec, so specs and
session results round-trip exactly:

========================  =============================================
``"battery-life"``        minimize **energy**, leaning away from big
                          dies: ``energy + w * max(0, area - cap)``
``"sla"``                 minimize **latency** under a soft power cap:
                          ``latency + w * max(0, power - cap)``
========================  =============================================

The default caps sit at the Table-II IoT scale (about 10% of a
full-model C_max measured at the maximum action pair: ~1e7 um^2 of area,
~5e3 mW of power); the weights convert one unit of excess into the
objective's own currency steeply enough that the search treats the cap
as a strong preference rather than a cliff.  Custom caps are ordinary
constructor arguments -- a customized preset serializes as an explicit
penalty spec dict instead of the bare name, keeping round-trips exact.
"""

from __future__ import annotations

from repro.objectives.base import ComponentObjective, PenaltyObjective
from repro.objectives.registry import register_objective

__all__ = ["BatteryLifeObjective", "SlaObjective"]


class _PresetObjective(PenaltyObjective):
    """A named penalty preset whose spec is its registry name while the
    caps are at their documented defaults (customized instances fall
    back to the explicit penalty-dict spec)."""

    preset_name = "preset"
    base_component = "latency"
    default_limit_on = "area"
    default_limit = 0.0
    default_weight = 1.0

    def __init__(self, limit: float = None, weight: float = None) -> None:
        limit = self.default_limit if limit is None else float(limit)
        weight = self.default_weight if weight is None else float(weight)
        super().__init__(base=ComponentObjective(self.base_component),
                         limit_on=self.default_limit_on,
                         limit=limit, weight=weight)
        self._is_default = (limit == self.default_limit
                            and weight == self.default_weight)
        if self._is_default:
            self.name = self.preset_name

    def spec(self):
        if self._is_default:
            return self.preset_name
        return super().spec()


class BatteryLifeObjective(_PresetObjective):
    """``battery-life``: energy first, with a soft area penalty.

    Battery-powered deployments buy energy efficiency with silicon, but
    only up to a point: above ``limit`` um^2 every extra um^2 costs
    ``weight`` nJ of objective value.
    """

    preset_name = "battery-life"
    base_component = "energy"
    default_limit_on = "area"
    default_limit = 1.0e7    # ~Table-II IoT area budget (um^2)
    default_weight = 1.0     # 1 nJ per um^2 of excess


class SlaObjective(_PresetObjective):
    """``sla``: latency first, under a soft power cap.

    Latency-bound serving with a thermal/power envelope: above ``limit``
    mW every extra mW costs ``weight`` cycles of objective value.
    """

    preset_name = "sla"
    base_component = "latency"
    default_limit_on = "power"
    default_limit = 5.0e3    # ~Table-II IoT power budget (mW)
    default_weight = 1.0e3   # 1000 cycles per mW of excess


register_objective("battery-life", BatteryLifeObjective)
register_objective("sla", SlaObjective)
