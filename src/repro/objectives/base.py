"""First-class optimization objectives over cost-model figures of merit.

Every search method in this repository minimizes *some* function of the
four aggregate figures the cost model produces -- latency, energy, area,
power.  Pre-refactor that function was a hard-coded string compared in
half a dozen modules; an :class:`Objective` names it once and evaluates it
anywhere: on a scalar :class:`~repro.costmodel.report.CostReport`, a
whole-model :class:`~repro.costmodel.report.ModelCostReport`, or a
population-axis :class:`~repro.costmodel.report.BatchCostReport` -- the
arithmetic is elementwise, so one ``evaluate`` serves all three.

The three legacy names (``latency`` / ``energy`` / ``edp``) reproduce the
historical expressions *exactly* (same operands, same order), so searches
configured by name are bit-identical to the pre-refactor string paths --
the parity suite in ``tests/test_objectives.py`` locks this down.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence, Union

import numpy as np

__all__ = [
    "COMPONENT_ORDER",
    "CostTotals",
    "Objective",
    "ComponentObjective",
    "WeightedObjective",
    "PenaltyObjective",
    "MultiObjective",
]

#: Canonical component order for deterministic weighted accumulation.
COMPONENT_ORDER = ("latency", "energy", "edp", "area", "power")


class CostTotals(NamedTuple):
    """The four aggregate figures objectives consume.

    Any report class (``CostReport``, ``ModelCostReport``,
    ``BatchCostReport``) exposes the same four attributes, so objectives
    accept reports directly; this carrier exists for call sites that hold
    bare totals arrays (the batched evaluator, the LS sweep) without a
    report object.
    """

    latency_cycles: object
    energy_nj: object
    area_um2: object
    power_mw: object


def _component_value(report, component: str):
    """One named figure of merit from any report-like object.

    ``edp`` is computed as ``energy * latency`` -- the exact legacy
    expression order of ``objective_totals``.
    """
    if component == "latency":
        return report.latency_cycles
    if component == "energy":
        return report.energy_nj
    if component == "edp":
        return report.energy_nj * report.latency_cycles
    if component == "area":
        return report.area_um2
    if component == "power":
        return report.power_mw
    raise KeyError(
        f"unknown objective component {component!r}; available: "
        f"{', '.join(COMPONENT_ORDER)}")


def _relu(value):
    """max(value, 0) for scalars and arrays without promoting python
    floats to numpy scalars (scalar costs must stay JSON-native)."""
    if isinstance(value, np.ndarray):
        return np.maximum(value, 0.0)
    return value if value > 0.0 else 0.0


class Objective:
    """A minimized function of the cost model's aggregate figures.

    Subclasses implement :meth:`evaluate` with *elementwise* arithmetic
    over ``latency_cycles`` / ``energy_nj`` / ``area_um2`` / ``power_mw``,
    so one objective instance scores a scalar report and a whole
    population batch identically.  Objectives are stateless and reusable
    across searches.

    Attributes:
        name: Short display name (the table-column / CLI label).
        is_multi: Whether this objective carries multiple components to
            trade off (Pareto search); scalar consumers then see the
            *primary* (first) component through :meth:`evaluate`.
    """

    name = "objective"
    is_multi = False

    def evaluate(self, report):
        """The objective value(s) for ``report`` (scalar or batch)."""
        raise NotImplementedError

    def spec(self) -> Union[str, dict]:
        """A JSON-safe spec from which :func:`resolve_objective` rebuilds
        an equal objective (the form stored in ``SearchSpec.objective``)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def __call__(self, report):
        return self.evaluate(report)

    def __eq__(self, other) -> bool:
        return (type(self) is type(other)
                and self.spec() == other.spec())

    def __hash__(self) -> int:
        spec = self.spec()
        return hash(spec if isinstance(spec, str) else repr(spec))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.spec()!r})"

    def __str__(self) -> str:
        return self.name


class ComponentObjective(Objective):
    """One named figure of merit (``latency``, ``energy``, ``edp``,
    ``area``, or ``power``), minimized directly.

    For the three legacy names the returned value is the *same
    expression* the string path computed, so costs are bit-identical.
    """

    def __init__(self, component: str) -> None:
        _component_value(CostTotals(0.0, 0.0, 0.0, 0.0), component)
        self.component = component
        self.name = component

    def evaluate(self, report):
        return _component_value(report, self.component)

    def spec(self) -> str:
        return self.component


class WeightedObjective(Objective):
    """A weighted sum of named components: ``sum_i w_i * component_i``.

    Weights accumulate in :data:`COMPONENT_ORDER` (left-to-right), so the
    float result is deterministic regardless of the mapping order the
    caller supplied.  Components with very different magnitudes usually
    want magnitude-aware weights; the weights are the caller's contract.

    Args:
        weights: ``{component: weight}`` with at least one entry.
    """

    name = "weighted"

    def __init__(self, weights: Dict[str, float]) -> None:
        if not weights:
            raise ValueError("weighted objective needs at least one weight")
        ordered = {}
        for component in COMPONENT_ORDER:
            if component in weights:
                ordered[component] = float(weights[component])
        unknown = set(weights) - set(ordered)
        if unknown:
            raise KeyError(
                f"unknown objective component(s) {sorted(unknown)}; "
                f"available: {', '.join(COMPONENT_ORDER)}")
        self.weights = ordered
        self.name = "weighted(" + ",".join(
            f"{c}={w:g}" for c, w in ordered.items()) + ")"

    def evaluate(self, report):
        total = None
        for component, weight in self.weights.items():
            term = weight * _component_value(report, component)
            total = term if total is None else total + term
        return total

    def spec(self) -> dict:
        return {"kind": "weighted", "weights": dict(self.weights)}


class PenaltyObjective(Objective):
    """A base objective plus a soft penalty above a component limit:
    ``base + weight * max(0, component - limit)``.

    This turns a secondary budget (say, area) into a differentiable-ish
    pressure on any search method without touching the hard constraint
    machinery -- useful when a deployment wants "minimize latency but
    lean away from big dies" rather than a cliff.

    Args:
        base: The objective being minimized.
        limit_on: Component the penalty watches.
        limit: Value above which the penalty applies.
        weight: Penalty slope per unit of excess.
    """

    name = "penalty"

    def __init__(self, base: Objective, limit_on: str, limit: float,
                 weight: float = 1.0) -> None:
        _component_value(CostTotals(0.0, 0.0, 0.0, 0.0), limit_on)
        if base.is_multi:
            # Evaluating would silently collapse the trade-off to its
            # primary component; penalize the components instead
            # (multi of penalty objectives), mirroring the no-nesting
            # rule of MultiObjective.
            raise ValueError(
                "penalty objectives do not wrap multi objectives; "
                "build a multi of penalty-augmented components instead")
        if limit < 0:
            raise ValueError("penalty limit must be >= 0")
        if weight < 0:
            raise ValueError("penalty weight must be >= 0")
        self.base = base
        self.limit_on = limit_on
        self.limit = float(limit)
        self.weight = float(weight)
        self.name = f"{base.name}+penalty({limit_on}>{limit:g})"

    def evaluate(self, report):
        excess = _relu(_component_value(report, self.limit_on) - self.limit)
        return self.base.evaluate(report) + self.weight * excess

    def spec(self) -> dict:
        return {
            "kind": "penalty",
            "base": self.base.spec(),
            "limit_on": self.limit_on,
            "limit": self.limit,
            "weight": self.weight,
        }


class MultiObjective(Objective):
    """Several objectives minimized *together* (a Pareto trade-off).

    Scalar consumers -- the environment's rewards, best-cost bookkeeping,
    convergence traces -- see the **primary** (first) component through
    :meth:`evaluate`, so a multi-objective spec runs through every
    existing code path unchanged; Pareto-aware methods
    (:class:`~repro.optim.pareto_ga.ParetoGA`) call
    :meth:`evaluate_components` for the full component matrix and rank by
    dominance instead.
    """

    name = "multi"
    is_multi = True

    def __init__(self, components: Sequence[Objective]) -> None:
        components = list(components)
        if not components:
            raise ValueError("multi objective needs at least one component")
        if any(component.is_multi for component in components):
            raise ValueError("multi objectives do not nest")
        self.components = components
        self.name = "multi(" + ",".join(c.name for c in components) + ")"

    @property
    def component_names(self) -> List[str]:
        return [component.name for component in self.components]

    def evaluate(self, report):
        """The primary component (scalar view for legacy consumers)."""
        return self.components[0].evaluate(report)

    def evaluate_components(self, report) -> np.ndarray:
        """All component values, stacked on a leading component axis:
        shape ``(k,)`` for scalar reports, ``(k, n)`` for batches."""
        return np.stack([
            np.asarray(component.evaluate(report), dtype=np.float64)
            for component in self.components
        ])

    def spec(self) -> Union[str, dict]:
        specs = [component.spec() for component in self.components]
        if all(isinstance(s, str) for s in specs):
            return "multi:" + ",".join(specs)
        return {"kind": "multi", "components": specs}
