"""Vectorized non-dominated sorting and Pareto-front maintenance.

All functions operate on a ``(n, k)`` float array of objective values,
minimized componentwise.  Domination is the standard weak form: ``a``
dominates ``b`` iff ``a <= b`` in every component and ``a < b`` in at
least one -- so exact duplicates never dominate each other and share a
front.  Infinities are legal.

Infeasible points are handled by *encoding*, not by a second dominance
rule: :func:`constrained_rows` rewrites every infeasible row to a huge
finite base scaled by its normalized constraint violation (Deb's
constrained-domination order expressed as plain values).  Any feasible
point then dominates any infeasible one, a smaller violation dominates a
larger one, and equal violations co-front -- all through the same
vectorized machinery below, with feasible-only fronts provably
unchanged.

The sorts are deterministic functions of the input order: peeling
preserves index order within each front, which is what makes Pareto
fronts reproducible for fixed seeds.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "INFEASIBLE_BASE",
    "constrained_rows",
    "domination_matrix",
    "non_dominated_mask",
    "non_dominated_sort",
    "crowding_distance",
    "ParetoArchive",
]

#: Every infeasible row's components start here -- far above any real
#: objective value, far below ``inf`` so violation ordering survives
#: arithmetic.
INFEASIBLE_BASE = 1e30


def _as_values(values) -> np.ndarray:
    values = np.asarray(values, dtype=np.float64)
    if values.ndim == 1:
        values = values.reshape(-1, 1)
    if values.ndim != 2:
        raise ValueError(
            f"objective values must be a (n, k) array, got shape "
            f"{values.shape}")
    return values


def constrained_rows(values, feasible, violation) -> np.ndarray:
    """Encode constraint violations into the objective matrix.

    Returns a copy of the ``(n, k)`` matrix where every infeasible row
    (``feasible[i]`` false) is replaced, in all ``k`` components, by
    ``INFEASIBLE_BASE * (1 + violation[i])`` with the violation clipped
    at zero.  Under the weak dominance above this reproduces Deb's
    constrained-domination principle:

    * every feasible point dominates every infeasible point (its finite
      objective values sit far below the base);
    * between infeasible points, strictly smaller violation dominates;
    * equal violations are exact duplicates and co-front.

    Feasible rows are returned bit-for-bit untouched, so feasible-only
    inputs (and the feasible prefix of any front ranking) are identical
    to the unconstrained sort.

    Args:
        values: ``(n, k)`` objective matrix (minimized).
        feasible: ``(n,)`` boolean mask.
        violation: ``(n,)`` nonnegative violation magnitudes, already
            normalized (e.g. ``max(0, used - budget) / budget``);
            anything negative is treated as 0.
    """
    values = np.array(_as_values(values), copy=True)
    feasible = np.asarray(feasible, dtype=bool).reshape(-1)
    violation = np.asarray(violation, dtype=np.float64).reshape(-1)
    if not (len(values) == len(feasible) == len(violation)):
        raise ValueError(
            f"values ({len(values)}), feasible ({len(feasible)}) and "
            f"violation ({len(violation)}) lengths differ")
    infeasible = ~feasible
    if infeasible.any():
        scale = 1.0 + np.maximum(violation[infeasible], 0.0)
        values[infeasible] = (INFEASIBLE_BASE * scale)[:, None]
    return values


def domination_matrix(values) -> np.ndarray:
    """Boolean ``(n, n)`` matrix: ``D[i, j]`` iff point i dominates j.

    One broadcasted comparison pair -- O(n^2 k) memory, no Python loop --
    which is fast for the population sizes the GA breeds (hundreds).
    """
    values = _as_values(values)
    a = values[:, None, :]
    b = values[None, :, :]
    return (a <= b).all(axis=2) & (a < b).any(axis=2)


def non_dominated_mask(values) -> np.ndarray:
    """Boolean ``(n,)`` mask of the points no other point dominates."""
    values = _as_values(values)
    if len(values) == 0:
        return np.zeros(0, dtype=bool)
    return ~domination_matrix(values).any(axis=0)


def non_dominated_sort(values) -> np.ndarray:
    """NSGA-II fast non-dominated sort: the front rank of every point.

    Rank 0 is the Pareto front; rank ``r`` points are non-dominated once
    every rank ``< r`` point is removed.  Implemented by peeling fronts
    off a precomputed domination-count vector, all array arithmetic.
    """
    values = _as_values(values)
    n = len(values)
    ranks = np.zeros(n, dtype=np.int64)
    if n == 0:
        return ranks
    dominates = domination_matrix(values)
    # dominated_by[j] = number of points currently dominating j.
    dominated_by = dominates.sum(axis=0)
    remaining = np.ones(n, dtype=bool)
    rank = 0
    while remaining.any():
        front = remaining & (dominated_by == 0)
        if not front.any():  # pragma: no cover - domination is acyclic
            raise RuntimeError("non-dominated sort failed to progress")
        ranks[front] = rank
        remaining &= ~front
        # Removing the front releases its domination counts.
        dominated_by -= dominates[front].sum(axis=0)
        rank += 1
    return ranks


def crowding_distance(values) -> np.ndarray:
    """NSGA-II crowding distance of each point *within one front*.

    Boundary points (componentwise extremes) get ``inf`` so selection
    keeps the front's spread; interior points get the normalized
    perimeter of their neighbor cuboid.  Callers sort descending.
    """
    values = _as_values(values)
    n, k = values.shape
    distance = np.zeros(n, dtype=np.float64)
    if n <= 2:
        distance[:] = np.inf
        return distance
    for component in range(k):
        order = np.argsort(values[:, component], kind="stable")
        component_values = values[order, component]
        distance[order[0]] = np.inf
        distance[order[-1]] = np.inf
        lo, hi = component_values[0], component_values[-1]
        # Degenerate spans (all equal, or infinite endpoints from
        # infeasible rows) contribute no crowding on this axis; checking
        # before subtracting avoids an inf - inf NaN warning.
        if hi <= lo or not (np.isfinite(lo) and np.isfinite(hi)):
            continue
        gaps = (component_values[2:] - component_values[:-2]) / (hi - lo)
        distance[order[1:-1]] += gaps
    return distance


class ParetoArchive:
    """An incrementally maintained non-dominated set with payloads.

    The GA streams every feasible evaluation through the archive; at any
    point :meth:`front` returns the current Pareto set (values and the
    caller's payloads) in first-seen order, deduplicated on exact value
    ties so repeated genomes do not balloon the front.

    Args:
        max_size: Optional cap; when exceeded the most crowded points
            are dropped (crowding-distance pruning), keeping the spread.
    """

    def __init__(self, max_size: Optional[int] = None) -> None:
        if max_size is not None and max_size < 1:
            raise ValueError("max_size must be >= 1 (or None)")
        self.max_size = max_size
        self._values: List[np.ndarray] = []
        self._payloads: List[object] = []

    def __len__(self) -> int:
        return len(self._values)

    def add(self, values, payload=None) -> bool:
        """Offer one point; returns True if it joined the archive."""
        values = np.asarray(values, dtype=np.float64).reshape(-1)
        for kept in self._values:
            if ((kept <= values).all() and (kept < values).any()) \
                    or (kept == values).all():
                return False
        keep = [i for i, kept in enumerate(self._values)
                if not ((values <= kept).all() and (values < kept).any())]
        if len(keep) != len(self._values):
            self._values = [self._values[i] for i in keep]
            self._payloads = [self._payloads[i] for i in keep]
        self._values.append(values)
        self._payloads.append(payload)
        if self.max_size is not None and len(self._values) > self.max_size:
            self._prune()
        return True

    def extend(self, values, payloads: Sequence) -> int:
        """Offer many points; returns how many joined."""
        added = 0
        for row, payload in zip(np.asarray(values, dtype=np.float64),
                                payloads):
            added += bool(self.add(row, payload))
        return added

    def _prune(self) -> None:
        stacked = np.stack(self._values)
        crowding = crowding_distance(stacked)
        # Drop the single most crowded (smallest distance) point; ties
        # resolve to the earliest index for determinism.
        drop = int(np.argmin(crowding))
        del self._values[drop]
        del self._payloads[drop]

    def front(self) -> List[Tuple[np.ndarray, object]]:
        """The archived (values, payload) pairs in first-seen order."""
        return list(zip(self._values, self._payloads))
