"""Vectorized non-dominated sorting and Pareto-front maintenance.

All functions operate on a ``(n, k)`` float array of objective values,
minimized componentwise.  Domination is the standard weak form: ``a``
dominates ``b`` iff ``a <= b`` in every component and ``a < b`` in at
least one -- so exact duplicates never dominate each other and share a
front.  Infinities are legal (infeasible points are conventionally scored
``+inf`` in every component, which puts them behind every feasible
point).

The sorts are deterministic functions of the input order: peeling
preserves index order within each front, which is what makes Pareto
fronts reproducible for fixed seeds.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "domination_matrix",
    "non_dominated_mask",
    "non_dominated_sort",
    "crowding_distance",
    "ParetoArchive",
]


def _as_values(values) -> np.ndarray:
    values = np.asarray(values, dtype=np.float64)
    if values.ndim == 1:
        values = values.reshape(-1, 1)
    if values.ndim != 2:
        raise ValueError(
            f"objective values must be a (n, k) array, got shape "
            f"{values.shape}")
    return values


def domination_matrix(values) -> np.ndarray:
    """Boolean ``(n, n)`` matrix: ``D[i, j]`` iff point i dominates j.

    One broadcasted comparison pair -- O(n^2 k) memory, no Python loop --
    which is fast for the population sizes the GA breeds (hundreds).
    """
    values = _as_values(values)
    a = values[:, None, :]
    b = values[None, :, :]
    return (a <= b).all(axis=2) & (a < b).any(axis=2)


def non_dominated_mask(values) -> np.ndarray:
    """Boolean ``(n,)`` mask of the points no other point dominates."""
    values = _as_values(values)
    if len(values) == 0:
        return np.zeros(0, dtype=bool)
    return ~domination_matrix(values).any(axis=0)


def non_dominated_sort(values) -> np.ndarray:
    """NSGA-II fast non-dominated sort: the front rank of every point.

    Rank 0 is the Pareto front; rank ``r`` points are non-dominated once
    every rank ``< r`` point is removed.  Implemented by peeling fronts
    off a precomputed domination-count vector, all array arithmetic.
    """
    values = _as_values(values)
    n = len(values)
    ranks = np.zeros(n, dtype=np.int64)
    if n == 0:
        return ranks
    dominates = domination_matrix(values)
    # dominated_by[j] = number of points currently dominating j.
    dominated_by = dominates.sum(axis=0)
    remaining = np.ones(n, dtype=bool)
    rank = 0
    while remaining.any():
        front = remaining & (dominated_by == 0)
        if not front.any():  # pragma: no cover - domination is acyclic
            raise RuntimeError("non-dominated sort failed to progress")
        ranks[front] = rank
        remaining &= ~front
        # Removing the front releases its domination counts.
        dominated_by -= dominates[front].sum(axis=0)
        rank += 1
    return ranks


def crowding_distance(values) -> np.ndarray:
    """NSGA-II crowding distance of each point *within one front*.

    Boundary points (componentwise extremes) get ``inf`` so selection
    keeps the front's spread; interior points get the normalized
    perimeter of their neighbor cuboid.  Callers sort descending.
    """
    values = _as_values(values)
    n, k = values.shape
    distance = np.zeros(n, dtype=np.float64)
    if n <= 2:
        distance[:] = np.inf
        return distance
    for component in range(k):
        order = np.argsort(values[:, component], kind="stable")
        component_values = values[order, component]
        distance[order[0]] = np.inf
        distance[order[-1]] = np.inf
        lo, hi = component_values[0], component_values[-1]
        # Degenerate spans (all equal, or infinite endpoints from
        # infeasible rows) contribute no crowding on this axis; checking
        # before subtracting avoids an inf - inf NaN warning.
        if hi <= lo or not (np.isfinite(lo) and np.isfinite(hi)):
            continue
        gaps = (component_values[2:] - component_values[:-2]) / (hi - lo)
        distance[order[1:-1]] += gaps
    return distance


class ParetoArchive:
    """An incrementally maintained non-dominated set with payloads.

    The GA streams every feasible evaluation through the archive; at any
    point :meth:`front` returns the current Pareto set (values and the
    caller's payloads) in first-seen order, deduplicated on exact value
    ties so repeated genomes do not balloon the front.

    Args:
        max_size: Optional cap; when exceeded the most crowded points
            are dropped (crowding-distance pruning), keeping the spread.
    """

    def __init__(self, max_size: Optional[int] = None) -> None:
        if max_size is not None and max_size < 1:
            raise ValueError("max_size must be >= 1 (or None)")
        self.max_size = max_size
        self._values: List[np.ndarray] = []
        self._payloads: List[object] = []

    def __len__(self) -> int:
        return len(self._values)

    def add(self, values, payload=None) -> bool:
        """Offer one point; returns True if it joined the archive."""
        values = np.asarray(values, dtype=np.float64).reshape(-1)
        for kept in self._values:
            if ((kept <= values).all() and (kept < values).any()) \
                    or (kept == values).all():
                return False
        keep = [i for i, kept in enumerate(self._values)
                if not ((values <= kept).all() and (values < kept).any())]
        if len(keep) != len(self._values):
            self._values = [self._values[i] for i in keep]
            self._payloads = [self._payloads[i] for i in keep]
        self._values.append(values)
        self._payloads.append(payload)
        if self.max_size is not None and len(self._values) > self.max_size:
            self._prune()
        return True

    def extend(self, values, payloads: Sequence) -> int:
        """Offer many points; returns how many joined."""
        added = 0
        for row, payload in zip(np.asarray(values, dtype=np.float64),
                                payloads):
            added += bool(self.add(row, payload))
        return added

    def _prune(self) -> None:
        stacked = np.stack(self._values)
        crowding = crowding_distance(stacked)
        # Drop the single most crowded (smallest distance) point; ties
        # resolve to the earliest index for determinism.
        drop = int(np.argmin(crowding))
        del self._values[drop]
        del self._payloads[drop]

    def front(self) -> List[Tuple[np.ndarray, object]]:
        """The archived (values, payload) pairs in first-seen order."""
        return list(zip(self._values, self._payloads))
