"""One global registry and spec grammar for optimization objectives.

Objectives reach a search through ``SearchSpec.objective`` (and the CLI's
``--objective``), which must stay JSON-serializable.  The registry maps
*specs* -- a plain name, a compact string form, or a structured dict --
to :class:`~repro.objectives.base.Objective` instances:

========================================  ==================================
spec                                      objective
========================================  ==================================
``"latency"``                             registered named objective
``"weighted:latency=0.5,energy=0.5"``     weighted component sum
``"multi:latency,energy"``                Pareto trade-off of named parts
``{"kind": "weighted", "weights": ...}``  dict forms of the same, plus
``{"kind": "penalty", ...}``              penalty-augmented objectives
``{"kind": "multi", "components": ...}``  (dicts nest; strings stay flat)
an ``Objective`` instance                 passed through unchanged
========================================  ==================================

``resolve_objective`` is idempotent on canonical specs, which is what
keeps ``SearchSpec`` JSON round-trips exact.  Registering a new named
objective::

    from repro.objectives import Objective, register_objective

    class CyclesPerMac(Objective):
        name = "cycles-per-mac"
        def evaluate(self, report):
            return report.latency_cycles / report.macs
        def spec(self):
            return "cycles-per-mac"

    register_objective("cycles-per-mac", CyclesPerMac)

after which ``repro.explore(objective="cycles-per-mac")`` just works.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Union

from repro.objectives.base import (
    COMPONENT_ORDER,
    ComponentObjective,
    MultiObjective,
    Objective,
    PenaltyObjective,
    WeightedObjective,
)

__all__ = [
    "register_objective",
    "unregister_objective",
    "get_objective",
    "list_objectives",
    "resolve_objective",
    "objective_spec",
    "objective_label",
    "objective_cost_label",
]

#: name -> zero-argument factory producing the named objective.
_REGISTRY: Dict[str, Callable[[], Objective]] = {}


def register_objective(name: str, factory: Callable[[], Objective], *,
                       overwrite: bool = False) -> None:
    """Register a named objective; ``factory()`` must build it.

    Raises:
        ValueError: on a duplicate ``name`` unless ``overwrite=True``.
    """
    if not overwrite and name in _REGISTRY:
        raise ValueError(
            f"objective {name!r} is already registered; "
            f"pass overwrite=True to replace it")
    _REGISTRY[name] = factory


def unregister_objective(name: str) -> None:
    """Remove ``name`` from the registry (primarily for tests)."""
    _REGISTRY.pop(name, None)


def get_objective(name: str) -> Objective:
    """Build the named objective, failing fast on typos."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown objective {name!r}; available: "
            f"{', '.join(sorted(_REGISTRY))} (or a weighted:/multi: "
            f"spec)") from None
    return factory()


def list_objectives() -> List[str]:
    """Registered objective names in registration order."""
    return list(_REGISTRY)


# ----------------------------------------------------------------------
# Spec parsing
# ----------------------------------------------------------------------
def _parse_weighted(body: str) -> WeightedObjective:
    weights: Dict[str, float] = {}
    for item in body.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ValueError(
                f"weighted spec items must be component=weight, got "
                f"{item!r} (example: weighted:latency=0.5,energy=0.5)")
        component, _, value = item.partition("=")
        try:
            weights[component.strip()] = float(value)
        except ValueError:
            raise ValueError(
                f"bad weight {value!r} for component {component!r}"
            ) from None
    if not weights:
        raise ValueError("weighted spec carries no weights")
    return WeightedObjective(weights)


def _parse_multi(body: str) -> MultiObjective:
    names = [name.strip() for name in body.split(",") if name.strip()]
    if not names:
        raise ValueError(
            "multi spec carries no components "
            "(example: multi:latency,energy)")
    return MultiObjective([resolve_objective(name) for name in names])


def _from_dict(data: dict) -> Objective:
    kind = data.get("kind")
    if kind == "weighted":
        return WeightedObjective(dict(data["weights"]))
    if kind == "penalty":
        return PenaltyObjective(
            base=resolve_objective(data["base"]),
            limit_on=data["limit_on"],
            limit=data["limit"],
            weight=data.get("weight", 1.0))
    if kind == "multi":
        return MultiObjective(
            [resolve_objective(component)
             for component in data["components"]])
    raise ValueError(
        f"unknown objective spec kind {kind!r}; available kinds: "
        f"weighted, penalty, multi")


def resolve_objective(spec: Union[str, dict, Objective]) -> Objective:
    """Resolve any objective spec to an :class:`Objective` instance.

    Accepts an instance (returned unchanged), a registered name, a
    compact ``weighted:...`` / ``multi:...`` string, or a structured
    dict.  Raises ``KeyError`` for unknown names (matching the legacy
    string path) and ``ValueError`` for malformed composite specs.
    """
    if isinstance(spec, Objective):
        return spec
    if isinstance(spec, dict):
        return _from_dict(spec)
    if isinstance(spec, str):
        if spec.startswith("weighted:"):
            return _parse_weighted(spec[len("weighted:"):])
        if spec.startswith("multi:"):
            return _parse_multi(spec[len("multi:"):])
        return get_objective(spec)
    raise TypeError(
        f"objective spec must be a name, a spec dict, or an Objective "
        f"instance, got {type(spec).__name__}")


def objective_spec(spec: Union[str, dict, Objective]) -> Union[str, dict]:
    """The canonical JSON-safe form of any accepted objective spec."""
    return resolve_objective(spec).spec()


def objective_label(spec: Union[str, dict, Objective]) -> str:
    """A short human-readable label for tables and summaries."""
    if isinstance(spec, str) and not spec.startswith(("weighted:",
                                                      "multi:")):
        return spec
    return resolve_objective(spec).name


def objective_cost_label(spec: Union[str, dict, Objective]) -> str:
    """Label for a *scalar best-cost figure* produced under ``spec``.

    Scalar bookkeeping (``best_cost``, convergence histories) tracks
    only the primary component of a multi objective, so labelling that
    figure with the full multi name would misrepresent it; this returns
    the primary component's name with the trade-off as context.
    """
    objective = resolve_objective(spec)
    if objective.is_multi:
        return (f"{objective.components[0].name} "
                f"(primary of {objective.name})")
    return objective.name


# ----------------------------------------------------------------------
# Built-in registrations: the five components, minimized directly.
for _component in COMPONENT_ORDER:
    register_objective(
        _component,
        (lambda c=_component: ComponentObjective(c)))
del _component
