"""Precompiled fused cost-model tensor programs (ROADMAP item 3).

The batched engine (:mod:`repro.costmodel.batched`) already evaluates a
whole population in array arithmetic, but every call still walks a chain
of allocations: per-style masked selects, ``LayerTable`` gathers, and an
epilogue of ~30 intermediate arrays.  :func:`compile_program` folds all
of that **once per (model, platform)** into a :class:`FusedProgram`:

* Per-layer constants (window sizes, tile caps, negated numerators for
  in-place ceiling division, DRAM cycles, the layer-only energy terms)
  are computed at compile time into ``(L,)`` rows.
* When the batch is the evaluator's standard *tiled* layout
  (``layer_idx == tile(arange(L), P)`` -- every whole-population call),
  the batch is viewed as a ``(P, L)`` tensor and the rows broadcast:
  every per-element gather disappears.  Any other layout (parallel
  backend shards, hand-built batches) falls back to gathered rows --
  same values, the fast path is only a layout observation.
* Single-style batches (every fixed-dataflow search) run exactly one
  style's plan; mixed batches compact each present style's rows with a
  gather, plan them at their compacted size, and scatter the results
  back -- elementwise identical to the batched engine's masked-select
  loop, with each element planned exactly once.
* Intermediates live in preallocated, thread-local scratch buffers that
  are reused across calls (report arrays are always freshly allocated:
  callers hold on to them).

Three compiled kinds share the interface behind the
``SearchSpec.kernel`` / ``$REPRO_KERNEL`` knob:

* ``"fused"`` -- float64, **bit-identical** to the batched engine (and
  therefore to the scalar estimator); the parity suites lock this.
* ``"fused32"`` -- the float epilogue in float32: faster and half the
  memory traffic, at ~1e-7 relative error on the float outputs (integer
  outputs -- ``pes_used``, ``l2_bytes``, ``tile_k`` -- stay exact).
* ``"fused-jit"`` -- a numba ``@njit`` element loop compiled on first
  use; requires numba to be installed (opt-in, never imported
  otherwise) and raises a clear error when it is missing.

Like :func:`~repro.costmodel.batched.evaluate_batch_kernel`, a compiled
program is elementwise over the batch axis and therefore
*shard-invariant*: the execution backends ship ``(table, kernel)`` to
their workers once and reuse the worker-side compiled program for every
shard.  See PERFORMANCE.md ("Fused tensor programs") for measurements.
"""

from __future__ import annotations

import importlib.util
import os
import threading
from collections import OrderedDict
from types import SimpleNamespace
from typing import NamedTuple, Optional, Tuple

import numpy as np

from repro.costmodel.constants import HardwareConfig
from repro.costmodel.dataflow import fold_layer_rows
from repro.costmodel.report import BatchCostReport

__all__ = [
    "DEFAULT_KERNEL",
    "KERNELS",
    "KERNEL_ENV",
    "ConstraintFold",
    "FusedProgram",
    "LRUCache",
    "compile_program",
    "numba_available",
    "resolve_kernel",
]

#: Kernel names accepted by ``SearchSpec.kernel`` / ``$REPRO_KERNEL``.
KERNELS: Tuple[str, ...] = ("batched", "fused", "fused32", "fused-jit")

#: The reference engine (``evaluate_batch_kernel``) runs when no kernel
#: is requested.
DEFAULT_KERNEL = "batched"

#: Environment variable consulted when neither the spec nor the caller
#: names a kernel.
KERNEL_ENV = "REPRO_KERNEL"


def resolve_kernel(kernel: Optional[str] = None) -> str:
    """The effective kernel name: ``kernel``, else ``$REPRO_KERNEL``,
    else :data:`DEFAULT_KERNEL`.  Every kernel is bit-identical to the
    batched engine except ``fused32`` (documented float32 error bounds),
    so the env var is a safe deploy-time knob."""
    if kernel is None:
        kernel = os.environ.get(KERNEL_ENV) or DEFAULT_KERNEL
    if kernel not in KERNELS:
        raise ValueError(
            f"kernel must be one of {KERNELS}, got {kernel!r}")
    return kernel


def numba_available() -> bool:
    """Whether the opt-in ``fused-jit`` kernel can compile here."""
    return importlib.util.find_spec("numba") is not None


class LRUCache:
    """A small, thread-safe least-recently-used mapping.

    Used to bound the per-owner caches this subsystem needs -- compiled
    programs keyed by ``(table_token(table), kind)`` and the
    single-layer ``LayerTable`` cache -- so long-lived ``repro serve``
    processes sweeping many models never grow without bound.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._data: "OrderedDict" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key, default=None):
        with self._lock:
            try:
                self._data.move_to_end(key)
                return self._data[key]
            except KeyError:
                return default

    def put(self, key, value) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._data


# ----------------------------------------------------------------------
# Internal helpers
# ----------------------------------------------------------------------
class _Scratch:
    """Named, shape-checked buffer pool (one per thread per program)."""

    def __init__(self) -> None:
        self._bufs = {}

    def get(self, name: str, shape, dtype) -> np.ndarray:
        buf = self._bufs.get(name)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = np.empty(shape, dtype=dtype)
            self._bufs[name] = buf
        return buf


class _GatherView:
    """Lazily gathers ``(L,)`` rows to ``(n,)`` for non-tiled batches.

    Attribute access gathers once and memoizes on the instance, so a
    plan only pays for the rows it actually touches.
    """

    def __init__(self, rows: SimpleNamespace, layer_idx: np.ndarray) -> None:
        object.__setattr__(self, "_rows", rows)
        object.__setattr__(self, "_li", layer_idx)

    def __getattr__(self, name: str):
        value = getattr(self._rows, name)[self._li]
        object.__setattr__(self, name, value)
        return value


#: Style row indices, fixed by ``repro.costmodel.batched.BATCH_STYLES``
#: (= ``DATAFLOW_ORDER``): dla=0, shi=1, eye=2.  Asserted at compile
#: time so a reorder cannot silently mis-route plans.
_DLA, _SHI, _EYE = 0, 1, 2


class ConstraintFold(NamedTuple):
    """Per-population reductions folded into the fused epilogue.

    Produced by :meth:`FusedProgram.evaluate_constrained` when the batch
    is in the evaluator's tiled ``(P, L)`` layout: the four cost totals
    plus the platform-budget comparison the population evaluator would
    otherwise compute in a separate post-pass over the report arrays.
    Every field is bit-identical to that two-step path -- the sums
    accumulate column by column through
    :func:`repro.costmodel.batched.ordered_row_sum` on the very arrays
    the report carries, so skipping the post-pass can never change a
    search trajectory.
    """

    latency_total: np.ndarray
    energy_total: np.ndarray
    area_total: np.ndarray
    power_total: np.ndarray
    #: The budgeted quantity (``area_total`` or ``power_total``).
    used: np.ndarray
    #: ``used <= budget`` per population row.
    feasible: np.ndarray


class FusedProgram:
    """One compiled (hardware platform, layer table) tensor program.

    Build with :func:`compile_program`; call :meth:`evaluate` with the
    same validated arrays :func:`~repro.costmodel.batched
    .evaluate_batch_kernel` takes.  Instances are immutable after
    construction apart from thread-local scratch, so one program may be
    shared by concurrent threads (the thread backend does).
    """

    def __init__(self, hw: HardwareConfig, table, kind: str = "fused") -> None:
        if kind not in ("fused", "fused32", "fused-jit"):
            raise ValueError(
                f"compiled kernel must be one of ('fused', 'fused32', "
                f"'fused-jit'), got {kind!r}")
        if kind == "fused-jit" and not numba_available():
            raise RuntimeError(
                "kernel 'fused-jit' requires numba, which is not "
                "installed; use 'fused' (bit-identical) or 'fused32'")
        from repro.costmodel.batched import BATCH_STYLES

        assert tuple(BATCH_STYLES) == ("dla", "shi", "eye"), BATCH_STYLES
        self.hw = hw
        self.table = table
        self.kind = kind
        self._f32 = kind == "fused32"
        ft = np.float32 if self._f32 else np.float64
        self.ft = ft
        self._L = len(table.layers)
        self._arange = np.arange(self._L, dtype=np.int64)
        self._tls = threading.local()

        # -- per-layer integer rows (style plan constants) --------------
        rows = SimpleNamespace(**fold_layer_rows(
            table.K, table.C, table.out_y, table.out_x, table.R, table.S,
            table.is_dw))
        # -- per-layer float rows (estimator epilogue constants) --------
        rows.R_f = table.R.astype(ft)
        rows.we_f = table.weight_elements.astype(ft)
        rows.ie_f = table.input_elements.astype(ft)
        rows.oe_f = table.output_elements.astype(ft)
        rows.dram64 = table.dram_bytes  # float64, reported verbatim
        rows.dram_f = table.dram_bytes.astype(ft)
        rows.mem_cycles = rows.dram_f / ft(hw.dram_bandwidth_bytes_per_cycle)
        rows.macs = table.macs
        macs_f = table.macs.astype(ft) if self._f32 else table.macs
        # The first two dynamic-energy terms depend only on the layer;
        # precomputing their (left-associated) sum preserves the scalar
        # path's rounding: ((t1+t2)+t3)+t4 == (dyn12+t3)+dyn4.
        rows.dyn12 = (macs_f * ft(hw.mac_energy_pj)
                      + macs_f * ft(hw.l1_accesses_per_mac)
                      * ft(hw.l1_energy_per_byte_pj))
        rows.dyn4 = rows.dram_f * ft(hw.dram_energy_per_byte_pj)
        self.rows = rows

        # -- hardware scalars in the program dtype ----------------------
        self._fill = ft(hw.pipeline_fill_cycles)
        self._l2sz64 = np.float64(hw.l2_double_sizing)
        self._mac_area = ft(hw.mac_area_um2)
        self._l1_area_pb = ft(hw.l1_area_per_byte_um2)
        self._l2_area_pb = ft(hw.l2_area_per_byte_um2)
        self._noc_pp = ft(hw.noc_area_per_pe_um2)
        self._l2e = ft(hw.l2_energy_per_byte_pj)
        self._pe_sp = ft(hw.pe_static_power_mw)
        self._l1_sp = ft(hw.l1_static_power_mw_per_byte)
        self._l2_sp = ft(hw.l2_static_power_mw_per_byte)
        self._clock = ft(hw.clock_ghz)
        self._thousand = ft(1000.0)

        if kind == "fused-jit":
            self._jit = _get_jit_kernel()

    # ------------------------------------------------------------------
    def _scratch(self) -> _Scratch:
        scratch = getattr(self._tls, "scratch", None)
        if scratch is None:
            scratch = _Scratch()
            self._tls.scratch = scratch
        return scratch

    def _its(self, int_arr, scalar, out) -> np.ndarray:
        """``int_arr * scalar`` into ``out`` (mirrors the batched
        engine's int64-times-float-scalar products; fused32 converts
        explicitly so NEP-50 promotion cannot bounce back to float64)."""
        if self._f32:
            out[...] = int_arr
            np.multiply(out, scalar, out=out)
        else:
            np.multiply(int_arr, scalar, out=out)
        return out

    # ------------------------------------------------------------------
    # Style plans: elementwise transcriptions of Dataflow.plan_batch over
    # precomputed rows.  Integer reassociation is exact, so folding e.g.
    # out*window into one row changes no value; every float op keeps the
    # batched engine's expression order.
    # ------------------------------------------------------------------
    def _plan_dla(self, c, pes, l1, sc, shape):
        i64 = np.int64
        k = sc.get("dla_k", shape, i64)
        np.subtract(l1, c.window, out=k)
        np.floor_divide(k, c.wplus1, out=k)
        np.maximum(k, 1, out=k)
        np.minimum(k, c.K, out=k)
        np.maximum(k, 1, out=k)
        kt = sc.get("dla_kt", shape, i64)
        np.floor_divide(c.negK, k, out=kt)
        np.negative(kt, out=kt)
        units = sc.get("dla_units", shape, i64)
        np.multiply(kt, c.C, out=units)
        np.copyto(units, c.C, where=c.dw)
        um = sc.get("dla_um", shape, i64)
        np.multiply(k, c.outwin, out=um)
        np.copyto(um, c.outwin, where=c.dw)
        co = sc.get("dla_co", shape, i64)
        np.floor_divide(pes, c.Cmax1, out=co)
        np.minimum(co, kt, out=co)
        np.maximum(co, 1, out=co)
        t = sc.get("dla_t", shape, i64)
        np.negative(kt, out=t)
        np.floor_divide(t, co, out=t)
        np.negative(t, out=t)
        np.copyto(t, 1, where=c.dw)
        inf = sc.get("dla_inf", shape, self.ft)
        inf[...] = t
        cs = sc.get("dla_cs", shape, i64)
        np.floor_divide(pes, kt, out=cs)
        mask = sc.get("dla_mask", shape, bool)
        np.less(pes, kt, out=mask)
        np.copyto(cs, 1, where=mask)
        np.minimum(cs, c.C, out=cs)
        np.maximum(cs, 1, out=cs)
        np.floor_divide(c.negC, cs, out=cs)
        np.negative(cs, out=cs)
        np.copyto(cs, 1, where=c.dw)
        outf = sc.get("dla_outf", shape, self.ft)
        outf[...] = cs
        return SimpleNamespace(units=units, unit_macs=um, wf=None, inf=inf,
                               outf=outf, k=k, dw_tile=True)

    def _plan_eye(self, c, pes, l1, sc, shape):
        i64 = np.int64
        k = sc.get("eye_k", shape, i64)
        np.subtract(l1, c.S, out=k)
        np.floor_divide(k, c.Splus1, out=k)
        np.maximum(k, 1, out=k)
        np.minimum(k, c.cap, out=k)
        np.maximum(k, 1, out=k)
        ct = sc.get("eye_ct", shape, i64)
        np.floor_divide(c.neg_cap, k, out=ct)
        np.negative(ct, out=ct)
        um = sc.get("eye_um", shape, i64)
        np.multiply(k, c.um_eye, out=um)
        units = sc.get("eye_units", shape, i64)
        np.multiply(c.oyR, ct, out=units)
        co = sc.get("eye_co", shape, i64)
        np.floor_divide(pes, c.Rmax1, out=co)
        np.minimum(co, c.out_y, out=co)
        np.maximum(co, 1, out=co)
        t = sc.get("eye_t", shape, i64)
        np.floor_divide(c.neg_outy, co, out=t)
        np.negative(t, out=t)
        wf = sc.get("eye_wf", shape, self.ft)
        wf[...] = t
        np.floor_divide(pes, c.oyRmax1, out=co)
        np.minimum(co, ct, out=co)
        np.maximum(co, 1, out=co)
        np.negative(ct, out=t)
        np.floor_divide(t, co, out=t)
        np.negative(t, out=t)
        inf = sc.get("eye_inf", shape, self.ft)
        inf[...] = t
        outf = sc.get("eye_outf", shape, self.ft)
        outf[...] = 1.0
        mask = sc.get("eye_mask", shape, bool)
        np.less(pes, c.R, out=mask)
        np.copyto(outf, c.R_f, where=mask)
        return SimpleNamespace(units=units, unit_macs=um, wf=wf, inf=inf,
                               outf=outf, k=k, dw_tile=False)

    def _plan_shi(self, c, pes, l1, sc, shape):
        i64 = np.int64
        k = sc.get("shi_k", shape, i64)
        np.subtract(l1, c.winpS, out=k)
        np.floor_divide(k, 2, out=k)
        np.maximum(k, 1, out=k)
        np.minimum(k, c.cap, out=k)
        np.maximum(k, 1, out=k)
        ct = sc.get("shi_ct", shape, i64)
        np.floor_divide(c.neg_cap, k, out=ct)
        np.negative(ct, out=ct)
        um = sc.get("shi_um", shape, i64)
        np.multiply(k, c.um_shi, out=um)
        units = sc.get("shi_units", shape, i64)
        np.multiply(c.out, ct, out=units)
        t = sc.get("shi_t", shape, i64)
        np.minimum(pes, units, out=t)
        np.maximum(t, 1, out=t)
        p = sc.get("shi_p", shape, i64)
        np.negative(units, out=p)
        np.floor_divide(p, t, out=p)
        np.negative(p, out=p)  # passes
        wf = sc.get("shi_wf", shape, self.ft)
        wf[...] = p
        np.subtract(p, 1, out=p)
        inf = sc.get("shi_inf", shape, self.ft)
        inf[...] = p
        np.multiply(inf, self.ft(0.25), out=inf)
        np.add(inf, self.ft(1.0), out=inf)
        return SimpleNamespace(units=units, unit_macs=um, wf=wf, inf=inf,
                               outf=None, k=k, dw_tile=False)

    _PLANNERS = {_DLA: _plan_dla, _SHI: _plan_shi, _EYE: _plan_eye}

    def _plan_mix(self, st, c, pes, l1, sc, shape):
        """Per-style compacted plans: gather only the rows of each
        present style, plan them at their compacted size, and scatter
        the results back.  Elementwise identical to the batched
        engine's masked-select loop (every plan operation is
        elementwise over the batch axis), but each element is planned
        exactly once -- the old where-lattice planned every present
        style over the *full* tensor and selected with boolean masks,
        ~3x the arithmetic on an all-style MIX batch."""
        i64 = np.int64
        sel = SimpleNamespace(
            units=sc.get("mix_units", shape, i64),
            unit_macs=sc.get("mix_um", shape, i64),
            wf=sc.get("mix_wf", shape, self.ft),
            inf=sc.get("mix_inf", shape, self.ft),
            outf=sc.get("mix_outf", shape, self.ft),
            k=sc.get("mix_k", shape, i64),
            dw_tile=False,
        )
        st_flat = st.reshape(-1)
        pes_flat = pes.reshape(-1)
        l1_flat = l1.reshape(-1)
        tiled = c is self.rows
        if not tiled:
            layer_flat = c._li
        one = self.ft(1.0)
        for style in np.unique(st_flat):
            idx = np.flatnonzero(st_flat == style)
            # Tiled layout: flat element i evaluates layer i mod L.
            compact_li = idx % self._L if tiled else layer_flat[idx]
            cv = _GatherView(self.rows, compact_li)
            plan = self._PLANNERS[int(style)](
                self, cv, pes_flat[idx], l1_flat[idx], sc, (idx.size,))
            sel.units.reshape(-1)[idx] = plan.units
            sel.unit_macs.reshape(-1)[idx] = plan.unit_macs
            sel.inf.reshape(-1)[idx] = plan.inf
            sel.wf.reshape(-1)[idx] = (
                plan.wf if plan.wf is not None else one)
            sel.outf.reshape(-1)[idx] = (
                plan.outf if plan.outf is not None else one)
            k = plan.k
            if plan.dw_tile:
                # Fold the dla depthwise tile override into the
                # compacted rows so the scattered selection is final.
                np.copyto(k, 1, where=cv.dw)
            sel.k.reshape(-1)[idx] = k
        return sel

    # ------------------------------------------------------------------
    def evaluate(self, layer_idx: np.ndarray, style_idx: np.ndarray,
                 pes: np.ndarray, l1_bytes: np.ndarray) -> BatchCostReport:
        """Evaluate one validated batch (see ``evaluate_batch_kernel``:
        same contract, same shard-invariance)."""
        if self.kind == "fused-jit":
            return self._evaluate_jit(layer_idx, style_idx, pes, l1_bytes)
        return self._run(layer_idx, style_idx, pes, l1_bytes)[0]

    # ------------------------------------------------------------------
    def evaluate_constrained(
        self, layer_idx: np.ndarray, style_idx: np.ndarray,
        pes: np.ndarray, l1_bytes: np.ndarray, deployment: str,
        kind: str, budget: float,
    ) -> Tuple[BatchCostReport, Optional[ConstraintFold]]:
        """Evaluate a batch and fold the platform budget check in.

        Same contract as :meth:`evaluate`, plus the evaluator's
        reduction parameters: ``deployment`` (``"lp"`` sums per-layer
        rows, ``"ls"`` takes the row max for area/power), the platform
        constraint ``kind`` (``"area"`` or ``"power"``) and its
        ``budget``.  Returns ``(report, fold)``; ``fold`` is ``None``
        when the batch is not in the tiled population layout (or under
        ``fused-jit``, which has no epilogue views) -- callers then run
        their usual post-pass over the report.
        """
        if self.kind == "fused-jit":
            return (self._evaluate_jit(layer_idx, style_idx, pes,
                                       l1_bytes), None)
        report, shape = self._run(layer_idx, style_idx, pes, l1_bytes)
        if len(shape) != 2:
            return report, None
        return report, self._fold(report, shape, deployment, kind, budget)

    # ------------------------------------------------------------------
    def _run(self, layer_idx, style_idx, pes, l1_bytes):
        """Plan + epilogue for one batch; returns ``(report, shape)``
        so callers can tell the tiled ``(P, L)`` layout apart."""
        n = layer_idx.size
        L = self._L
        sc = self._scratch()
        if n % L == 0 and bool(
                (layer_idx.reshape(-1, L) == self._arange).all()):
            shape = (n // L, L)
            c = self.rows
        else:
            shape = (n,)
            c = _GatherView(self.rows, layer_idx)
        pes_v = pes.reshape(shape)
        l1_v = l1_bytes.reshape(shape)

        first = int(style_idx[0])
        if bool((style_idx == first).all()):
            plan = self._PLANNERS[first](self, c, pes_v, l1_v, sc, shape)
        else:
            plan = self._plan_mix(style_idx.reshape(shape), c, pes_v, l1_v,
                                  sc, shape)
        report = self._epilogue(c, plan, pes_v, l1_v, l1_bytes, sc, shape, n)
        return report, shape

    # ------------------------------------------------------------------
    @staticmethod
    def _fold(report, shape, deployment, kind, budget) -> ConstraintFold:
        """The evaluator's population reductions, over the report arrays
        while they are still cache-hot.  Deferred import: ``batched``
        imports this module at load time, but is always fully
        initialized by the first evaluation."""
        from repro.costmodel.batched import ordered_row_sum

        latency = report.latency_cycles.reshape(shape)
        energy = report.energy_nj.reshape(shape)
        area = report.area_um2.reshape(shape)
        power = report.power_mw.reshape(shape)
        latency_total = ordered_row_sum(latency)
        energy_total = ordered_row_sum(energy)
        if deployment == "ls":
            area_total = area.max(axis=1)
            power_total = power.max(axis=1)
        else:
            area_total = ordered_row_sum(area)
            power_total = ordered_row_sum(power)
        used = area_total if kind == "area" else power_total
        return ConstraintFold(
            latency_total=latency_total,
            energy_total=energy_total,
            area_total=area_total,
            power_total=power_total,
            used=used,
            feasible=used <= budget,
        )

    # ------------------------------------------------------------------
    def _epilogue(self, c, plan, pes_v, l1_v, l1_flat, sc, shape,
                  n) -> BatchCostReport:
        """The estimator epilogue over one planned batch.  Output arrays
        are freshly allocated (consumers keep reports); intermediates
        reuse scratch."""
        ft = self.ft
        i64 = np.int64

        def fresh(dtype):
            flat = np.empty(n, dtype=dtype)
            return flat, flat.reshape(shape)

        units, um = plan.units, plan.unit_macs
        pes_used, pu_v = fresh(i64)
        np.minimum(pes_v, units, out=pu_v)
        passes = sc.get("ep_passes", shape, i64)
        np.negative(units, out=passes)
        np.floor_divide(passes, pu_v, out=passes)
        np.negative(passes, out=passes)
        ti = sc.get("ep_ti", shape, i64)
        np.multiply(passes, um, out=ti)
        compute_cycles, cc_v = fresh(ft)
        cc_v[...] = ti
        np.multiply(passes, pu_v, out=passes)
        utilization, util_v = fresh(ft)
        np.divide(units, passes, out=util_v)

        # L2 traffic: (weight + input) + output bytes, batched order.
        ib = sc.get("ep_ib", shape, ft)
        np.multiply(c.ie_f, plan.inf, out=ib)
        l2_traffic, l2t_v = fresh(ft)
        if plan.wf is None:
            np.add(c.we_f, ib, out=l2t_v)
        else:
            wb = sc.get("ep_wb", shape, ft)
            np.multiply(c.we_f, plan.wf, out=wb)
            np.add(wb, ib, out=l2t_v)
        if plan.outf is None:
            np.add(l2t_v, c.oe_f, out=l2t_v)
        else:
            np.multiply(c.oe_f, plan.outf, out=ib)
            np.add(l2t_v, ib, out=l2t_v)

        dram_bytes, dram_v = fresh(np.float64)
        dram_v[...] = c.dram64
        memory_cycles, mc_v = fresh(ft)
        mc_v[...] = c.mem_cycles
        latency, lat_v = fresh(ft)
        np.maximum(cc_v, mc_v, out=lat_v)
        np.add(lat_v, self._fill, out=lat_v)

        # L2 sizing stays float64 in every kind so the integer output is
        # exact: ceil((sizing * pes) * l1) in the batched order.
        f64 = sc.get("ep_f64", shape, np.float64)
        np.multiply(pes_v, self._l2sz64, out=f64)
        np.multiply(f64, l1_v, out=f64)
        np.ceil(f64, out=f64)
        l2_bytes, l2b_v = fresh(i64)
        l2b_v[...] = f64

        pe_area, pa_v = fresh(ft)
        self._its(pes_v, self._mac_area, pa_v)
        l1_area, la_v = fresh(ft)
        self._its(l1_v, self._l1_area_pb, la_v)
        np.multiply(la_v, pes_v, out=la_v)
        l2_area, l2a_v = fresh(ft)
        self._its(l2b_v, self._l2_area_pb, l2a_v)
        noc_area, noc_v = fresh(ft)
        self._its(pes_v, self._noc_pp, noc_v)
        area, area_v = fresh(ft)
        np.add(pa_v, la_v, out=area_v)
        np.add(area_v, l2a_v, out=area_v)
        np.add(area_v, noc_v, out=area_v)

        macs, macs_v = fresh(i64)
        macs_v[...] = c.macs
        dyn = sc.get("ep_dyn", shape, ft)
        np.multiply(l2t_v, self._l2e, out=dyn)
        np.add(c.dyn12, dyn, out=dyn)
        np.add(dyn, c.dyn4, out=dyn)

        sm = sc.get("ep_sm", shape, ft)
        self._its(pes_v, self._pe_sp, sm)
        tf = sc.get("ep_tf", shape, ft)
        np.multiply(pes_v, l1_v, out=ti)
        self._its(ti, self._l1_sp, tf)
        np.add(sm, tf, out=sm)
        self._its(l2b_v, self._l2_sp, tf)
        np.add(sm, tf, out=sm)
        np.multiply(sm, lat_v, out=sm)
        np.divide(sm, self._clock, out=sm)

        energy, en_v = fresh(ft)
        np.add(dyn, sm, out=en_v)
        power, pw_v = fresh(ft)
        np.divide(en_v, lat_v, out=pw_v)
        np.multiply(pw_v, self._clock, out=pw_v)
        np.divide(en_v, self._thousand, out=en_v)  # energy_pj -> nJ

        tile_k, tk_v = fresh(i64)
        tk_v[...] = plan.k
        if plan.dw_tile:
            np.copyto(tk_v, 1, where=c.dw)

        return BatchCostReport(
            latency_cycles=latency,
            energy_nj=energy,
            area_um2=area,
            power_mw=power,
            pes_used=pes_used,
            pe_utilization=utilization,
            l1_bytes_per_pe=l1_flat,
            l2_bytes=l2_bytes,
            tile_k=tile_k,
            macs=macs,
            dram_bytes=dram_bytes,
            l2_traffic_bytes=l2_traffic,
            compute_cycles=compute_cycles,
            memory_cycles=memory_cycles,
            pe_area_um2=pe_area,
            l1_area_um2=l1_area,
            l2_area_um2=l2_area,
            noc_area_um2=noc_area,
        )

    # ------------------------------------------------------------------
    def _evaluate_jit(self, layer_idx, style_idx, pes,
                      l1_bytes) -> BatchCostReport:
        n = layer_idx.size
        t, hw = self.table, self.hw
        f64, i64 = np.float64, np.int64
        outs = {
            "latency_cycles": np.empty(n, f64),
            "energy_nj": np.empty(n, f64),
            "area_um2": np.empty(n, f64),
            "power_mw": np.empty(n, f64),
            "pes_used": np.empty(n, i64),
            "pe_utilization": np.empty(n, f64),
            "l2_bytes": np.empty(n, i64),
            "tile_k": np.empty(n, i64),
            "macs": np.empty(n, i64),
            "dram_bytes": np.empty(n, f64),
            "l2_traffic_bytes": np.empty(n, f64),
            "compute_cycles": np.empty(n, f64),
            "memory_cycles": np.empty(n, f64),
            "pe_area_um2": np.empty(n, f64),
            "l1_area_um2": np.empty(n, f64),
            "l2_area_um2": np.empty(n, f64),
            "noc_area_um2": np.empty(n, f64),
        }
        self._jit(
            layer_idx, style_idx, pes, l1_bytes,
            t.K, t.C, t.out_y, t.out_x, t.R, t.S, t.is_dw, t.macs,
            t.weight_elements, t.input_elements, t.output_elements,
            t.dram_bytes,
            hw.dram_bandwidth_bytes_per_cycle, hw.pipeline_fill_cycles,
            hw.l2_double_sizing, hw.mac_area_um2, hw.l1_area_per_byte_um2,
            hw.l2_area_per_byte_um2, hw.noc_area_per_pe_um2,
            hw.mac_energy_pj, hw.l1_accesses_per_mac,
            hw.l1_energy_per_byte_pj, hw.l2_energy_per_byte_pj,
            hw.dram_energy_per_byte_pj, hw.pe_static_power_mw,
            hw.l1_static_power_mw_per_byte, hw.l2_static_power_mw_per_byte,
            hw.clock_ghz,
            outs["latency_cycles"], outs["energy_nj"], outs["area_um2"],
            outs["power_mw"], outs["pes_used"], outs["pe_utilization"],
            outs["l2_bytes"], outs["tile_k"], outs["macs"],
            outs["dram_bytes"], outs["l2_traffic_bytes"],
            outs["compute_cycles"], outs["memory_cycles"],
            outs["pe_area_um2"], outs["l1_area_um2"], outs["l2_area_um2"],
            outs["noc_area_um2"])
        return BatchCostReport(l1_bytes_per_pe=l1_bytes, **outs)


_JIT_KERNEL = None


def _get_jit_kernel():
    """Compile (once per process) the numba element-loop kernel.

    The loop is a scalar transcription of the batched engine's
    elementwise operations in the same expression order, so its float64
    results match bit for bit.  Imported lazily: numba is strictly
    opt-in for this repository.
    """
    global _JIT_KERNEL
    if _JIT_KERNEL is not None:
        return _JIT_KERNEL
    import numba

    @numba.njit(cache=False)
    def kern(layer_idx, style_idx, pes_a, l1_a,
             K, C, OY, OX, R, S, DW, MACS, WE, IE, OE, DRAM,
             bw, fill, l2sz, mac_area, l1_area_pb, l2_area_pb, noc_pp,
             mac_e, l1a, l1e, l2e, dram_e, pe_sp, l1_sp, l2_sp, clock,
             lat_o, en_o, ar_o, pw_o, pu_o, util_o, l2b_o, tk_o, macs_o,
             dram_o, l2t_o, cc_o, mc_o, pa_o, la_o, l2a_o, no_o):
        for i in range(layer_idx.size):
            li = layer_idx[i]
            style = style_idx[i]
            pes = pes_a[i]
            l1 = l1_a[i]
            k_cap = K[li]
            c_ = C[li]
            oy = OY[li]
            ox = OX[li]
            r_ = R[li]
            s_ = S[li]
            dw = DW[li]
            window = r_ * s_
            out = oy * ox
            if style == 0:  # dla
                if dw:
                    units = c_
                    um = out * window
                    wf = 1.0
                    inf = 1.0
                    outf = 1.0
                    tk = np.int64(1)
                else:
                    k = (l1 - window) // (window + 1)
                    if k < 1:
                        k = np.int64(1)
                    if k > k_cap:
                        k = k_cap
                    if k < 1:
                        k = np.int64(1)
                    kt = -(-k_cap // k)
                    units = kt * c_
                    um = k * out * window
                    cm = c_ if c_ > 1 else np.int64(1)
                    co = pes // cm
                    if co > kt:
                        co = kt
                    if co < 1:
                        co = np.int64(1)
                    inf = float(-(-kt // co))
                    cs = pes // kt if pes >= kt else np.int64(1)
                    if cs > c_:
                        cs = c_
                    if cs < 1:
                        cs = np.int64(1)
                    outf = float(-(-c_ // cs))
                    wf = 1.0
                    tk = k
            elif style == 1:  # shi
                k = (l1 - (window + s_)) // 2
                if k < 1:
                    k = np.int64(1)
                cap = c_ if dw else k_cap
                if k > cap:
                    k = cap
                if k < 1:
                    k = np.int64(1)
                ct = -(-cap // k)
                um = k * window if dw else k * c_ * window
                units = out * ct
                mn = pes if pes < units else units
                if mn < 1:
                    mn = np.int64(1)
                passes_s = -(-units // mn)
                wf = float(passes_s)
                inf = 1.0 + 0.25 * (passes_s - 1)
                outf = 1.0
                tk = k
            else:  # eye
                k = (l1 - s_) // (s_ + 1)
                if k < 1:
                    k = np.int64(1)
                cap = c_ if dw else k_cap
                if k > cap:
                    k = cap
                if k < 1:
                    k = np.int64(1)
                ct = -(-cap // k)
                um = k * ox * s_ if dw else k * c_ * ox * s_
                units = oy * r_ * ct
                rm = r_ if r_ > 1 else np.int64(1)
                co = pes // rm
                if co > oy:
                    co = oy
                if co < 1:
                    co = np.int64(1)
                wf = float(-(-oy // co))
                rp = oy * r_
                if rp < 1:
                    rp = np.int64(1)
                cok = pes // rp
                if cok > ct:
                    cok = ct
                if cok < 1:
                    cok = np.int64(1)
                inf = float(-(-ct // cok))
                outf = 1.0 if pes >= r_ else float(r_)
                tk = k
            # ---- estimator epilogue ----------------------------------
            pu = pes if pes < units else units
            passes = -(-units // pu)
            cc = float(passes * um)
            util = units / (passes * pu)
            l2t = WE[li] * wf + IE[li] * inf + OE[li] * outf
            db = DRAM[li]
            mc = db / bw
            lat = (cc if cc > mc else mc) + fill
            l2b = np.int64(np.ceil(l2sz * pes * l1))
            pa = mac_area * pes
            la = l1_area_pb * l1 * pes
            l2a = l2_area_pb * l2b
            no = noc_pp * pes
            m = MACS[li]
            dyn = (m * mac_e + m * l1a * l1e + l2t * l2e + db * dram_e)
            sm = pes * pe_sp + pes * l1 * l1_sp + l2b * l2_sp
            sp = sm * lat / clock
            en = dyn + sp
            lat_o[i] = lat
            en_o[i] = en / 1000.0
            ar_o[i] = pa + la + l2a + no
            pw_o[i] = en / lat * clock
            pu_o[i] = pu
            util_o[i] = util
            l2b_o[i] = l2b
            tk_o[i] = tk
            macs_o[i] = m
            dram_o[i] = db
            l2t_o[i] = l2t
            cc_o[i] = cc
            mc_o[i] = mc
            pa_o[i] = pa
            la_o[i] = la
            l2a_o[i] = l2a
            no_o[i] = no

    _JIT_KERNEL = kern
    return kern


def compile_program(hw: HardwareConfig, table,
                    kind: str = "fused") -> FusedProgram:
    """Compile one fused tensor program for ``(hw, table)``.

    ``kind`` is one of ``"fused"`` (float64, bit-identical to the
    batched engine), ``"fused32"`` (float32 epilogue), or ``"fused-jit"``
    (numba element loop; raises :class:`RuntimeError` when numba is not
    installed).  Compilation folds the per-layer constants once --
    microseconds for typical models -- and is cached by the owners
    (``BatchedCostModel``, the execution backends, worker processes) in
    small :class:`LRUCache` instances keyed on the table's
    never-recycled generation token (``table_token(table), kind``).
    """
    return FusedProgram(hw, table, kind)
