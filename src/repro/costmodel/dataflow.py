"""Dataflow styles: how work is parallelized across PEs and reused in L1.

Each style answers four questions for a given layer, L1 buffer size, and PE
count:

1. **Tile fit** -- how many filters (the free tiling dimension the paper
   controls, footnote 2) fit in the L1 buffer.
2. **Spatial decomposition** -- how many independent work units exist, and
   how many MACs each unit performs; PEs beyond the unit count are idle
   (the over-provisioning plateaus of Fig. 4/5).
3. **Reuse / traffic** -- how many times each operand class crosses the
   L2-to-L1 boundary, given multicast across co-resident units.
4. **Buffer levels** -- the Table-I design-time buffer sizes for the
   coarse-grained action space (computed with the representative 3x3 kernel,
   which for the NVDLA style yields exactly the 19..129 byte ladder).

The three styles mirror the paper:

* ``NVDLAStyle`` (``dla``): weight-stationary, parallelizes K and C.
* ``EyerissStyle`` (``eye``): row-stationary, parallelizes Y and R.
* ``ShiDianNaoStyle`` (``shi``): output-stationary, parallelizes Y and X.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.models.layers import Layer, LayerType


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def _ceil_div_arr(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise ceiling division for non-negative integer arrays."""
    return -(-a // b)


@dataclass(frozen=True)
class SpatialPlan:
    """Result of mapping one layer onto the PE array.

    Attributes:
        units: Number of independent spatial work units.
        unit_macs: MACs executed serially inside one unit.
        weight_fetches: Times each weight byte crosses L2->L1.
        input_fetches: Times each input byte crosses L2->L1.
        output_fetches: Times each output byte crosses L1->L2 (partial-sum
            spilling makes this exceed 1).
        tile_k: Filters (or channels) resident per PE.
    """

    units: int
    unit_macs: int
    weight_fetches: float
    input_fetches: float
    output_fetches: float
    tile_k: int


@dataclass(frozen=True)
class BatchDims:
    """Layer shape dimensions gathered into arrays, one row per batch element.

    The batched estimator evaluates a whole population of design points at
    once; each element carries the dimensions of the layer it targets so the
    style-specific mapping logic can run as array arithmetic.  All arrays are
    ``int64`` except ``is_dw`` (bool).
    """

    K: np.ndarray
    C: np.ndarray
    out_y: np.ndarray
    out_x: np.ndarray
    R: np.ndarray
    S: np.ndarray
    is_dw: np.ndarray


@dataclass(frozen=True)
class BatchPlan:
    """Array-valued counterpart of :class:`SpatialPlan` for a whole batch.

    ``units``, ``unit_macs``, and ``tile_k`` are ``int64``; the fetch counts
    are ``float64``, exactly mirroring the scalar record's types.
    """

    units: np.ndarray
    unit_macs: np.ndarray
    weight_fetches: np.ndarray
    input_fetches: np.ndarray
    output_fetches: np.ndarray
    tile_k: np.ndarray


class Dataflow:
    """Base class: subclasses provide the style-specific mapping logic."""

    #: Registry key and the suffix used in the paper's tables ("-dla", ...).
    style: str = ""
    #: L1 bytes needed per resident filter (design-time, 3x3 kernel).
    _bytes_per_filter_3x3: int = 0
    #: Fixed L1 bytes independent of the filter tile (design-time).
    _fixed_bytes_3x3: int = 0

    # -- design-time action-space support ---------------------------------
    def buffer_levels(self, num_levels: int = 12) -> List[int]:
        """The Table-I buffer-size ladder: L1 bytes for tile k = 1..L.

        Sized with the representative 3x3 kernel exactly as the paper does
        ("with 3x3 weight as an example ... 9k + 9x1 + 1k").
        """
        if num_levels < 1:
            raise ValueError("num_levels must be >= 1")
        return [
            self._fixed_bytes_3x3 + self._bytes_per_filter_3x3 * k
            for k in range(1, num_levels + 1)
        ]

    # -- per-layer evaluation support --------------------------------------
    def tile_fit(self, layer: Layer, l1_bytes: int) -> int:
        """Largest filter tile k whose working set fits in ``l1_bytes``.

        Always at least 1: an undersized buffer still runs, it just loses
        reuse (the extra traffic is charged by the traffic model).
        """
        per_filter, fixed = self._footprint(layer)
        return max(1, (l1_bytes - fixed) // per_filter)

    def l1_requirement(self, layer: Layer, tile_k: int) -> int:
        """L1 bytes actually occupied by a tile of k filters."""
        per_filter, fixed = self._footprint(layer)
        return fixed + per_filter * tile_k

    def plan(self, layer: Layer, pes: int, l1_bytes: int) -> SpatialPlan:
        """Map ``layer`` onto ``pes`` PEs with ``l1_bytes`` of L1 each."""
        raise NotImplementedError

    def plan_batch(self, dims: BatchDims, pes: np.ndarray,
                   l1_bytes: np.ndarray) -> BatchPlan:
        """Vectorized :meth:`plan` over a batch of (layer, pes, l1) rows.

        Every arithmetic step mirrors the scalar path's expression order so
        the two produce bit-identical numbers; DWCONV rows are computed with
        the same formulas and selected with masks.
        """
        raise NotImplementedError

    def _footprint(self, layer: Layer) -> Tuple[int, int]:
        """(bytes per resident filter, fixed bytes) for this layer."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class NVDLAStyle(Dataflow):
    """Weight-stationary; parallelizes output (K) and input (C) channels.

    Each PE holds k filters of one input channel and streams the activation
    plane past them.  Cross-C reduction happens across PEs (adder tree) when
    the array is wide enough, otherwise partial sums spill to L2.
    """

    style = "dla"
    _bytes_per_filter_3x3 = 10  # 9 weight bytes + 1 output byte
    _fixed_bytes_3x3 = 9        # the 3x3 input window

    def _footprint(self, layer: Layer) -> Tuple[int, int]:
        window = layer.R * layer.S
        return window + 1, window

    def plan(self, layer: Layer, pes: int, l1_bytes: int) -> SpatialPlan:
        k = self.tile_fit(layer, l1_bytes)
        out = layer.out_y * layer.out_x
        window = layer.R * layer.S
        if layer.layer_type is LayerType.DWCONV:
            # Each output channel depends only on its own input channel, so
            # packing k filters into a PE merely serializes k independent
            # channels without buying any reuse; the mapper therefore keeps
            # one channel per PE and extra buffer is simply idle capacity
            # (Section IV-B's Layer-23 observation: latency is flat along
            # the buffer axis).
            return SpatialPlan(
                units=layer.C,
                unit_macs=out * window,
                weight_fetches=1.0,
                input_fetches=1.0,
                output_fetches=1.0,
                tile_k=1,
            )
        k = max(1, min(k, layer.K))
        k_tiles = _ceil_div(layer.K, k)
        units = k_tiles * layer.C
        unit_macs = k * out * window
        # Input multicast: a channel's activations are shared by every
        # co-resident K-tile; temporally separated K-tiles re-fetch them.
        co_resident_ktiles = max(1, min(k_tiles, pes // max(1, layer.C)))
        input_fetches = _ceil_div(k_tiles, co_resident_ktiles)
        # Partial-sum spilling: channels reduced in one spatial pass.
        c_spatial = max(1, min(layer.C, pes // k_tiles if pes >= k_tiles else 1))
        output_fetches = _ceil_div(layer.C, c_spatial)
        return SpatialPlan(
            units=units,
            unit_macs=unit_macs,
            weight_fetches=1.0,
            input_fetches=float(input_fetches),
            output_fetches=float(output_fetches),
            tile_k=k,
        )

    def plan_batch(self, dims: BatchDims, pes: np.ndarray,
                   l1_bytes: np.ndarray) -> BatchPlan:
        window = dims.R * dims.S
        out = dims.out_y * dims.out_x
        k_fit = np.maximum(1, (l1_bytes - window) // (window + 1))
        k = np.maximum(1, np.minimum(k_fit, dims.K))
        k_tiles = _ceil_div_arr(dims.K, k)
        units = k_tiles * dims.C
        unit_macs = k * out * window
        co_resident_ktiles = np.maximum(
            1, np.minimum(k_tiles, pes // np.maximum(1, dims.C)))
        input_fetches = _ceil_div_arr(k_tiles, co_resident_ktiles)
        c_spatial = np.maximum(
            1, np.minimum(dims.C, np.where(pes >= k_tiles,
                                           pes // k_tiles, 1)))
        output_fetches = _ceil_div_arr(dims.C, c_spatial)
        dw = dims.is_dw
        return BatchPlan(
            units=np.where(dw, dims.C, units),
            unit_macs=np.where(dw, out * window, unit_macs),
            weight_fetches=np.ones(len(dw), dtype=np.float64),
            input_fetches=np.where(dw, 1, input_fetches)
            .astype(np.float64),
            output_fetches=np.where(dw, 1, output_fetches)
            .astype(np.float64),
            tile_k=np.where(dw, 1, k),
        )


class EyerissStyle(Dataflow):
    """Row-stationary; parallelizes output rows (Y) and filter rows (R).

    A unit owns one (output row, filter row, K-tile) triple and slides along
    the row.  Input rows are reused diagonally for free (the row-stationary
    hallmark); filter rows are multicast across co-resident output rows.
    """

    style = "eye"
    _bytes_per_filter_3x3 = 4  # one 3-byte filter row + 1 output byte
    _fixed_bytes_3x3 = 3       # one 3-byte input-row segment

    def _footprint(self, layer: Layer) -> Tuple[int, int]:
        return layer.S + 1, layer.S

    def plan(self, layer: Layer, pes: int, l1_bytes: int) -> SpatialPlan:
        k = self.tile_fit(layer, l1_bytes)
        if layer.layer_type is LayerType.DWCONV:
            k = max(1, min(k, layer.C))
            channel_tiles = _ceil_div(layer.C, k)
            reduction = 1
        else:
            k = max(1, min(k, layer.K))
            channel_tiles = _ceil_div(layer.K, k)
            reduction = layer.C
        units = layer.out_y * layer.R * channel_tiles
        unit_macs = k * reduction * layer.out_x * layer.S
        if layer.layer_type is LayerType.DWCONV:
            unit_macs = k * layer.out_x * layer.S
        row_parallel = layer.out_y * layer.R
        co_resident_rows = max(1, min(layer.out_y, pes // max(1, layer.R)))
        weight_fetches = _ceil_div(layer.out_y, co_resident_rows)
        co_resident_ktiles = max(1, min(channel_tiles,
                                        pes // max(1, row_parallel)))
        input_fetches = _ceil_div(channel_tiles, co_resident_ktiles)
        # Cross-R reduction via neighbour links when R rows are co-resident.
        output_fetches = 1.0 if pes >= layer.R else float(layer.R)
        return SpatialPlan(
            units=units,
            unit_macs=unit_macs,
            weight_fetches=float(weight_fetches),
            input_fetches=float(input_fetches),
            output_fetches=output_fetches,
            tile_k=k,
        )

    def plan_batch(self, dims: BatchDims, pes: np.ndarray,
                   l1_bytes: np.ndarray) -> BatchPlan:
        k_fit = np.maximum(1, (l1_bytes - dims.S) // (dims.S + 1))
        dw = dims.is_dw
        cap = np.where(dw, dims.C, dims.K)
        k = np.maximum(1, np.minimum(k_fit, cap))
        channel_tiles = _ceil_div_arr(cap, k)
        unit_macs = np.where(
            dw,
            k * dims.out_x * dims.S,
            k * dims.C * dims.out_x * dims.S,
        )
        units = dims.out_y * dims.R * channel_tiles
        row_parallel = dims.out_y * dims.R
        co_resident_rows = np.maximum(
            1, np.minimum(dims.out_y, pes // np.maximum(1, dims.R)))
        weight_fetches = _ceil_div_arr(dims.out_y, co_resident_rows) \
            .astype(np.float64)
        co_resident_ktiles = np.maximum(
            1, np.minimum(channel_tiles, pes // np.maximum(1, row_parallel)))
        input_fetches = _ceil_div_arr(channel_tiles, co_resident_ktiles) \
            .astype(np.float64)
        output_fetches = np.where(pes >= dims.R, 1.0,
                                  dims.R.astype(np.float64))
        return BatchPlan(
            units=units,
            unit_macs=unit_macs,
            weight_fetches=weight_fetches,
            input_fetches=input_fetches,
            output_fetches=output_fetches,
            tile_k=k,
        )


class ShiDianNaoStyle(Dataflow):
    """Output-stationary; parallelizes the output plane (Y and X).

    Each PE accumulates k output pixels in place; inputs shift between
    neighbouring PEs (near-free reuse) and weights are re-streamed for every
    temporal pass over the output plane.
    """

    style = "shi"
    _bytes_per_filter_3x3 = 2  # 1 output byte + 1 weight-stream slot
    _fixed_bytes_3x3 = 12      # 3x3 input window + one 3-byte input row

    def _footprint(self, layer: Layer) -> Tuple[int, int]:
        return 2, layer.R * layer.S + layer.S

    def plan(self, layer: Layer, pes: int, l1_bytes: int) -> SpatialPlan:
        k = self.tile_fit(layer, l1_bytes)
        out = layer.out_y * layer.out_x
        if layer.layer_type is LayerType.DWCONV:
            k = max(1, min(k, layer.C))
            channel_tiles = _ceil_div(layer.C, k)
            unit_macs = k * layer.R * layer.S
        else:
            k = max(1, min(k, layer.K))
            channel_tiles = _ceil_div(layer.K, k)
            unit_macs = k * layer.C * layer.R * layer.S
        units = out * channel_tiles
        passes = _ceil_div(units, max(1, min(pes, units)))
        # Weights multicast within a pass, re-streamed across passes.
        weight_fetches = float(passes)
        input_fetches = 1.0 + 0.25 * (passes - 1)
        return SpatialPlan(
            units=units,
            unit_macs=unit_macs,
            weight_fetches=weight_fetches,
            input_fetches=input_fetches,
            output_fetches=1.0,
            tile_k=k,
        )

    def plan_batch(self, dims: BatchDims, pes: np.ndarray,
                   l1_bytes: np.ndarray) -> BatchPlan:
        window = dims.R * dims.S
        out = dims.out_y * dims.out_x
        k_fit = np.maximum(1, (l1_bytes - (window + dims.S)) // 2)
        dw = dims.is_dw
        cap = np.where(dw, dims.C, dims.K)
        k = np.maximum(1, np.minimum(k_fit, cap))
        channel_tiles = _ceil_div_arr(cap, k)
        unit_macs = np.where(
            dw,
            k * dims.R * dims.S,
            k * dims.C * dims.R * dims.S,
        )
        units = out * channel_tiles
        passes = _ceil_div_arr(units, np.maximum(1, np.minimum(pes, units)))
        return BatchPlan(
            units=units,
            unit_macs=unit_macs,
            weight_fetches=passes.astype(np.float64),
            input_fetches=1.0 + 0.25 * (passes - 1),
            output_fetches=np.ones(len(dw), dtype=np.float64),
            tile_k=k,
        )


def fold_layer_rows(K: np.ndarray, C: np.ndarray, out_y: np.ndarray,
                    out_x: np.ndarray, R: np.ndarray, S: np.ndarray,
                    is_dw: np.ndarray) -> Dict[str, np.ndarray]:
    """Fold the per-layer constants every ``plan_batch`` recomputes.

    This is the compile-time half of the fused tensor programs
    (:mod:`repro.costmodel.fused`): for ``(L,)`` dimension rows it
    returns every layer-only subexpression of the three styles' batch
    plans -- window sizes, folded MAC products, clamped divisors, and
    the *negated* numerators that let ceiling division
    (``-(-a // b)``) run in place without an extra negation pass.
    Integer folding is exact, so programs built on these rows stay
    bit-identical to :meth:`Dataflow.plan_batch`.
    """
    window = R * S
    out = out_y * out_x
    oyR = out_y * R
    cap = np.where(is_dw, C, K)
    return {
        "K": K, "C": C, "out_y": out_y, "R": R, "S": S, "dw": is_dw,
        "window": window, "wplus1": window + 1,
        "out": out, "outwin": out * window,
        "negK": -K, "negC": -C, "neg_outy": -out_y,
        "Cmax1": np.maximum(1, C), "Rmax1": np.maximum(1, R),
        "Splus1": S + 1, "winpS": window + S,
        "oyR": oyR, "oyRmax1": np.maximum(1, oyR),
        "cap": cap, "neg_cap": -cap,
        "um_eye": np.where(is_dw, out_x * S, C * out_x * S),
        "um_shi": np.where(is_dw, window, C * window),
    }


DATAFLOWS: Dict[str, Dataflow] = {
    df.style: df for df in (NVDLAStyle(), EyerissStyle(), ShiDianNaoStyle())
}

#: Order used when a dataflow is itself an action (the MIX strategy).
DATAFLOW_ORDER: List[str] = ["dla", "shi", "eye"]


def get_dataflow(style) -> Dataflow:
    """Resolve a dataflow by style name; passes instances through."""
    if isinstance(style, Dataflow):
        return style
    try:
        return DATAFLOWS[style]
    except KeyError:
        raise KeyError(
            f"unknown dataflow style {style!r}; available: "
            f"{', '.join(DATAFLOWS)}"
        ) from None
