"""NumPy-vectorized batched estimator: whole populations in a few kernels.

Every search method in this repository -- REINFORCE epochs, the local GA,
and the grid/random/SA/GA/Bayesian baselines -- evaluates tens of thousands
of design points per run, and each point used to go through a scalar Python
call chain (``CostModel.evaluate_layer`` -> ``Dataflow.plan`` ->
``CostReport``).  This module precomputes the per-layer invariants (shape
dimensions, MAC counts, operand element counts, DWCONV flags) once into a
:class:`LayerTable`, after which a whole batch of candidate
``(layer, style, pes, l1_bytes)`` rows -- an entire GA population, a full
grid sweep, or a vector of per-layer partitions -- is evaluated with array
arithmetic in a handful of NumPy operations.

The arithmetic deliberately mirrors the scalar path's expression order, so
the batched engine returns **bit-identical** numbers to
``CostModel.evaluate_layer`` (the parity suite in
``tests/test_batched_estimator.py`` asserts exact equality).  See
PERFORMANCE.md for the architecture and the measured speedup.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.costmodel.constants import DEFAULT_HW, HardwareConfig
from repro.costmodel.dataflow import (
    DATAFLOW_ORDER,
    DATAFLOWS,
    BatchDims,
    get_dataflow,
)
from repro.costmodel.fused import (
    ConstraintFold,
    LRUCache,
    compile_program,
    resolve_kernel,
)
from repro.costmodel.report import BatchCostReport, objective_totals
from repro.models.layers import Layer, LayerType

__all__ = [
    "BATCH_STYLES",
    "STYLE_INDEX",
    "BatchedCostModel",
    "ConstraintFold",
    "LayerTable",
    "evaluate_batch_kernel",
    "evaluate_with_kernel",
    "fused_program",
    "objective_totals",
    "ordered_row_sum",
    "table_token",
]

#: Canonical style order of the batched engine (the MIX action order), and
#: the string -> row index mapping used to build ``style_idx`` arrays.
BATCH_STYLES: Tuple[str, ...] = tuple(DATAFLOW_ORDER)
STYLE_INDEX: Dict[str, int] = {s: i for i, s in enumerate(BATCH_STYLES)}


def ordered_row_sum(values: np.ndarray) -> np.ndarray:
    """Row sums accumulated left-to-right, matching the scalar ``sum()``.

    ``np.sum`` uses pairwise accumulation, which rounds differently from
    Python's sequential ``sum`` over per-layer reports; summing column by
    column keeps batched aggregates bit-identical to the scalar path.
    """
    total = np.zeros(len(values), dtype=np.float64)
    for column in range(values.shape[1]):
        total = total + values[:, column]
    return total




# Monotonic table identity.  ``id(table)`` is recycled by the allocator
# the moment a table is garbage-collected, so a cache keyed on it could
# serve a *stale* compiled program to an unrelated new table at the same
# address.  Tokens are assigned once per table, never reused.
_TABLE_TOKENS = itertools.count(1)
_TABLE_TOKEN_LOCK = threading.Lock()


def table_token(table: "LayerTable") -> int:
    """A process-unique, never-recycled identity for ``table``.

    Lazily stamped on first use (``LayerTable`` is frozen, so the stamp
    goes through ``object.__setattr__``); all program caches key on this
    instead of ``id(table)``.
    """
    token = getattr(table, "_token", None)
    if token is None:
        with _TABLE_TOKEN_LOCK:
            token = getattr(table, "_token", None)
            if token is None:
                token = next(_TABLE_TOKENS)
                object.__setattr__(table, "_token", token)
    return token


@dataclass(frozen=True)
class LayerTable:
    """Per-layer invariants of a fixed layer list, gathered into arrays.

    Built once per (model, search); every batched evaluation then indexes
    into these arrays with a ``layer_idx`` vector instead of touching the
    Python :class:`Layer` objects.
    """

    layers: Tuple[Layer, ...]
    K: np.ndarray
    C: np.ndarray
    out_y: np.ndarray
    out_x: np.ndarray
    R: np.ndarray
    S: np.ndarray
    is_dw: np.ndarray
    macs: np.ndarray
    weight_elements: np.ndarray
    input_elements: np.ndarray
    output_elements: np.ndarray
    dram_bytes: np.ndarray

    @classmethod
    def build(cls, layers: Sequence[Layer]) -> "LayerTable":
        layers = tuple(layers)
        if not layers:
            raise ValueError("cannot build a LayerTable from zero layers")

        def arr(values, dtype=np.int64):
            return np.array(values, dtype=dtype)

        return cls(
            layers=layers,
            K=arr([l.K for l in layers]),
            C=arr([l.C for l in layers]),
            out_y=arr([l.out_y for l in layers]),
            out_x=arr([l.out_x for l in layers]),
            R=arr([l.R for l in layers]),
            S=arr([l.S for l in layers]),
            is_dw=arr([l.layer_type is LayerType.DWCONV for l in layers],
                      dtype=bool),
            macs=arr([l.macs for l in layers]),
            weight_elements=arr([l.weight_elements for l in layers]),
            input_elements=arr([l.input_elements for l in layers]),
            output_elements=arr([l.output_elements for l in layers]),
            # DRAM sees each unique operand once (float, as the scalar
            # path converts it before dividing by the bandwidth).
            dram_bytes=arr(
                [float(l.weight_elements + l.input_elements
                       + l.output_elements) for l in layers],
                dtype=np.float64),
        )

    def __len__(self) -> int:
        return len(self.layers)

    def dims(self, layer_idx: np.ndarray) -> BatchDims:
        """Gather the shape dimensions for a vector of layer rows."""
        return BatchDims(
            K=self.K[layer_idx],
            C=self.C[layer_idx],
            out_y=self.out_y[layer_idx],
            out_x=self.out_x[layer_idx],
            R=self.R[layer_idx],
            S=self.S[layer_idx],
            is_dw=self.is_dw[layer_idx],
        )


def evaluate_batch_kernel(
    hw: HardwareConfig,
    table: LayerTable,
    layer_idx: np.ndarray,
    style_idx: np.ndarray,
    pes: np.ndarray,
    l1_bytes: np.ndarray,
) -> BatchCostReport:
    """The validated core of :meth:`BatchedCostModel.evaluate`.

    Every operation is elementwise over the batch axis, so the kernel is
    *shard-invariant*: evaluating any partition of the batch and
    concatenating the shard outputs in order is bit-identical to one call
    over the full batch.  The execution backends in :mod:`repro.parallel`
    rely on this to fan one large batch out across worker processes.

    Callers are expected to have validated the arrays (``BatchedCostModel
    .evaluate`` does); the kernel itself runs no checks so worker shards
    pay no redundant validation.
    """
    batch = layer_idx.size
    units = np.empty(batch, dtype=np.int64)
    unit_macs = np.empty(batch, dtype=np.int64)
    weight_fetches = np.empty(batch, dtype=np.float64)
    input_fetches = np.empty(batch, dtype=np.float64)
    output_fetches = np.empty(batch, dtype=np.float64)
    tile_k = np.empty(batch, dtype=np.int64)
    for index, style in enumerate(BATCH_STYLES):
        sel = np.flatnonzero(style_idx == index)
        if sel.size == 0:
            continue
        plan = DATAFLOWS[style].plan_batch(
            table.dims(layer_idx[sel]), pes[sel], l1_bytes[sel])
        units[sel] = plan.units
        unit_macs[sel] = plan.unit_macs
        weight_fetches[sel] = plan.weight_fetches
        input_fetches[sel] = plan.input_fetches
        output_fetches[sel] = plan.output_fetches
        tile_k[sel] = plan.tile_k

    # ---- estimator epilogue, mirroring _evaluate_uncached ----------
    pes_used = np.minimum(pes, units)
    passes = -(-units // pes_used)
    compute_cycles = (passes * unit_macs).astype(np.float64)
    utilization = units / (passes * pes_used)

    weight_bytes = table.weight_elements[layer_idx] * weight_fetches
    input_bytes = table.input_elements[layer_idx] * input_fetches
    output_bytes = table.output_elements[layer_idx] * output_fetches
    l2_traffic = weight_bytes + input_bytes + output_bytes

    dram_bytes = table.dram_bytes[layer_idx]
    memory_cycles = dram_bytes / hw.dram_bandwidth_bytes_per_cycle
    latency = np.maximum(compute_cycles, memory_cycles) \
        + hw.pipeline_fill_cycles

    l2_bytes = np.ceil(hw.l2_double_sizing * pes * l1_bytes) \
        .astype(np.int64)

    pe_area = hw.mac_area_um2 * pes
    l1_area = hw.l1_area_per_byte_um2 * l1_bytes * pes
    l2_area = hw.l2_area_per_byte_um2 * l2_bytes
    noc_area = hw.noc_area_per_pe_um2 * pes
    area = pe_area + l1_area + l2_area + noc_area

    macs = table.macs[layer_idx]
    dynamic_pj = (
        macs * hw.mac_energy_pj
        + macs * hw.l1_accesses_per_mac * hw.l1_energy_per_byte_pj
        + l2_traffic * hw.l2_energy_per_byte_pj
        + dram_bytes * hw.dram_energy_per_byte_pj
    )
    static_mw = (
        pes * hw.pe_static_power_mw
        + pes * l1_bytes * hw.l1_static_power_mw_per_byte
        + l2_bytes * hw.l2_static_power_mw_per_byte
    )
    static_pj = static_mw * latency / hw.clock_ghz
    energy_pj = dynamic_pj + static_pj
    power_mw = energy_pj / latency * hw.clock_ghz

    return BatchCostReport(
        latency_cycles=latency,
        energy_nj=energy_pj / 1000.0,
        area_um2=area,
        power_mw=power_mw,
        pes_used=pes_used,
        pe_utilization=utilization,
        l1_bytes_per_pe=l1_bytes,
        l2_bytes=l2_bytes,
        tile_k=tile_k,
        macs=macs,
        dram_bytes=dram_bytes,
        l2_traffic_bytes=l2_traffic,
        compute_cycles=compute_cycles,
        memory_cycles=memory_cycles,
        pe_area_um2=pe_area,
        l1_area_um2=l1_area,
        l2_area_um2=l2_area,
        noc_area_um2=noc_area,
    )


def evaluate_with_kernel(
    kernel: str,
    hw: HardwareConfig,
    table: LayerTable,
    layer_idx: np.ndarray,
    style_idx: np.ndarray,
    pes: np.ndarray,
    l1_bytes: np.ndarray,
    programs: LRUCache = None,
) -> BatchCostReport:
    """Dispatch one validated batch to the requested kernel.

    ``"batched"`` runs :func:`evaluate_batch_kernel` directly; the fused
    kinds look up (or compile) the per-``(table, kernel)``
    :class:`~repro.costmodel.fused.FusedProgram` in ``programs`` and run
    it.  The cache key is ``(table_token(table), kernel)`` -- a
    monotonically assigned identity that, unlike ``id(table)``, is never
    recycled when a table is garbage-collected, so a new table can never
    inherit a stale program.  The identity staleness check stays as a
    belt-and-braces guard for hand-built cache entries.

    Every kernel shares :func:`evaluate_batch_kernel`'s shard
    invariance, which is what lets the execution backends cache one
    compiled program per worker and reuse it for every shard.
    """
    if kernel == "batched":
        return evaluate_batch_kernel(hw, table, layer_idx, style_idx,
                                     pes, l1_bytes)
    program = fused_program(kernel, hw, table, programs)
    return program.evaluate(layer_idx, style_idx, pes, l1_bytes)


def fused_program(kernel: str, hw: HardwareConfig, table: LayerTable,
                  programs: LRUCache = None):
    """The compiled :class:`~repro.costmodel.fused.FusedProgram` for
    ``(hw, table, kernel)``, looked up in (or compiled into) the
    ``programs`` cache keyed ``(table_token(table), kernel)``."""
    program = None
    key = (table_token(table), kernel)
    if programs is not None:
        program = programs.get(key)
        if program is not None and (program.table is not table
                                    or program.hw is not hw):
            program = None
    if program is None:
        program = compile_program(hw, table, kernel)
        if programs is not None:
            programs.put(key, program)
    return program


class BatchedCostModel:
    """Vectorized counterpart of :class:`~repro.costmodel.CostModel`.

    Stateless apart from the hardware constants and an optional execution
    backend: callers hold the :class:`LayerTable` (typically one per
    search) and pass index/value arrays describing the batch.

    When ``executor`` is set (an :class:`repro.parallel.ExecutionBackend`),
    validated batches are handed to it instead of the in-process kernel;
    the backends shard the batch across threads or worker processes and
    gather a bit-identical :class:`BatchCostReport`.
    """

    def __init__(self, hw: HardwareConfig = DEFAULT_HW,
                 executor=None, kernel: str = None) -> None:
        self.hw = hw
        #: Optional :class:`~repro.parallel.ExecutionBackend`; ``None``
        #: runs the kernel in-process.
        self.executor = executor
        #: Which compute kernel in-process batches run (``"batched"``,
        #: ``"fused"``, ``"fused32"``, ``"fused-jit"``); ``None``
        #: resolves ``$REPRO_KERNEL`` then the batched default.  An
        #: attached executor applies its own (identically resolved)
        #: kernel setting worker-side.
        self.kernel = resolve_kernel(kernel)
        # Compiled fused programs, keyed (table_token(table), kernel).
        # Bounded: a long-lived model may see many tables over its
        # lifetime.
        self._programs = LRUCache(8)
        # Single-layer tables for evaluate_layer_batch sweeps.  Also
        # bounded: serve processes sweeping many models would otherwise
        # grow this per distinct Layer forever.
        self._single_tables = LRUCache(16)

    # ------------------------------------------------------------------
    def evaluate(
        self,
        table: LayerTable,
        layer_idx: np.ndarray,
        style_idx,
        pes: np.ndarray,
        l1_bytes: np.ndarray,
    ) -> BatchCostReport:
        """Evaluate a batch of (layer row, style, PEs, L1 bytes) points.

        Args:
            table: Precomputed invariants of the target layer list.
            layer_idx: Row index into ``table`` per batch element.
            style_idx: Dataflow index per element (see :data:`STYLE_INDEX`),
                or a scalar applied to the whole batch.
            pes: PE count per element (>= 1).
            l1_bytes: L1 bytes per PE per element (>= 1).

        Returns:
            A :class:`BatchCostReport` of arrays, element ``i`` matching
            ``CostModel.evaluate_layer`` on point ``i`` exactly.
        """
        layer_idx, style_idx, pes, l1_bytes = self._validate(
            table, layer_idx, style_idx, pes, l1_bytes)
        if self.executor is not None:
            return self.executor.evaluate(self.hw, table, layer_idx,
                                          style_idx, pes, l1_bytes)
        return evaluate_with_kernel(self.kernel, self.hw, table, layer_idx,
                                    style_idx, pes, l1_bytes,
                                    programs=self._programs)

    # ------------------------------------------------------------------
    def evaluate_constrained(self, table: LayerTable, layer_idx, style_idx,
                             pes, l1_bytes, deployment: str, kind: str,
                             budget: float):
        """Evaluate a batch, folding the platform budget check into the
        fused epilogue when possible.

        Returns ``(report, fold)``.  ``report`` is always bit-identical
        to :meth:`evaluate` on the same batch.  ``fold`` is a
        :class:`~repro.costmodel.fused.ConstraintFold` carrying the
        population totals plus ``used``/``feasible`` -- or ``None``
        whenever the fold is unavailable (an executor shards the batch
        across workers, the kernel has no fused epilogue, or the batch
        is not in the tiled population layout), in which case callers
        run their usual reduction post-pass over the report.
        """
        layer_idx, style_idx, pes, l1_bytes = self._validate(
            table, layer_idx, style_idx, pes, l1_bytes)
        if self.executor is not None:
            return (self.executor.evaluate(self.hw, table, layer_idx,
                                           style_idx, pes, l1_bytes), None)
        if self.kernel not in ("fused", "fused32"):
            return (evaluate_with_kernel(self.kernel, self.hw, table,
                                         layer_idx, style_idx, pes,
                                         l1_bytes,
                                         programs=self._programs), None)
        program = fused_program(self.kernel, self.hw, table, self._programs)
        return program.evaluate_constrained(layer_idx, style_idx, pes,
                                            l1_bytes, deployment, kind,
                                            budget)

    # ------------------------------------------------------------------
    @staticmethod
    def _validate(table: LayerTable, layer_idx, style_idx, pes, l1_bytes):
        """Coerce and validate one batch (shared by both evaluate
        entry points); returns the canonical int64 arrays."""
        layer_idx = np.asarray(layer_idx, dtype=np.int64)
        pes = np.asarray(pes, dtype=np.int64)
        l1_bytes = np.asarray(l1_bytes, dtype=np.int64)
        style_idx = np.broadcast_to(
            np.asarray(style_idx, dtype=np.int64), layer_idx.shape)
        if not (layer_idx.shape == pes.shape == l1_bytes.shape):
            raise ValueError("batch arrays must share one shape")
        if layer_idx.ndim != 1:
            raise ValueError("batch arrays must be 1-D")
        if layer_idx.size == 0:
            raise ValueError("cannot evaluate an empty batch")
        if layer_idx.min() < 0 or layer_idx.max() >= len(table):
            raise ValueError("layer_idx out of range for the table")
        if pes.min() < 1:
            raise ValueError("pes must be >= 1 for every batch element")
        if l1_bytes.min() < 1:
            raise ValueError("l1_bytes must be >= 1 for every batch element")
        if style_idx.min() < 0 or style_idx.max() >= len(BATCH_STYLES):
            raise ValueError(
                f"style_idx out of range; styles: {', '.join(BATCH_STYLES)}")
        return layer_idx, style_idx, pes, l1_bytes

    # ------------------------------------------------------------------
    def evaluate_layer_batch(self, layer: Layer, dataflow, pes,
                             l1_bytes) -> BatchCostReport:
        """Sweep one layer over vectors of (pes, l1_bytes) design points.

        The single-layer :class:`LayerTable` is cached per layer (in a
        bounded LRU), so repeated sweeps (contour grids, per-layer
        optima) pay the precompute once.  Scalar (0-d) ``pes`` /
        ``l1_bytes`` are promoted to length-1 vectors, returning a
        length-1 report.
        """
        style = get_dataflow(dataflow).style
        table = self._single_tables.get(layer)
        if table is None:
            table = LayerTable.build([layer])
            self._single_tables.put(layer, table)
        pes = np.atleast_1d(np.asarray(pes, dtype=np.int64))
        l1_bytes = np.atleast_1d(np.asarray(l1_bytes, dtype=np.int64))
        if pes.shape != l1_bytes.shape:
            raise ValueError("pes and l1_bytes must share one shape")
        layer_idx = np.zeros(pes.shape, dtype=np.int64)
        return self.evaluate(table, layer_idx, STYLE_INDEX[style], pes,
                             l1_bytes)
