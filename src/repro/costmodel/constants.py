"""Hardware technology constants for the analytical cost model.

The defaults are calibrated so that the small design points of the paper's
Fig. 1 land in the right order of magnitude (a (PE=8, Buf=19B) NVDLA-style
accelerator around 2e4 um^2 and single-digit mW) without claiming bit-exact
agreement with MAESTRO's 28nm tables.  Every experiment in this repository
uses relative comparisons, which are insensitive to the absolute scale.

All energies are tracked internally in picojoules and reported in nanojoules;
the clock is 1 GHz so one cycle is one nanosecond, which makes average power
in milliwatts exactly ``energy_pj / latency_cycles``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property


@dataclass(frozen=True)
class HardwareConfig:
    """Technology and system parameters of the modelled accelerator.

    Attributes:
        clock_ghz: Clock frequency; 1.0 makes cycles equal nanoseconds.
        mac_area_um2: Area of one PE's MAC datapath plus control.
        l1_area_per_byte_um2: Area of L1 (per-PE scratchpad) SRAM per byte.
        l2_area_per_byte_um2: Area of the shared L2 SRAM per byte
            (denser than L1: larger banks amortize periphery).
        noc_area_per_pe_um2: NoC wiring/router area per PE for a
            stall-free distribution/collection network.
        mac_energy_pj: Energy of one multiply-accumulate.
        l1_energy_per_byte_pj: Energy per byte of an L1 access.
        l2_energy_per_byte_pj: Energy per byte of an L2 access.
        dram_energy_per_byte_pj: Energy per byte fetched from DRAM.
        dram_bandwidth_bytes_per_cycle: Sustained DRAM bandwidth.
        pe_static_power_mw: Leakage + clock power per PE (datapath only).
        l1_static_power_mw_per_byte: Leakage per L1 byte.
        l2_static_power_mw_per_byte: Leakage per L2 byte.
        l1_accesses_per_mac: Average L1 bytes moved per MAC (operand reads
            and partial-sum read-modify-write, after stationary reuse).
        l2_sizing_factor: The L2 is sized to this multiple of the aggregate
            L1 working set so the next tile can be prefetched
            (double-buffering = 2.0 of half the set = 1.0 of the full set).
        pipeline_fill_cycles: Fixed per-layer ramp-up latency.
    """

    clock_ghz: float = 1.0
    mac_area_um2: float = 1500.0
    l1_area_per_byte_um2: float = 80.0
    l2_area_per_byte_um2: float = 20.0
    noc_area_per_pe_um2: float = 160.0
    mac_energy_pj: float = 1.0
    l1_energy_per_byte_pj: float = 1.2
    l2_energy_per_byte_pj: float = 5.0
    dram_energy_per_byte_pj: float = 80.0
    dram_bandwidth_bytes_per_cycle: float = 16.0
    pe_static_power_mw: float = 0.35
    l1_static_power_mw_per_byte: float = 0.004
    l2_static_power_mw_per_byte: float = 0.001
    l1_accesses_per_mac: float = 2.0
    l2_sizing_factor: float = 1.0
    pipeline_fill_cycles: int = 32

    @cached_property
    def l2_double_sizing(self) -> float:
        """``2 * l2_sizing_factor`` -- the constant factor of the L2
        capacity rule, precomputed once because both the scalar and the
        batched estimator apply it per design point.  Multiplying the
        prefolded constant first keeps the two paths bit-identical with the
        original ``2.0 * factor * pes * l1`` expression."""
        return 2.0 * self.l2_sizing_factor

    def __post_init__(self) -> None:
        for name in (
            "clock_ghz",
            "mac_area_um2",
            "l1_area_per_byte_um2",
            "l2_area_per_byte_um2",
            "mac_energy_pj",
            "l1_energy_per_byte_pj",
            "l2_energy_per_byte_pj",
            "dram_energy_per_byte_pj",
            "dram_bandwidth_bytes_per_cycle",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"HardwareConfig.{name} must be positive")
        for name in (
            "noc_area_per_pe_um2",
            "pe_static_power_mw",
            "l1_static_power_mw_per_byte",
            "l2_static_power_mw_per_byte",
            "l1_accesses_per_mac",
            "l2_sizing_factor",
            "pipeline_fill_cycles",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"HardwareConfig.{name} must be non-negative")


DEFAULT_HW = HardwareConfig()
