"""Result records produced by the cost model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class CostReport:
    """Per-layer estimate for one design point.

    All figures of merit the paper's environment consumes, plus the
    intermediate quantities the breakdown figures (Fig. 10) need.
    """

    latency_cycles: float
    energy_nj: float
    area_um2: float
    power_mw: float
    pes_used: int
    pe_utilization: float
    l1_bytes_per_pe: int
    l2_bytes: int
    tile_k: int
    macs: int
    dram_bytes: float
    l2_traffic_bytes: float
    compute_cycles: float
    memory_cycles: float
    pe_area_um2: float
    l1_area_um2: float
    l2_area_um2: float
    noc_area_um2: float

    @property
    def edp(self) -> float:
        """Energy-delay product (an alternative objective, Section III-D)."""
        return self.energy_nj * self.latency_cycles

    def objective(self, name: str) -> float:
        """Look up an optimization objective by name."""
        table = {
            "latency": self.latency_cycles,
            "energy": self.energy_nj,
            "edp": self.edp,
        }
        try:
            return table[name]
        except KeyError:
            raise KeyError(
                f"unknown objective {name!r}; available: {', '.join(table)}"
            ) from None

    def constraint(self, name: str) -> float:
        """Look up a platform-constraint quantity by name."""
        table = {"area": self.area_um2, "power": self.power_mw}
        try:
            return table[name]
        except KeyError:
            raise KeyError(
                f"unknown constraint {name!r}; available: {', '.join(table)}"
            ) from None


@dataclass(frozen=True)
class ModelCostReport:
    """Whole-model estimate: the sum over per-layer partitions (LP) or the
    layer-by-layer run of a single design point (LS)."""

    latency_cycles: float
    energy_nj: float
    area_um2: float
    power_mw: float
    per_layer: List[CostReport] = field(default_factory=list)

    @property
    def edp(self) -> float:
        return self.energy_nj * self.latency_cycles

    def objective(self, name: str) -> float:
        table = {
            "latency": self.latency_cycles,
            "energy": self.energy_nj,
            "edp": self.edp,
        }
        try:
            return table[name]
        except KeyError:
            raise KeyError(
                f"unknown objective {name!r}; available: {', '.join(table)}"
            ) from None

    def constraint(self, name: str) -> float:
        table = {"area": self.area_um2, "power": self.power_mw}
        try:
            return table[name]
        except KeyError:
            raise KeyError(
                f"unknown constraint {name!r}; available: {', '.join(table)}"
            ) from None

    def area_breakdown(self) -> Dict[str, float]:
        """Aggregate PE / L1 / L2 / NoC area split (Fig. 10 pie chart)."""
        totals = {"pe": 0.0, "l1": 0.0, "l2": 0.0, "noc": 0.0}
        for report in self.per_layer:
            totals["pe"] += report.pe_area_um2
            totals["l1"] += report.l1_area_um2
            totals["l2"] += report.l2_area_um2
            totals["noc"] += report.noc_area_um2
        return totals


@dataclass(frozen=True)
class UtilizationReport:
    """Constraint-utilization summary ConfuciuX emits with its solution."""

    constraint: str
    budget: float
    used: float

    @property
    def fraction(self) -> float:
        return self.used / self.budget if self.budget > 0 else float("inf")

    def __str__(self) -> str:
        return (
            f"{self.constraint}: used {self.used:.3e} of {self.budget:.3e} "
            f"({100 * self.fraction:.1f}%)"
        )
