"""Result records produced by the cost model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


def objective_totals(latency, energy, objective: str):
    """Legacy objective lookup over bare (latency, energy) totals.

    Works elementwise on arrays (the batch engine's aggregates) exactly as
    it does on scalars; the ``edp`` product is only computed when asked
    for (this sits on hot paths, and for arrays the discarded multiply
    would allocate a population-sized buffer).

    Only the three historical names are served here; richer objectives
    (area/power components, weighted blends, penalties, multi-objective
    trade-offs) live in :mod:`repro.objectives` and evaluate over full
    reports -- the ``objective`` methods below dispatch to them.
    """
    if objective == "latency":
        return latency
    if objective == "energy":
        return energy
    if objective == "edp":
        return energy * latency
    raise KeyError(
        f"unknown objective {objective!r}; available: latency, energy, edp"
    )


def _resolve_objective_value(report, objective):
    """Shared ``objective`` dispatch of the report classes: legacy names
    take the historical (bit-identical) expressions; anything else --
    an :class:`repro.objectives.Objective` instance or a composite spec
    -- resolves through the objectives registry."""
    if isinstance(objective, str) and objective in ("latency", "energy",
                                                    "edp"):
        return objective_totals(report.latency_cycles, report.energy_nj,
                                objective)
    from repro.objectives import resolve_objective

    return resolve_objective(objective).evaluate(report)


@dataclass(frozen=True)
class CostReport:
    """Per-layer estimate for one design point.

    All figures of merit the paper's environment consumes, plus the
    intermediate quantities the breakdown figures (Fig. 10) need.
    """

    latency_cycles: float
    energy_nj: float
    area_um2: float
    power_mw: float
    pes_used: int
    pe_utilization: float
    l1_bytes_per_pe: int
    l2_bytes: int
    tile_k: int
    macs: int
    dram_bytes: float
    l2_traffic_bytes: float
    compute_cycles: float
    memory_cycles: float
    pe_area_um2: float
    l1_area_um2: float
    l2_area_um2: float
    noc_area_um2: float

    @property
    def edp(self) -> float:
        """Energy-delay product (an alternative objective, Section III-D)."""
        return self.energy_nj * self.latency_cycles

    def objective(self, name) -> float:
        """Evaluate an optimization objective: a registered name, a
        ``weighted:``/``multi:`` spec, or an
        :class:`repro.objectives.Objective` instance."""
        return _resolve_objective_value(self, name)

    def constraint(self, name: str) -> float:
        """Look up a platform-constraint quantity by name."""
        table = {"area": self.area_um2, "power": self.power_mw}
        try:
            return table[name]
        except KeyError:
            raise KeyError(
                f"unknown constraint {name!r}; available: {', '.join(table)}"
            ) from None


@dataclass(frozen=True)
class BatchCostReport:
    """Array-valued :class:`CostReport` for a whole batch of design points.

    Produced by the batched estimator: element ``i`` of every array holds
    the figure the scalar path would have returned for batch element ``i``.
    Integer quantities (``pes_used``, ``l1_bytes_per_pe``, ``l2_bytes``,
    ``tile_k``, ``macs``) are ``int64`` arrays; the rest are ``float64``.
    """

    latency_cycles: np.ndarray
    energy_nj: np.ndarray
    area_um2: np.ndarray
    power_mw: np.ndarray
    pes_used: np.ndarray
    pe_utilization: np.ndarray
    l1_bytes_per_pe: np.ndarray
    l2_bytes: np.ndarray
    tile_k: np.ndarray
    macs: np.ndarray
    dram_bytes: np.ndarray
    l2_traffic_bytes: np.ndarray
    compute_cycles: np.ndarray
    memory_cycles: np.ndarray
    pe_area_um2: np.ndarray
    l1_area_um2: np.ndarray
    l2_area_um2: np.ndarray
    noc_area_um2: np.ndarray

    def __len__(self) -> int:
        return len(self.latency_cycles)

    @property
    def edp(self) -> np.ndarray:
        return self.energy_nj * self.latency_cycles

    def objective(self, name) -> np.ndarray:
        """Objective values for the whole batch (name, spec, or
        :class:`repro.objectives.Objective` instance)."""
        return _resolve_objective_value(self, name)

    def constraint(self, name: str) -> np.ndarray:
        """Constraint-quantity values for the whole batch."""
        table = {"area": self.area_um2, "power": self.power_mw}
        try:
            return table[name]
        except KeyError:
            raise KeyError(
                f"unknown constraint {name!r}; available: {', '.join(table)}"
            ) from None

    def report(self, i: int) -> CostReport:
        """Materialize one batch element as a scalar :class:`CostReport`."""
        return CostReport(
            latency_cycles=float(self.latency_cycles[i]),
            energy_nj=float(self.energy_nj[i]),
            area_um2=float(self.area_um2[i]),
            power_mw=float(self.power_mw[i]),
            pes_used=int(self.pes_used[i]),
            pe_utilization=float(self.pe_utilization[i]),
            l1_bytes_per_pe=int(self.l1_bytes_per_pe[i]),
            l2_bytes=int(self.l2_bytes[i]),
            tile_k=int(self.tile_k[i]),
            macs=int(self.macs[i]),
            dram_bytes=float(self.dram_bytes[i]),
            l2_traffic_bytes=float(self.l2_traffic_bytes[i]),
            compute_cycles=float(self.compute_cycles[i]),
            memory_cycles=float(self.memory_cycles[i]),
            pe_area_um2=float(self.pe_area_um2[i]),
            l1_area_um2=float(self.l1_area_um2[i]),
            l2_area_um2=float(self.l2_area_um2[i]),
            noc_area_um2=float(self.noc_area_um2[i]),
        )

    def reports(self) -> List[CostReport]:
        """Materialize the whole batch (convenience for small batches)."""
        return [self.report(i) for i in range(len(self))]


@dataclass(frozen=True)
class ModelCostReport:
    """Whole-model estimate: the sum over per-layer partitions (LP) or the
    layer-by-layer run of a single design point (LS)."""

    latency_cycles: float
    energy_nj: float
    area_um2: float
    power_mw: float
    per_layer: List[CostReport] = field(default_factory=list)

    @property
    def edp(self) -> float:
        return self.energy_nj * self.latency_cycles

    def objective(self, name) -> float:
        return _resolve_objective_value(self, name)

    def constraint(self, name: str) -> float:
        table = {"area": self.area_um2, "power": self.power_mw}
        try:
            return table[name]
        except KeyError:
            raise KeyError(
                f"unknown constraint {name!r}; available: {', '.join(table)}"
            ) from None

    def area_breakdown(self) -> Dict[str, float]:
        """Aggregate PE / L1 / L2 / NoC area split (Fig. 10 pie chart)."""
        totals = {"pe": 0.0, "l1": 0.0, "l2": 0.0, "noc": 0.0}
        for report in self.per_layer:
            totals["pe"] += report.pe_area_um2
            totals["l1"] += report.l1_area_um2
            totals["l2"] += report.l2_area_um2
            totals["noc"] += report.noc_area_um2
        return totals


@dataclass(frozen=True)
class UtilizationReport:
    """Constraint-utilization summary ConfuciuX emits with its solution."""

    constraint: str
    budget: float
    used: float

    @property
    def fraction(self) -> float:
        return self.used / self.budget if self.budget > 0 else float("inf")

    def __str__(self) -> str:
        return (
            f"{self.constraint}: used {self.used:.3e} of {self.budget:.3e} "
            f"({100 * self.fraction:.1f}%)"
        )
