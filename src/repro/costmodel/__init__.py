"""Analytical DNN-accelerator cost model (the MAESTRO substitute).

ConfuciuX consumes MAESTRO as a black box mapping
``(layer, dataflow, PEs, L1 buffer)`` to scalar latency / energy / area /
power.  This package reimplements that mapping analytically for the three
dataflow styles the paper evaluates (NVDLA-, Eyeriss-, and ShiDianNao-style),
modelling spatial utilization, reuse-driven traffic at every level of the
memory hierarchy (L1 / L2 / DRAM), and static + dynamic energy.

See DESIGN.md ("Substitutions") for the fidelity argument and the constant
calibration.
"""

from repro.costmodel.constants import HardwareConfig, DEFAULT_HW
from repro.costmodel.dataflow import (
    DATAFLOWS,
    BatchDims,
    BatchPlan,
    Dataflow,
    EyerissStyle,
    NVDLAStyle,
    ShiDianNaoStyle,
    get_dataflow,
)
from repro.costmodel.report import BatchCostReport, CostReport, ModelCostReport
from repro.costmodel.fused import (
    DEFAULT_KERNEL,
    KERNEL_ENV,
    KERNELS,
    FusedProgram,
    compile_program,
    numba_available,
    resolve_kernel,
)
from repro.costmodel.batched import (
    BATCH_STYLES,
    STYLE_INDEX,
    BatchedCostModel,
    LayerTable,
    evaluate_with_kernel,
)
from repro.costmodel.estimator import CostModel

__all__ = [
    "DEFAULT_KERNEL",
    "KERNEL_ENV",
    "KERNELS",
    "FusedProgram",
    "compile_program",
    "evaluate_with_kernel",
    "numba_available",
    "resolve_kernel",
    "HardwareConfig",
    "DEFAULT_HW",
    "Dataflow",
    "NVDLAStyle",
    "EyerissStyle",
    "ShiDianNaoStyle",
    "DATAFLOWS",
    "BatchDims",
    "BatchPlan",
    "get_dataflow",
    "CostReport",
    "ModelCostReport",
    "BatchCostReport",
    "BATCH_STYLES",
    "STYLE_INDEX",
    "BatchedCostModel",
    "LayerTable",
    "CostModel",
]
