"""The analytical performance / energy / area / power estimator.

Given a layer, a dataflow style, a PE count, and an L1 buffer size, the
estimator produces a :class:`CostReport`:

* **Latency** -- serial work per spatial unit times the number of temporal
  passes over the PE array, bounded below by DRAM streaming time, plus a
  fixed pipeline-fill term.  Over-provisioned PEs are idle (utilization < 1)
  and buy nothing, producing the plateaus of Fig. 4/5.
* **Energy** -- MAC switching energy, L1/L2/DRAM traffic energy, plus static
  energy (leakage x latency), which is what makes more resources sometimes
  *reduce* energy through shorter runtime, as Section IV-B discusses.
* **Area** -- PEs (MAC + L1) + shared L2 (sized to double-buffer the
  aggregate tile) + NoC.
* **Power** -- average power, energy / latency (1 GHz clock).

The model is deliberately analytical and fast (microseconds per call):
ConfuciuX evaluates tens of thousands of design points per search.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.costmodel.batched import BatchedCostModel
from repro.costmodel.constants import DEFAULT_HW, HardwareConfig
from repro.costmodel.dataflow import Dataflow, get_dataflow
from repro.costmodel.report import BatchCostReport, CostReport, ModelCostReport
from repro.models.layers import Layer

#: An assignment for one layer: (PEs, L1 bytes) or (PEs, L1 bytes, dataflow).
LayerAssignment = Union[Tuple[int, int], Tuple[int, int, str]]


def area_model(hw: HardwareConfig, pes: int,
               l1_bytes: int) -> Tuple[float, float, float, float, int]:
    """(pe, l1, l2, noc) areas and the L2 size for one design point.

    Area depends only on the resource assignment, never on the layer, so
    it has a closed form the planned-episode path can evaluate without
    running the dataflow mapper.  This is the *single* definition of the
    area arithmetic -- ``_evaluate_uncached`` consumes it too, so the
    cheap check and the full report cannot drift apart bit-wise.
    """
    # L2 sized to double-buffer the aggregate resident tile.
    l2_bytes = int(
        math.ceil(hw.l2_double_sizing * pes * l1_bytes)
    )
    pe_area = hw.mac_area_um2 * pes
    l1_area = hw.l1_area_per_byte_um2 * l1_bytes * pes
    l2_area = hw.l2_area_per_byte_um2 * l2_bytes
    noc_area = hw.noc_area_per_pe_um2 * pes
    return pe_area, l1_area, l2_area, noc_area, l2_bytes


def area_um2(hw: HardwareConfig, pes: int, l1_bytes: int) -> float:
    """Total accelerator area for one design point (see ``area_model``)."""
    pe_area, l1_area, l2_area, noc_area, _ = area_model(hw, pes, l1_bytes)
    return pe_area + l1_area + l2_area + noc_area


class CostModel:
    """Stateful facade: caches per-layer evaluations across a search.

    The RL loop re-evaluates identical (layer, dataflow, PE, buffer) tuples
    thousands of times; an LRU cache keyed on those tuples gives a large
    constant-factor speedup without changing any result.
    """

    def __init__(self, hw: HardwareConfig = DEFAULT_HW,
                 cache_size: int = 200_000, kernel: str = None) -> None:
        self.hw = hw
        #: Compute kernel for the batched engine ("batched" default,
        #: "fused" / "fused32" / "fused-jit"); ``None`` resolves
        #: ``$REPRO_KERNEL``.  The scalar per-call path is unaffected.
        self.kernel = kernel
        self._evaluate_cached = lru_cache(maxsize=cache_size)(
            self._evaluate_uncached
        )
        self._batched: Optional[BatchedCostModel] = None

    @property
    def batched(self) -> BatchedCostModel:
        """The vectorized engine sharing this model's hardware constants.

        Lazily constructed; callers evaluating whole populations (the GA
        generations, the baseline optimizers, the design-space sweeps) go
        through this instead of the scalar per-call path.
        """
        if self._batched is None:
            self._batched = BatchedCostModel(self.hw, kernel=self.kernel)
        return self._batched

    def set_executor(self, backend) -> None:
        """Install (or, with ``None``, remove) an execution backend.

        With a :class:`repro.parallel.ExecutionBackend` installed, every
        batched evaluation through this model -- and therefore every
        population-level consumer sharing it -- is sharded by the
        backend.  Results are bit-identical either way; lifecycle is
        owned by the caller (usually a
        :class:`~repro.parallel.ParallelCoordinator`).
        """
        self.batched.executor = backend

    @property
    def executor(self):
        """The installed execution backend, or ``None`` (serial)."""
        return None if self._batched is None else self._batched.executor

    def evaluate_layer_batch(self, layer: Layer, dataflow, pes,
                             l1_bytes) -> BatchCostReport:
        """Vectorized sweep of one layer over (pes, l1_bytes) vectors.

        Returns arrays bit-identical to calling :meth:`evaluate_layer`
        elementwise, computed in a handful of NumPy operations.
        """
        return self.batched.evaluate_layer_batch(layer, dataflow, pes,
                                                 l1_bytes)

    # ------------------------------------------------------------------
    # Per-layer evaluation
    # ------------------------------------------------------------------
    def evaluate_layer(self, layer: Layer, dataflow, pes: int,
                       l1_bytes: int) -> CostReport:
        """Estimate one layer on one design point.

        Args:
            layer: The layer to run.
            dataflow: Style name ("dla"/"eye"/"shi") or Dataflow instance.
            pes: Number of processing elements (>= 1).
            l1_bytes: L1 scratchpad size per PE in bytes (>= 1).
        """
        if pes < 1:
            raise ValueError(f"pes must be >= 1, got {pes}")
        if l1_bytes < 1:
            raise ValueError(f"l1_bytes must be >= 1, got {l1_bytes}")
        # Resolve the style exactly once: the resolved singleton is both
        # the cache key and the mapper used on a miss.
        dataflow = get_dataflow(dataflow)
        return self._evaluate_cached(layer, dataflow, int(pes),
                                     int(l1_bytes))

    def _evaluate_uncached(self, layer: Layer, dataflow: Dataflow, pes: int,
                           l1_bytes: int) -> CostReport:
        hw = self.hw
        plan = dataflow.plan(layer, pes, l1_bytes)

        pes_used = min(pes, plan.units)
        passes = math.ceil(plan.units / pes_used)
        compute_cycles = float(passes * plan.unit_macs)
        utilization = plan.units / (passes * pes_used)

        weight_bytes = layer.weight_elements * plan.weight_fetches
        input_bytes = layer.input_elements * plan.input_fetches
        output_bytes = layer.output_elements * plan.output_fetches
        l2_traffic = weight_bytes + input_bytes + output_bytes

        # DRAM sees each unique operand once; the L2 prefetches tiles.
        dram_bytes = float(
            layer.weight_elements + layer.input_elements
            + layer.output_elements
        )
        memory_cycles = dram_bytes / hw.dram_bandwidth_bytes_per_cycle
        latency = max(compute_cycles, memory_cycles) + hw.pipeline_fill_cycles

        pe_area, l1_area, l2_area, noc_area, l2_bytes = area_model(
            hw, pes, l1_bytes)
        area = pe_area + l1_area + l2_area + noc_area

        dynamic_pj = (
            layer.macs * hw.mac_energy_pj
            + layer.macs * hw.l1_accesses_per_mac * hw.l1_energy_per_byte_pj
            + l2_traffic * hw.l2_energy_per_byte_pj
            + dram_bytes * hw.dram_energy_per_byte_pj
        )
        static_mw = (
            pes * hw.pe_static_power_mw
            + pes * l1_bytes * hw.l1_static_power_mw_per_byte
            + l2_bytes * hw.l2_static_power_mw_per_byte
        )
        # 1 GHz: one cycle is 1 ns, so mW x cycles = pJ.
        static_pj = static_mw * latency / hw.clock_ghz
        energy_pj = dynamic_pj + static_pj
        power_mw = energy_pj / latency * hw.clock_ghz

        return CostReport(
            latency_cycles=latency,
            energy_nj=energy_pj / 1000.0,
            area_um2=area,
            power_mw=power_mw,
            pes_used=pes_used,
            pe_utilization=utilization,
            l1_bytes_per_pe=l1_bytes,
            l2_bytes=l2_bytes,
            tile_k=plan.tile_k,
            macs=layer.macs,
            dram_bytes=dram_bytes,
            l2_traffic_bytes=l2_traffic,
            compute_cycles=compute_cycles,
            memory_cycles=memory_cycles,
            pe_area_um2=pe_area,
            l1_area_um2=l1_area,
            l2_area_um2=l2_area,
            noc_area_um2=noc_area,
        )

    # ------------------------------------------------------------------
    # Whole-model evaluation
    # ------------------------------------------------------------------
    def evaluate_model(
        self,
        layers: Sequence[Layer],
        assignments: Sequence[LayerAssignment],
        dataflow: Optional[str] = None,
    ) -> ModelCostReport:
        """Evaluate a per-layer resource partition (the LP deployment).

        Args:
            layers: The model's layers, in order.
            assignments: One (pes, l1_bytes) -- or (pes, l1_bytes, style) for
                the MIX strategy -- per layer.
            dataflow: Default style used when an assignment omits one.

        Returns:
            Whole-model report: end-to-end latency and energy are sums over
            layers; area and power are sums over the per-layer partitions
            (the resources coexist on chip).
        """
        if len(layers) != len(assignments):
            raise ValueError(
                f"got {len(layers)} layers but {len(assignments)} assignments"
            )
        reports: List[CostReport] = []
        for layer, assignment in zip(layers, assignments):
            if len(assignment) == 3:
                pes, l1_bytes, style = assignment
            elif dataflow is not None:
                pes, l1_bytes = assignment
                style = dataflow
            else:
                raise ValueError(
                    "assignment lacks a dataflow and no default was given"
                )
            reports.append(self.evaluate_layer(layer, style, pes, l1_bytes))
        return ModelCostReport(
            latency_cycles=sum(r.latency_cycles for r in reports),
            energy_nj=sum(r.energy_nj for r in reports),
            area_um2=sum(r.area_um2 for r in reports),
            power_mw=sum(r.power_mw for r in reports),
            per_layer=reports,
        )

    def evaluate_model_ls(
        self,
        layers: Sequence[Layer],
        pes: int,
        l1_bytes: int,
        dataflow: str,
    ) -> ModelCostReport:
        """Evaluate a single shared design point run layer-by-layer (LS).

        Latency and energy sum over the sequential layer executions; area is
        that of the one accelerator; power is the worst (peak) layer power.
        """
        reports = [
            self.evaluate_layer(layer, dataflow, pes, l1_bytes)
            for layer in layers
        ]
        area = max(r.area_um2 for r in reports)
        power = max(r.power_mw for r in reports)
        return ModelCostReport(
            latency_cycles=sum(r.latency_cycles for r in reports),
            energy_nj=sum(r.energy_nj for r in reports),
            area_um2=area,
            power_mw=power,
            per_layer=reports,
        )

    def cache_info(self):
        """Expose LRU statistics (useful in perf tests)."""
        return self._evaluate_cached.cache_info()

    def clear_cache(self) -> None:
        self._evaluate_cached.cache_clear()
