"""Layer descriptions used by the cost model and the RL observation space.

A :class:`Layer` captures the seven shape dimensions of equation (1) in the
paper: output channels ``K``, input channels ``C``, input activation height
``Y`` and width ``X``, and kernel height ``R`` and width ``S``, plus the
layer-type indicator ``T``.  GEMM layers (M, N, K) are mapped onto the same
record via :func:`gemm_layer` so that one observation encoding serves both
CNN and GEMM models, exactly as the paper does (footnote 3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace


class LayerType(enum.IntEnum):
    """Layer-type indicator ``T`` of the observation space.

    The integer values are what gets (normalized and) fed to the policy
    network, so they are part of the public contract.
    """

    CONV = 0
    DWCONV = 1
    PWCONV = 2
    GEMM = 3

    @property
    def is_convolutional(self) -> bool:
        return self in (LayerType.CONV, LayerType.DWCONV, LayerType.PWCONV)


@dataclass(frozen=True)
class Layer:
    """One DNN layer as seen by the accelerator.

    Attributes:
        name: Human-readable identifier (unique within a model).
        layer_type: CONV / DWCONV / PWCONV / GEMM.
        K: Number of output channels (GEMM: M).
        C: Number of input channels (GEMM: K -- the contraction dim).
        Y: Input activation height (GEMM: N).
        X: Input activation width (GEMM: 1).
        R: Weight kernel height (GEMM: 1).
        S: Weight kernel width (GEMM: 1).
        stride: Convolution stride (both spatial dims).
    """

    name: str
    layer_type: LayerType
    K: int
    C: int
    Y: int
    X: int
    R: int = 1
    S: int = 1
    stride: int = 1

    def __post_init__(self) -> None:
        for dim in ("K", "C", "Y", "X", "R", "S", "stride"):
            value = getattr(self, dim)
            if not isinstance(value, int) or value < 1:
                raise ValueError(
                    f"layer {self.name!r}: dimension {dim} must be a positive "
                    f"integer, got {value!r}"
                )
        if self.R > self.Y or self.S > self.X:
            raise ValueError(
                f"layer {self.name!r}: kernel ({self.R}x{self.S}) larger than "
                f"input ({self.Y}x{self.X})"
            )
        if self.layer_type is LayerType.DWCONV and self.K != self.C:
            raise ValueError(
                f"layer {self.name!r}: depth-wise convolution requires K == C "
                f"(got K={self.K}, C={self.C})"
            )
        if self.layer_type is LayerType.PWCONV and (self.R != 1 or self.S != 1):
            raise ValueError(
                f"layer {self.name!r}: point-wise convolution requires 1x1 "
                f"kernel (got {self.R}x{self.S})"
            )

    @property
    def out_y(self) -> int:
        """Output activation height (valid padding, as MAESTRO models it)."""
        return (self.Y - self.R) // self.stride + 1

    @property
    def out_x(self) -> int:
        """Output activation width."""
        return (self.X - self.S) // self.stride + 1

    @property
    def macs(self) -> int:
        """Total multiply-accumulate operations for this layer."""
        spatial = self.out_y * self.out_x * self.R * self.S
        if self.layer_type is LayerType.DWCONV:
            # One filter per channel: no reduction across C.
            return self.C * spatial
        return self.K * self.C * spatial

    @property
    def weight_elements(self) -> int:
        """Number of weight values (one byte each in our 8-bit model)."""
        if self.layer_type is LayerType.DWCONV:
            return self.C * self.R * self.S
        return self.K * self.C * self.R * self.S

    @property
    def input_elements(self) -> int:
        return self.C * self.Y * self.X

    @property
    def output_elements(self) -> int:
        return self.K * self.out_y * self.out_x

    def scaled(self, factor: float) -> "Layer":
        """Return a copy with channel dims scaled (used by tests/examples)."""
        return replace(
            self,
            K=max(1, int(self.K * factor)),
            C=max(1, int(self.C * factor)) if self.layer_type is not LayerType.DWCONV
            else max(1, int(self.K * factor)),
        )


def gemm_layer(name: str, m: int, n: int, k: int) -> Layer:
    """Describe a GEMM of an (M, K) by (K, N) matrix product as a Layer.

    Following the paper's footnote 3, the three GEMM dimensions replace the
    seven convolution dimensions: M takes the role of output channels, K the
    contraction (input-channel) role, and N the spatial role.
    """
    return Layer(
        name=name, layer_type=LayerType.GEMM, K=m, C=k, Y=n, X=1, R=1, S=1
    )


@dataclass(frozen=True)
class ModelSummary:
    """Aggregate statistics for a layer list (used in reports and tests)."""

    name: str
    num_layers: int
    total_macs: int
    total_weights: int
    layer_type_counts: dict = field(default_factory=dict)


def summarize(name: str, layers: list) -> ModelSummary:
    """Aggregate layer counts, MACs, and weights for a layer list."""
    counts: dict = {}
    for layer in layers:
        key = layer.layer_type.name
        counts[key] = counts.get(key, 0) + 1
    return ModelSummary(
        name=name,
        num_layers=len(layers),
        total_macs=sum(layer.macs for layer in layers),
        total_weights=sum(layer.weight_elements for layer in layers),
        layer_type_counts=counts,
    )
