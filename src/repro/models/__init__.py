"""DNN model zoo: layer descriptions for the workloads evaluated in the paper.

The zoo provides the six models used throughout the ConfuciuX evaluation:
three CNNs (MobileNet-V2, MnasNet, ResNet-50) and three GEMM-based models
(GNMT, Transformer, NCF).  Each model is a plain list of :class:`Layer`
records carrying the seven shape dimensions the RL agent observes
(K, C, Y, X, R, S plus the layer-type indicator).
"""

from repro.models.layers import Layer, LayerType, gemm_layer
from repro.models.zoo import (
    MODEL_REGISTRY,
    get_model,
    gnmt,
    list_models,
    mnasnet,
    mobilenet_v2,
    ncf,
    resnet50,
    transformer,
)

__all__ = [
    "Layer",
    "LayerType",
    "gemm_layer",
    "MODEL_REGISTRY",
    "get_model",
    "list_models",
    "mobilenet_v2",
    "mnasnet",
    "resnet50",
    "gnmt",
    "transformer",
    "ncf",
]
