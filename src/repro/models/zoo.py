"""The six evaluation workloads of the paper, described layer by layer.

CNNs follow the published architectures (MobileNet-V2 [Sandler et al. 2018],
MnasNet-A1 [Tan et al. 2019], ResNet-50 [He et al. 2016]); GEMM-based models
(GNMT, Transformer, NCF) are described by the matrix shapes of their dense
computations as in the paper's footnote 3.  MobileNet-V2 comes out to the
52 layers the paper quotes, ResNet-50 to 53 (49 bottleneck convolutions plus
4 projection shortcuts).

All builders are pure functions returning fresh lists, so callers may mutate
the result freely.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.models.layers import Layer, LayerType, gemm_layer


def _conv(name: str, k: int, c: int, y: int, x: int, r: int, s: int,
          stride: int = 1) -> Layer:
    return Layer(name, LayerType.CONV, K=k, C=c, Y=y, X=x, R=r, S=s,
                 stride=stride)


def _dwconv(name: str, c: int, y: int, x: int, r: int, s: int,
            stride: int = 1) -> Layer:
    return Layer(name, LayerType.DWCONV, K=c, C=c, Y=y, X=x, R=r, S=s,
                 stride=stride)


def _pwconv(name: str, k: int, c: int, y: int, x: int) -> Layer:
    return Layer(name, LayerType.PWCONV, K=k, C=c, Y=y, X=x, R=1, S=1)


def mobilenet_v2(input_size: int = 224) -> List[Layer]:
    """MobileNet-V2: 52 MAC layers (stem + 17 inverted residuals + head)."""
    layers: List[Layer] = []
    size = input_size
    layers.append(_conv("conv0", 32, 3, size, size, 3, 3, stride=2))
    size //= 2
    channels = 32
    # (expansion t, output channels c, repeats n, first stride s)
    block_config = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ]
    block = 0
    for t, c_out, n, s in block_config:
        for i in range(n):
            stride = s if i == 0 else 1
            block += 1
            hidden = channels * t
            if t != 1:
                layers.append(
                    _pwconv(f"b{block}_expand", hidden, channels, size, size))
            layers.append(
                _dwconv(f"b{block}_dw", hidden, size, size, 3, 3, stride))
            if stride == 2:
                size //= 2
            layers.append(_pwconv(f"b{block}_project", c_out, hidden, size,
                                  size))
            channels = c_out
    layers.append(_pwconv("conv_head", 1280, channels, size, size))
    return layers


def mnasnet(input_size: int = 224) -> List[Layer]:
    """MnasNet-A1 MAC layers (squeeze-excite blocks omitted; they are not
    mapped onto the PE array by the paper's cost model either)."""
    layers: List[Layer] = []
    size = input_size
    layers.append(_conv("conv0", 32, 3, size, size, 3, 3, stride=2))
    size //= 2
    layers.append(_dwconv("sep_dw", 32, size, size, 3, 3))
    layers.append(_pwconv("sep_pw", 16, 32, size, size))
    channels = 16
    # (expansion t, output c, repeats n, first stride s, kernel)
    block_config = [
        (6, 24, 2, 2, 3),
        (3, 40, 3, 2, 5),
        (6, 80, 4, 2, 3),
        (6, 112, 2, 1, 3),
        (6, 160, 3, 2, 5),
        (6, 320, 1, 1, 3),
    ]
    block = 0
    for t, c_out, n, s, kernel in block_config:
        for i in range(n):
            stride = s if i == 0 else 1
            block += 1
            hidden = channels * t
            layers.append(
                _pwconv(f"mb{block}_expand", hidden, channels, size, size))
            layers.append(
                _dwconv(f"mb{block}_dw", hidden, size, size, kernel, kernel,
                        stride))
            if stride == 2:
                size //= 2
            layers.append(_pwconv(f"mb{block}_project", c_out, hidden, size,
                                  size))
            channels = c_out
    layers.append(_pwconv("conv_head", 1280, channels, size, size))
    return layers


def resnet50(input_size: int = 224) -> List[Layer]:
    """ResNet-50: 53 MAC layers (49 convolutions + 4 projection shortcuts)."""
    layers: List[Layer] = []
    size = input_size
    layers.append(_conv("conv1", 64, 3, size, size, 7, 7, stride=2))
    size //= 2
    size //= 2  # 3x3 max-pool stride 2 (no MACs)
    channels = 64
    stage_config = [
        (64, 256, 3, 1),
        (128, 512, 4, 2),
        (256, 1024, 6, 2),
        (512, 2048, 3, 2),
    ]
    for stage, (mid, out, blocks, first_stride) in enumerate(stage_config,
                                                             start=2):
        for i in range(blocks):
            stride = first_stride if i == 0 else 1
            prefix = f"s{stage}b{i + 1}"
            layers.append(_pwconv(f"{prefix}_1x1a", mid, channels, size, size))
            layers.append(
                _conv(f"{prefix}_3x3", mid, mid, size, size, 3, 3, stride))
            if stride == 2:
                size //= 2
            layers.append(_pwconv(f"{prefix}_1x1b", out, mid, size, size))
            if i == 0:
                layers.append(
                    _pwconv(f"{prefix}_shortcut", out, channels, size, size))
            channels = out
    return layers


def gnmt(seq_len: int = 128, hidden: int = 1024,
         vocab: int = 32000) -> List[Layer]:
    """GNMT: the dense GEMMs of an 8+8 layer LSTM encoder/decoder with
    attention and an output projection.

    Each LSTM layer contributes one fused gate GEMM of shape
    (4*hidden) x (2*hidden) applied to every token.
    """
    layers: List[Layer] = []
    for i in range(8):
        in_dim = hidden if i == 0 else 2 * hidden
        layers.append(
            gemm_layer(f"enc_lstm{i}", 4 * hidden, seq_len, in_dim))
    layers.append(gemm_layer("attn_score", hidden, seq_len, hidden))
    layers.append(gemm_layer("attn_context", hidden, seq_len, hidden))
    for i in range(8):
        in_dim = 2 * hidden
        layers.append(
            gemm_layer(f"dec_lstm{i}", 4 * hidden, seq_len, in_dim))
    layers.append(gemm_layer("proj_vocab", vocab, seq_len, hidden))
    return layers


def transformer(seq_len: int = 128, d_model: int = 512, d_ff: int = 2048,
                num_layers: int = 6, vocab: int = 33000) -> List[Layer]:
    """Transformer-base: per-layer attention projections and feed-forward
    GEMMs for the encoder and decoder stacks plus the vocabulary projection."""
    layers: List[Layer] = []

    def attention(prefix: str) -> List[Layer]:
        return [
            gemm_layer(f"{prefix}_q", d_model, seq_len, d_model),
            gemm_layer(f"{prefix}_k", d_model, seq_len, d_model),
            gemm_layer(f"{prefix}_v", d_model, seq_len, d_model),
            gemm_layer(f"{prefix}_o", d_model, seq_len, d_model),
        ]

    def ffn(prefix: str) -> List[Layer]:
        return [
            gemm_layer(f"{prefix}_ff1", d_ff, seq_len, d_model),
            gemm_layer(f"{prefix}_ff2", d_model, seq_len, d_ff),
        ]

    for i in range(num_layers):
        layers.extend(attention(f"enc{i}_self"))
        layers.extend(ffn(f"enc{i}"))
    for i in range(num_layers):
        layers.extend(attention(f"dec{i}_self"))
        layers.extend(attention(f"dec{i}_cross"))
        layers.extend(ffn(f"dec{i}"))
    layers.append(gemm_layer("proj_vocab", vocab, seq_len, d_model))
    return layers


def ncf(batch: int = 1024, embed_dim: int = 128) -> List[Layer]:
    """Neural collaborative filtering: the MLP tower GEMMs of NeuMF."""
    dims = [2 * embed_dim, 256, 128, 64]
    layers: List[Layer] = []
    for i in range(len(dims) - 1):
        layers.append(
            gemm_layer(f"mlp{i}", dims[i + 1], batch, dims[i]))
    layers.append(gemm_layer("predict", 1, batch, dims[-1] + embed_dim))
    return layers


MODEL_REGISTRY: Dict[str, Callable[[], List[Layer]]] = {
    "mobilenet_v2": mobilenet_v2,
    "mnasnet": mnasnet,
    "resnet50": resnet50,
    "gnmt": gnmt,
    "transformer": transformer,
    "ncf": ncf,
}


def list_models() -> List[str]:
    """Names accepted by :func:`get_model`, in evaluation order."""
    return list(MODEL_REGISTRY)


def get_model(name: str) -> List[Layer]:
    """Build a model's layer list by registry name.

    Raises:
        KeyError: if ``name`` is not a registered model.
    """
    try:
        builder = MODEL_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {', '.join(MODEL_REGISTRY)}"
        ) from None
    return builder()
