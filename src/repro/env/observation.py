"""The 10-dimensional observation of equation (1), normalized to [-1, 1].

    O_t = (K, C, Y, X, R, S, T, A_pe, A_buf, t)

The first seven dimensions describe the current layer's shape and type, the
next two echo the previous time step's actions (so even an MLP policy sees
its own budget-relevant history), and the last is the time-step index.
Normalization scales are derived from the target model so every dimension
lands in [-1, 1], which the paper notes stabilizes training.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.env.spaces import ActionSpace
from repro.models.layers import Layer, LayerType

#: Dimensionality of the observation vector (equation 1).
OBSERVATION_DIM = 10


@dataclass(frozen=True)
class ObservationEncoder:
    """Encodes (layer, previous action, time step) into the agent's input."""

    scales: np.ndarray          # per-dimension maxima for the shape dims
    num_steps: int              # episode length (layers in the model)
    space: ActionSpace

    @classmethod
    def for_model(cls, layers: Sequence[Layer],
                  space: ActionSpace) -> "ObservationEncoder":
        if not layers:
            raise ValueError("model has no layers")
        scales = np.array(
            [
                max(layer.K for layer in layers),
                max(layer.C for layer in layers),
                max(layer.Y for layer in layers),
                max(layer.X for layer in layers),
                max(layer.R for layer in layers),
                max(layer.S for layer in layers),
                max(len(LayerType) - 1, 1),
            ],
            dtype=np.float64,
        )
        return cls(scales=scales, num_steps=len(layers), space=space)

    def encode(self, layer: Layer, step: int,
               prev_action: Optional[Sequence[int]]) -> np.ndarray:
        """Build O_t.  ``prev_action`` is the previous step's level indices
        (None at t=0, encoded as -1 on both action dimensions)."""
        shape = np.array(
            [layer.K, layer.C, layer.Y, layer.X, layer.R, layer.S,
             float(layer.layer_type)],
            dtype=np.float64,
        )
        shape = 2.0 * shape / self.scales - 1.0
        top = max(self.space.num_levels - 1, 1)
        if prev_action is None:
            acted = np.array([-1.0, -1.0])
        else:
            acted = 2.0 * np.array(prev_action[:2], dtype=np.float64) / top \
                - 1.0
        t_norm = 2.0 * step / max(self.num_steps - 1, 1) - 1.0
        observation = np.concatenate([shape, acted, [t_norm]])
        return np.clip(observation, -1.0, 1.0)

    def encode_all(self, layers: Sequence[Layer]) -> List[np.ndarray]:
        """Shape-only encodings for every layer (used by the critic study,
        which regresses rewards from states without an action history)."""
        return [self.encode(layer, i, None) for i, layer in enumerate(layers)]
