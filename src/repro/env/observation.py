"""The 10-dimensional observation of equation (1), normalized to [-1, 1].

    O_t = (K, C, Y, X, R, S, T, A_pe, A_buf, t)

The first seven dimensions describe the current layer's shape and type, the
next two echo the previous time step's actions (so even an MLP policy sees
its own budget-relevant history), and the last is the time-step index.
Normalization scales are derived from the target model so every dimension
lands in [-1, 1], which the paper notes stabilizes training.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.env.spaces import ActionSpace
from repro.models.layers import Layer, LayerType

#: Dimensionality of the observation vector (equation 1).
OBSERVATION_DIM = 10


@dataclass(frozen=True)
class ObservationEncoder:
    """Encodes (layer, previous action, time step) into the agent's input.

    Eight of the ten dimensions -- the seven shape dims and the time index
    -- are static per (layer, step), so they are precomputed into template
    vectors at construction; :meth:`encode` copies the template and fills
    only the two action-dependent slots each RL step.
    """

    scales: np.ndarray          # per-dimension maxima for the shape dims
    num_steps: int              # episode length (layers in the model)
    space: ActionSpace
    #: (layer, step) -> ready-made observation with action slots at -1.
    _templates: Dict[Tuple[Layer, int], np.ndarray] = field(
        default_factory=dict, repr=False, compare=False)

    @classmethod
    def for_model(cls, layers: Sequence[Layer],
                  space: ActionSpace) -> "ObservationEncoder":
        if not layers:
            raise ValueError("model has no layers")
        scales = np.array(
            [
                max(layer.K for layer in layers),
                max(layer.C for layer in layers),
                max(layer.Y for layer in layers),
                max(layer.X for layer in layers),
                max(layer.R for layer in layers),
                max(layer.S for layer in layers),
                max(len(LayerType) - 1, 1),
            ],
            dtype=np.float64,
        )
        encoder = cls(scales=scales, num_steps=len(layers), space=space)
        for step, layer in enumerate(layers):
            encoder._template(layer, step)
        return encoder

    def _template(self, layer: Layer, step: int) -> np.ndarray:
        """The static part of O_t for one (layer, step): shape dims and
        time index filled in, action slots at the t=0 sentinel (-1)."""
        key = (layer, step)
        template = self._templates.get(key)
        if template is None:
            shape = np.array(
                [layer.K, layer.C, layer.Y, layer.X, layer.R, layer.S,
                 float(layer.layer_type)],
                dtype=np.float64,
            )
            shape = 2.0 * shape / self.scales - 1.0
            t_norm = 2.0 * step / max(self.num_steps - 1, 1) - 1.0
            template = np.clip(
                np.concatenate([shape, [-1.0, -1.0], [t_norm]]), -1.0, 1.0)
            self._templates[key] = template
        return template

    def encode(self, layer: Layer, step: int,
               prev_action: Optional[Sequence[int]]) -> np.ndarray:
        """Build O_t.  ``prev_action`` is the previous step's level indices
        (None at t=0, encoded as -1 on both action dimensions)."""
        observation = self._template(layer, step).copy()
        if prev_action is not None:
            top = max(self.space.num_levels - 1, 1)
            acted = 2.0 * np.array(prev_action[:2], dtype=np.float64) / top \
                - 1.0
            observation[7:9] = np.clip(acted, -1.0, 1.0)
        return observation

    def encode_batch(self, layer: Layer, step: int,
                     prev_actions: Optional[np.ndarray] = None,
                     count: Optional[int] = None) -> np.ndarray:
        """O_t for many lockstep episodes at one ``(layer, step)``.

        The per-(layer, step) template is tiled into an ``(E, 10)``
        matrix and only the two action slots are filled per row, so a
        whole wave of observations is one array fill instead of E
        :meth:`encode` calls.  Row ``e`` is bit-identical to
        ``encode(layer, step, prev_actions[e])``.

        Args:
            layer: The (shared) current layer of the wave.
            step: The (shared) time-step index of the wave.
            prev_actions: ``(E, >=2)`` previous level indices, or ``None``
                for the t=0 sentinel (both action slots at -1).
            count: Number of rows when ``prev_actions`` is ``None``.
        """
        if prev_actions is None:
            if count is None:
                raise ValueError(
                    "encode_batch needs prev_actions or an explicit count")
            return np.tile(self._template(layer, step), (count, 1))
        prev_actions = np.asarray(prev_actions)
        observations = np.tile(self._template(layer, step),
                               (len(prev_actions), 1))
        top = max(self.space.num_levels - 1, 1)
        acted = 2.0 * prev_actions[:, :2].astype(np.float64) / top - 1.0
        observations[:, 7:9] = np.clip(acted, -1.0, 1.0)
        return observations

    def encode_all(self, layers: Sequence[Layer]) -> List[np.ndarray]:
        """Shape-only encodings for every layer (used by the critic study,
        which regresses rewards from states without an action history)."""
        return [self.encode(layer, i, None) for i, layer in enumerate(layers)]
