"""Lockstep multi-episode environment: one batched cost call per wave.

The episodic agents used to advance one episode at a time, paying one
scalar ``CostModel.evaluate_layer`` call per layer step -- the last
remaining unbatched hot path after the population engine (PERFORMANCE.md).
:class:`VectorHWAssignmentEnv` steps **E episodes in lockstep waves**: all
live episodes sit at the same layer ``t``, so one wave evaluates their E
candidate assignments for that layer in a single
:class:`~repro.costmodel.batched.BatchedCostModel` call (routed through
``CostModel.batched``, so an installed parallel executor and the adaptive
dispatch threshold apply unchanged).  Budget consumption, termination, the
shared cross-episode ``p_min`` stream, and the per-episode
:class:`~repro.env.environment.EpisodeResult` bookkeeping are all
vectorized; episodes that violate early are masked out of later waves.

Semantics
---------
* Every per-episode quantity (rewards, episode cost, used budget,
  termination step) accumulates in the exact scalar order, so an episode
  replayed through a scalar :class:`HWAssignmentEnv` produces an
  identical :class:`EpisodeResult` -- the property suite in
  ``tests/test_vector_env.py`` locks this for any interleaving of
  violating episodes.
* The paper's cross-episode ``p_min`` ("worst layer performance observed
  across *all* episodes") folds across a wave in episode-index order:
  episode ``e``'s reward at step ``t`` sees the minimum over every
  earlier episode's step-``t`` performance in the same wave plus all
  previous waves.  For ``num_envs == 1`` this reduces exactly to the
  scalar stream, making single-env vector stepping **bit-identical** to
  ``HWAssignmentEnv.step`` (locked per episodic method by
  ``tests/test_rl_vector_parity.py``); for ``num_envs > 1`` it is a new,
  reproducible scenario (see the RNG contract in API.md).
* Unlike planned episodes (``HWAssignmentEnv.begin_plan``), waves see the
  full per-layer cost report before deciding termination, so **every**
  constraint kind is supported -- including power budgets.

The driving agent interacts through a narrow protocol::

    observations = venv.reset(episodes)        # (E, obs_dim)
    while not venv.all_done:
        live = venv.live_indices               # episode index per row
        actions = policy(observations)         # (len(live), heads)
        observations, rewards, dones, info = venv.step(actions)
        observations = observations[~dones]    # compact to the live set
    # info["episodes"][row] carries the EpisodeResult on finishing rows.

Cross-episode state (``p_min``, ``best``, ``episodes``, ``evaluations``)
lives on the wrapped scalar env, so scalar and vector driving of the same
``HWAssignmentEnv`` share one search history.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Tuple

import numpy as np

from repro.core.constraints import ResourceConstraint
from repro.costmodel.batched import STYLE_INDEX
from repro.env.environment import EpisodeResult, HWAssignmentEnv

__all__ = ["VectorHWAssignmentEnv"]


class _WaveHandle:
    """An in-flight wave from :meth:`VectorHWAssignmentEnv.step_async`.

    ``observations`` and ``dones`` are valid immediately (termination
    under a :class:`ResourceConstraint` depends only on the decoded
    assignments), so a driver can run the next policy forward while the
    wave's batched cost call is still in flight; rewards and episode
    results materialize in :meth:`VectorHWAssignmentEnv.step_wait`.
    """

    __slots__ = ("observations", "dones", "live", "step", "violated",
                 "_batch", "_thread", "_box")

    def __init__(self, live: np.ndarray, step: int,
                 violated: np.ndarray) -> None:
        self.live = live
        self.step = step
        self.violated = violated
        self._batch = None
        self._thread = None
        self._box = None

    def batch(self):
        """The wave's cost report, joining the background evaluation if
        one is in flight (executor errors re-raise here)."""
        if self._thread is not None:
            self._thread.join()
            self._thread = None
            outcome, payload = self._box[0]
            self._box = None
            if outcome == "error":
                raise payload
            self._batch = payload
        return self._batch


class VectorHWAssignmentEnv:
    """E lockstep episodes over one :class:`HWAssignmentEnv`.

    Args:
        env: The scalar environment whose task (layers, space, objective,
            constraint, cost model) and cross-episode state this vector
            env drives.  Must be a plain :class:`HWAssignmentEnv` (no
            proxies: the vector env writes its shared state back).
        num_envs: Maximum episodes per lockstep wave set (E).
    """

    #: Duck-typing marker the agents dispatch on (proxies forward it).
    is_vector = True

    def __init__(self, env: HWAssignmentEnv, num_envs: int) -> None:
        if not isinstance(env, HWAssignmentEnv):
            raise TypeError(
                "VectorHWAssignmentEnv wraps a plain HWAssignmentEnv "
                f"(got {type(env).__name__}); wrap observers around the "
                "vector env, not inside it")
        if num_envs < 1:
            raise ValueError("num_envs must be >= 1")
        self.env = env
        self.num_envs = int(num_envs)
        space = env.space
        self._pe_levels = np.asarray(space.pe_levels, dtype=np.int64)
        self._buf_levels = np.asarray(space.buf_levels, dtype=np.int64)
        self._heads = space.actions_per_step
        if space.is_mix:
            self._style_lut = np.asarray(
                [STYLE_INDEX[s] for s in space.dataflows], dtype=np.int64)
        else:
            self._style_lut = None
            self._fixed_style = STYLE_INDEX[env.dataflow]
        self._resource = isinstance(env.constraint, ResourceConstraint)
        self._active = 0
        self._live = np.zeros(0, dtype=np.int64)
        self._step_index = 0

    # ------------------------------------------------------------------
    # Scalar-env views (shared cross-episode state and task handles).
    # ------------------------------------------------------------------
    @property
    def space(self):
        return self.env.space

    @property
    def layers(self):
        return self.env.layers

    @property
    def observation_dim(self) -> int:
        return self.env.observation_dim

    @property
    def num_steps(self) -> int:
        return self.env.num_steps

    @property
    def best(self):
        return self.env.best

    @property
    def p_min(self):
        return self.env.p_min

    @property
    def episodes(self) -> int:
        return self.env.episodes

    @property
    def evaluations(self) -> int:
        return self.env.evaluations

    # ------------------------------------------------------------------
    @property
    def all_done(self) -> bool:
        """Whether every episode of the current wave set has finished."""
        return len(self._live) == 0

    @property
    def live_indices(self) -> np.ndarray:
        """Episode indices still stepping, in row order for :meth:`step`."""
        return self._live.copy()

    @property
    def num_active(self) -> int:
        """Episodes in the current wave set (including finished ones)."""
        return self._active

    # ------------------------------------------------------------------
    def reset(self, episodes: Optional[int] = None) -> np.ndarray:
        """Start a fresh wave set of ``episodes`` lockstep episodes.

        Returns the ``(episodes, obs_dim)`` observation matrix for step 0
        (every row is the scalar env's first observation).
        """
        episodes = self.num_envs if episodes is None else int(episodes)
        if not 1 <= episodes <= self.num_envs:
            raise ValueError(
                f"episodes must be in [1, {self.num_envs}], got {episodes}")
        env = self.env
        count, steps = episodes, env.num_steps
        self._active = count
        self._live = np.arange(count, dtype=np.int64)
        self._step_index = 0
        self._actions = np.zeros((count, steps, self._heads), dtype=np.int64)
        self._pes = np.zeros((count, steps), dtype=np.int64)
        self._l1 = np.zeros((count, steps), dtype=np.int64)
        self._episode_cost = np.zeros(count, dtype=np.float64)
        self._reward_sum = np.zeros(count, dtype=np.float64)
        self._used_budget = np.zeros(count, dtype=np.float64)
        self._used_pes = np.zeros(count, dtype=np.int64)
        self._used_l1 = np.zeros(count, dtype=np.int64)
        return env.encoder.encode_batch(env.layers[0], 0, None, count=count)

    # ------------------------------------------------------------------
    def _decode(self, actions: np.ndarray
                ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized ``ActionSpace.decode`` with the same range checks."""
        space = self.env.space
        num_levels = space.num_levels
        pe_idx, buf_idx = actions[:, 0], actions[:, 1]
        if pe_idx.min() < 0 or pe_idx.max() >= num_levels:
            raise ValueError("PE level index out of range")
        if buf_idx.min() < 0 or buf_idx.max() >= num_levels:
            raise ValueError("buffer level index out of range")
        if self._style_lut is not None:
            df_idx = actions[:, 2]
            if df_idx.min() < 0 or df_idx.max() >= len(space.dataflows):
                raise ValueError("dataflow index out of range")
            style_idx = self._style_lut[df_idx]
        else:
            style_idx = np.full(len(actions), self._fixed_style,
                                dtype=np.int64)
        return self._pe_levels[pe_idx], self._buf_levels[buf_idx], style_idx

    def _consume(self, live: np.ndarray, pes: np.ndarray, l1: np.ndarray,
                 batch) -> np.ndarray:
        """Vectorized ``HWAssignmentEnv._consume``: charge the wave's
        layers against each episode's budget; True per violated row."""
        constraint = self.env.constraint
        if self._resource:
            self._used_pes[live] += pes
            self._used_l1[live] += pes * l1
            self._used_budget[live] = self._used_pes[live].astype(np.float64)
            return ((self._used_pes[live] > constraint.max_pes)
                    | (self._used_l1[live] > constraint.max_l1_bytes))
        consumption = batch.constraint(constraint.kind)
        self._used_budget[live] = self._used_budget[live] + consumption
        return self._used_budget[live] > constraint.budget

    def _finish(self, episode_index: int, steps: int,
                feasible: bool) -> EpisodeResult:
        """Materialize one finished episode and fold it into the shared
        best / episode counters, exactly like ``HWAssignmentEnv._finish``."""
        env = self.env
        space = env.space
        actions = tuple(
            tuple(int(a) for a in self._actions[episode_index, s])
            for s in range(steps))
        if space.is_mix:
            assignments = tuple(
                (int(self._pes[episode_index, s]),
                 int(self._l1[episode_index, s]),
                 space.dataflows[int(self._actions[episode_index, s, 2])])
                for s in range(steps))
        else:
            assignments = tuple(
                (int(self._pes[episode_index, s]),
                 int(self._l1[episode_index, s]))
                for s in range(steps))
        episode = EpisodeResult(
            actions=actions,
            assignments=assignments,
            cost=float(self._episode_cost[episode_index]),
            used=float(self._used_budget[episode_index]),
            feasible=feasible,
            steps=steps,
        )
        env.episodes += 1
        if feasible and (env.best is None or episode.cost < env.best.cost):
            env.best = episode
        return episode

    # ------------------------------------------------------------------
    def _evaluate_wave(self, t: int, style_idx: np.ndarray,
                       pes: np.ndarray, l1: np.ndarray, count: int):
        """The wave's one batched cost call; an installed executor
        shards it and adaptive dispatch applies unchanged."""
        env = self.env
        return env.cost_model.batched.evaluate(
            env.plan_table,
            np.full(count, t, dtype=np.int64),
            style_idx, pes, l1)

    def step_async(self, actions, background: bool = True) -> _WaveHandle:
        """Advance the wave's env-side state and launch its cost batch.

        Returns a :class:`_WaveHandle` whose ``observations`` / ``dones``
        are valid immediately; pass it to :meth:`step_wait` -- in issue
        order -- to join the cost call and obtain the wave's rewards.
        Under a :class:`ResourceConstraint` (termination depends only on
        the decoded PE / buffer charges) with a parallel executor
        installed, the batched cost call runs on a background thread so
        a driver can overlap the next policy forward with it
        (double-buffered waves); otherwise the call runs inline and the
        handle is already complete.  Results are bit-identical either
        way: env mutations stay strictly ordered
        ``async(t) -> wait(t) -> async(t+1)`` and no agent RNG is
        consumed env-side.
        """
        live = self._live
        if len(live) == 0:
            raise RuntimeError(
                "step() called with no live episodes; reset()")
        actions = np.asarray(actions, dtype=np.int64)
        if actions.ndim != 2 or actions.shape != (len(live), self._heads):
            raise ValueError(
                f"expected an ({len(live)}, {self._heads}) action matrix, "
                f"got shape {actions.shape}")
        env = self.env
        t = self._step_index
        pes, l1, style_idx = self._decode(actions)

        self._actions[live, t] = actions
        self._pes[live, t] = pes
        self._l1[live, t] = l1

        if self._resource:
            violated = self._consume(live, pes, l1, None)
            handle = _WaveHandle(live, t, violated)
            if background and env.cost_model.executor is not None:
                box: list = []

                def run(evaluate=self._evaluate_wave,
                        args=(t, style_idx, pes, l1, len(live))) -> None:
                    try:
                        box.append(("ok", evaluate(*args)))
                    except BaseException as error:  # joined in batch()
                        box.append(("error", error))

                handle._box = box
                handle._thread = threading.Thread(
                    target=run, name="repro-wave-cost", daemon=True)
                handle._thread.start()
            else:
                handle._batch = self._evaluate_wave(
                    t, style_idx, pes, l1, len(live))
        else:
            # Budget constraints consume the wave's cost report, so
            # termination needs the batch: evaluate inline.
            batch = self._evaluate_wave(t, style_idx, pes, l1, len(live))
            violated = self._consume(live, pes, l1, batch)
            handle = _WaveHandle(live, t, violated)
            handle._batch = batch

        completed = t + 1 >= env.num_steps
        dones = violated | completed

        # Next observations: the scalar encode semantics per row -- the
        # next (layer, step) template for continuing and completed rows,
        # the current one for violating rows -- as two batch fills.
        next_step = min(t + 1, env.num_steps - 1)
        observations = env.encoder.encode_batch(
            env.layers[next_step], next_step, actions)
        if violated.any() and next_step != t:
            observations[violated] = env.encoder.encode_batch(
                env.layers[t], t, actions[violated])

        self._live = live[~dones]
        self._step_index = t + 1
        handle.observations = observations
        handle.dones = dones
        return handle

    def step_wait(self, handle: _WaveHandle):
        """Join a wave launched by :meth:`step_async`.

        Returns the same ``(observations, rewards, dones, info)`` tuple
        :meth:`step` returns.  Handles must be waited in issue order
        (the shared ``p_min`` stream folds across waves sequentially);
        the wave drivers keep at most one wave in flight.
        """
        env = self.env
        live = handle.live
        t = handle.step
        violated = handle.violated
        batch = handle.batch()
        env.evaluations += len(live)
        costs = np.asarray(env.objective.evaluate(batch), dtype=np.float64)
        self._episode_cost[live] = self._episode_cost[live] + costs

        # Shared p_min stream, folded across the wave in episode-index
        # order (the scalar stream exactly, for one live episode).
        performance = -costs
        previous = env.p_min
        previous_value = np.inf if previous is None else previous
        stream = np.where(violated, np.inf, performance)
        running = np.minimum(np.minimum.accumulate(stream), previous_value)
        if env.reward_shaping == "pmin":
            shaped = performance - running
        else:
            shaped = performance
        if env.penalty_mode == "accumulated":
            penalties = -self._reward_sum[live]
        else:
            penalties = np.full(len(live), env.constant_penalty)
        rewards = np.where(violated, penalties, shaped)
        self._reward_sum[live] = self._reward_sum[live] + rewards
        final_min = float(running[-1])
        if not np.isinf(final_min):
            env.p_min = final_min

        dones = handle.dones
        episodes_info: List[Optional[EpisodeResult]] = [None] * len(live)
        if dones.any():
            violated_list = violated.tolist()
            for row in np.flatnonzero(dones).tolist():
                episodes_info[row] = self._finish(
                    int(live[row]), t + 1,
                    feasible=not violated_list[row])

        return handle.observations, rewards, dones, {
            "episodes": episodes_info,
            "violated": violated,
            "batch": batch,
        }

    def step(self, actions):
        """Advance every live episode by one layer in a single wave.

        Args:
            actions: ``(len(live_indices), actions_per_step)`` level
                indices, row ``r`` acting for episode ``live_indices[r]``.

        Returns:
            ``(observations, rewards, dones, info)`` -- all row-aligned
            with the stepped episodes.  ``observations`` holds every
            stepped episode's next observation (finished rows carry
            their terminal observation; compact with ``~dones`` before
            the next forward pass).  ``info["episodes"]`` carries one
            :class:`EpisodeResult` per finishing row (``None``
            elsewhere); ``info["batch"]`` is the wave's
            :class:`~repro.costmodel.report.BatchCostReport`.
        """
        return self.step_wait(self.step_async(actions, background=False))
