"""The coarse-grained action space of Table I.

The agent navigates the huge design space with ``L`` discrete levels per
action.  PE levels follow the paper's marginal-return spacing (dense at the
low end); buffer levels are the dataflow's design-time ladder (for the
NVDLA style with a 3x3 kernel this is exactly 19, 29, ..., 129 bytes).
Table IX sweeps ``L`` in {10, 12, 14}, so levels are generated for any L.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.costmodel.dataflow import DATAFLOW_ORDER, get_dataflow

#: Table I's PE ladder for the default L = 12.
_CANONICAL_PE_LEVELS = (1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 96, 128)


def canonical_pe_levels(num_levels: int = 12,
                        max_pes: int = 128) -> List[int]:
    """PE level values for an ``num_levels``-step ladder up to ``max_pes``.

    L = 12 with the default ceiling reproduces Table I exactly; other
    configurations use a geometric ladder (capturing the same
    marginal-return intuition: doubling helps early, barely at the top).
    """
    if num_levels < 2:
        raise ValueError("need at least 2 levels")
    if max_pes < num_levels:
        raise ValueError("max_pes must be >= num_levels")
    if num_levels == 12 and max_pes == 128:
        return list(_CANONICAL_PE_LEVELS)
    ladder = np.geomspace(1, max_pes, num_levels)
    levels = sorted(set(int(round(v)) for v in ladder))
    # Rounding can merge small levels; refill from the smallest gaps.
    candidate = 1
    while len(levels) < num_levels:
        if candidate not in levels:
            levels.append(candidate)
            levels.sort()
        candidate += 1
    return levels[:num_levels]


@dataclass(frozen=True)
class ActionSpace:
    """The per-time-step action menu.

    Attributes:
        pe_levels: PE counts selectable per layer.
        buf_levels: L1 byte sizes selectable per layer (dataflow ladder).
        dataflows: When set, the agent also picks a style per layer (MIX);
            ``None`` means the style is fixed externally.
    """

    pe_levels: Tuple[int, ...]
    buf_levels: Tuple[int, ...]
    dataflows: Optional[Tuple[str, ...]] = None

    @classmethod
    def build(cls, dataflow: str = "dla", num_levels: int = 12,
              max_pes: int = 128, mix: bool = False) -> "ActionSpace":
        """Construct the Table-I space for a dataflow (or the MIX space).

        For MIX the buffer ladder must serve all styles, so the union of
        the three ladders is quantized back down to ``num_levels`` entries.
        """
        pe_levels = tuple(canonical_pe_levels(num_levels, max_pes))
        if mix:
            merged = sorted(
                set(
                    level
                    for style in DATAFLOW_ORDER
                    for level in get_dataflow(style).buffer_levels(num_levels)
                )
            )
            indices = np.linspace(0, len(merged) - 1, num_levels)
            buf_levels = tuple(merged[int(round(i))] for i in indices)
            return cls(pe_levels, buf_levels, tuple(DATAFLOW_ORDER))
        buf_levels = tuple(get_dataflow(dataflow).buffer_levels(num_levels))
        return cls(pe_levels, buf_levels, None)

    def __post_init__(self) -> None:
        if len(self.pe_levels) != len(self.buf_levels):
            raise ValueError("PE and buffer ladders must have equal length")
        if list(self.pe_levels) != sorted(set(self.pe_levels)):
            raise ValueError("pe_levels must be strictly increasing")
        if list(self.buf_levels) != sorted(set(self.buf_levels)):
            raise ValueError("buf_levels must be strictly increasing")

    @property
    def num_levels(self) -> int:
        return len(self.pe_levels)

    @property
    def is_mix(self) -> bool:
        return self.dataflows is not None

    @property
    def actions_per_step(self) -> int:
        """2 for (PE, Buf); 3 when the dataflow is also an action."""
        return 3 if self.is_mix else 2

    @property
    def head_sizes(self) -> Tuple[int, ...]:
        """Output sizes of the policy network's action heads."""
        sizes = [self.num_levels, self.num_levels]
        if self.is_mix:
            sizes.append(len(self.dataflows))
        return tuple(sizes)

    def decode(self, action: Sequence[int]):
        """Level indices -> concrete (pes, l1_bytes[, style]) values."""
        if len(action) != self.actions_per_step:
            raise ValueError(
                f"expected {self.actions_per_step} sub-actions, got "
                f"{len(action)}"
            )
        pe_idx, buf_idx = int(action[0]), int(action[1])
        if not 0 <= pe_idx < self.num_levels:
            raise ValueError(f"PE level index {pe_idx} out of range")
        if not 0 <= buf_idx < self.num_levels:
            raise ValueError(f"buffer level index {buf_idx} out of range")
        decoded = (self.pe_levels[pe_idx], self.buf_levels[buf_idx])
        if self.is_mix:
            df_idx = int(action[2])
            if not 0 <= df_idx < len(self.dataflows):
                raise ValueError(f"dataflow index {df_idx} out of range")
            decoded = decoded + (self.dataflows[df_idx],)
        return decoded

    def max_action(self) -> Tuple[int, ...]:
        """The uniform maximum action pair used to measure C_max (Table II)."""
        top = self.num_levels - 1
        if self.is_mix:
            return (top, top, 0)
        return (top, top)

    def nearest_levels(self, pes: int, l1_bytes: int) -> Tuple[int, int]:
        """Snap raw values back onto the ladder (used by continuous agents
        and by stage-2 -> stage-1 round trips)."""
        pe_idx = int(np.argmin([abs(p - pes) for p in self.pe_levels]))
        buf_idx = int(np.argmin([abs(b - l1_bytes) for b in self.buf_levels]))
        return pe_idx, buf_idx

    def design_space_size(self, num_layers: int) -> float:
        """|space| = (L^2 [* styles])^N -- the O(10^112) of Section IV-C4."""
        per_step = float(self.num_levels) ** 2
        if self.is_mix:
            per_step *= len(self.dataflows)
        return per_step ** num_layers
