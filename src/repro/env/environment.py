"""The HW-assignment environment (paper Figure 3, Sections III-B..III-F).

An episode ("epoch" in the paper) walks the model's layers; each step the
agent assigns (PEs, Buffer) -- and a dataflow style under MIX -- to the
current layer.  The environment

* evaluates the layer with the cost model,
* tracks the remaining constraint budget and terminates with a penalty
  equal to the negated accumulated episode reward when it is violated
  (equation 2's Penalty branch),
* shapes rewards as ``P_t - P_min`` where ``P_t`` is the (negated) layer
  cost and ``P_min`` the worst layer performance observed across *all*
  episodes, keeping rewards positive while feasible, and
* records the best feasible complete design point seen so far.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.constraints import PlatformConstraint, ResourceConstraint
from repro.core.evaluator import Constraint
from repro.costmodel.batched import STYLE_INDEX, LayerTable
from repro.costmodel.estimator import CostModel, area_um2
from repro.costmodel.report import CostReport
from repro.env.observation import ObservationEncoder
from repro.env.spaces import ActionSpace
from repro.models.layers import Layer
from repro.objectives import resolve_objective


@dataclass(frozen=True)
class EpisodeResult:
    """Summary of one completed episode."""

    actions: Tuple[Tuple[int, ...], ...]
    assignments: Tuple[Tuple, ...]
    cost: float
    used: float
    feasible: bool
    steps: int

    @property
    def genome(self) -> List[int]:
        """Flattened level-index genome (stage-2 GA seed format)."""
        return [gene for action in self.actions for gene in action]


class HWAssignmentEnv:
    """Layer-by-layer resource-assignment MDP.

    Args:
        layers: The target model (one time step per layer).
        space: Coarse-grained action space (Table I).
        objective: Any objective spec (registered name, ``weighted:`` /
            ``multi:`` string, spec dict, or
            :class:`repro.objectives.Objective` instance) -- minimized.
            Episodic rewards score the resolved objective per layer;
            multi-objective specs reward their primary component.
        constraint: Area/power budget or FPGA resource caps.
        cost_model: Analytical estimator (the Env's MAESTRO).
        dataflow: Fixed style; required unless ``space.is_mix``.
        reward_shaping: "pmin" (the paper's P_t - P_min shaping) or "raw"
            (the unshaped negative cost) -- the ablation knob behind the
            Section III-E design argument.
        penalty_mode: "accumulated" (the paper's negated accumulated
            episode reward) or "constant" (the threshold-based penalty the
            paper argues against).
        constant_penalty: Penalty value used when ``penalty_mode`` is
            "constant".
    """

    def __init__(
        self,
        layers: Sequence[Layer],
        space: ActionSpace,
        objective: str,
        constraint: Constraint,
        cost_model: CostModel,
        dataflow: Optional[str] = None,
        reward_shaping: str = "pmin",
        penalty_mode: str = "accumulated",
        constant_penalty: float = -1.0,
    ) -> None:
        if not layers:
            raise ValueError("model has no layers")
        if not space.is_mix and dataflow is None:
            raise ValueError("a dataflow is required for non-MIX spaces")
        if reward_shaping not in ("pmin", "raw"):
            raise ValueError(
                f"unknown reward_shaping {reward_shaping!r} "
                f"(use 'pmin' or 'raw')")
        if penalty_mode not in ("accumulated", "constant"):
            raise ValueError(
                f"unknown penalty_mode {penalty_mode!r} "
                f"(use 'accumulated' or 'constant')")
        self.layers = list(layers)
        self.space = space
        self.objective = resolve_objective(objective)
        self.constraint = constraint
        self.cost_model = cost_model
        self.dataflow = dataflow
        self.reward_shaping = reward_shaping
        self.penalty_mode = penalty_mode
        self.constant_penalty = constant_penalty
        self.encoder = ObservationEncoder.for_model(self.layers, space)

        # Cross-episode state (paper: tracked during the training process).
        self.p_min: Optional[float] = None
        self.best: Optional[EpisodeResult] = None
        self.episodes = 0
        self.evaluations = 0

        self._reset_episode_state()

    # ------------------------------------------------------------------
    @property
    def num_steps(self) -> int:
        return len(self.layers)

    @property
    def observation_dim(self) -> int:
        return 10

    def _reset_episode_state(self) -> None:
        self._step = 0
        self._prev_action: Optional[Sequence[int]] = None
        self._episode_rewards: List[float] = []
        self._episode_actions: List[Tuple[int, ...]] = []
        self._episode_assignments: List[Tuple] = []
        self._episode_cost = 0.0
        self._used_budget = 0.0
        self._used_pes = 0
        self._used_l1 = 0
        self._done = False

    # ------------------------------------------------------------------
    def reset(self) -> np.ndarray:
        """Start a new episode; returns the first observation."""
        self._reset_episode_state()
        return self.encoder.encode(self.layers[0], 0, None)

    def step(self, action: Sequence[int]):
        """Apply one action pair; returns (obs, reward, done, info).

        ``info['episode']`` carries the :class:`EpisodeResult` on the step
        that ends the episode (success or violation), else ``None``.
        """
        if self._done:
            raise RuntimeError("step() called on a finished episode; reset()")
        action = tuple(int(a) for a in action)
        layer = self.layers[self._step]
        decoded = self.space.decode(action)
        if len(decoded) == 3:
            pes, l1_bytes, style = decoded
        else:
            pes, l1_bytes = decoded
            style = self.dataflow
        report = self.cost_model.evaluate_layer(layer, style, pes, l1_bytes)
        self.evaluations += 1

        self._episode_actions.append(action)
        self._episode_assignments.append(decoded)
        self._episode_cost += self.objective.evaluate(report)
        violated = self._consume(report, pes, l1_bytes)

        if violated:
            if self.penalty_mode == "accumulated":
                # Equation 2: the penalty is the negated accumulated
                # reward, scaling itself to the objective's magnitude.
                reward = -float(sum(self._episode_rewards))
            else:
                reward = self.constant_penalty
            self._episode_rewards.append(reward)
            episode = self._finish(feasible=False)
            observation = self.encoder.encode(layer, self._step,
                                              action)
            return observation, reward, True, {
                "report": report, "violated": True, "episode": episode,
            }

        performance = -self.objective.evaluate(report)
        if self.p_min is None or performance < self.p_min:
            self.p_min = performance
        if self.reward_shaping == "pmin":
            reward = performance - self.p_min
        else:
            reward = performance
        self._episode_rewards.append(reward)

        self._prev_action = action
        self._step += 1
        done = self._step >= self.num_steps
        episode = self._finish(feasible=True) if done else None
        if done:
            next_layer = layer
        else:
            next_layer = self.layers[self._step]
        observation = self.encoder.encode(next_layer, min(self._step,
                                                          self.num_steps - 1),
                                          action)
        return observation, reward, done, {
            "report": report, "violated": False, "episode": episode,
        }

    # ------------------------------------------------------------------
    def _consume(self, report: CostReport, pes: int, l1_bytes: int) -> bool:
        """Charge this layer against the budget; True if now violated."""
        constraint = self.constraint
        if isinstance(constraint, ResourceConstraint):
            self._used_pes += pes
            self._used_l1 += pes * l1_bytes
            self._used_budget = float(self._used_pes)
            return (self._used_pes > constraint.max_pes
                    or self._used_l1 > constraint.max_l1_bytes)
        self._used_budget += constraint.consumption(report)
        return self._used_budget > constraint.budget

    def _finish(self, feasible: bool) -> EpisodeResult:
        self._done = True
        self.episodes += 1
        episode = EpisodeResult(
            actions=tuple(self._episode_actions),
            assignments=tuple(self._episode_assignments),
            cost=self._episode_cost,
            used=self._used_budget,
            feasible=feasible,
            steps=len(self._episode_actions),
        )
        if feasible and (self.best is None or episode.cost < self.best.cost):
            self.best = episode
        return episode

    # ------------------------------------------------------------------
    def budget_left(self) -> float:
        """L_budget of Section III-D (inf when unconstrained)."""
        constraint = self.constraint
        if isinstance(constraint, ResourceConstraint):
            return float(constraint.max_pes - self._used_pes)
        return constraint.budget - self._used_budget

    # ------------------------------------------------------------------
    # Planned episodes: batched scoring of a whole epoch
    # ------------------------------------------------------------------
    def plan_supported(self) -> bool:
        """Whether this env can run deferred-scoring episodes.

        A planned episode must decide termination (constraint violation)
        *before* any cost-model results exist, because sampling the next
        action may not happen after a violation -- that would consume RNG
        the scalar path does not.  The check is exact for resource caps
        (pure resource arithmetic) and for area budgets (area has a
        closed form independent of the layer mapping); power needs the
        full per-layer plan, so power-constrained envs stay on the
        scalar step path.
        """
        if isinstance(self.constraint, ResourceConstraint):
            return True
        return self.constraint.kind == "area"

    def begin_plan(self) -> "EpisodePlan":
        """Start a deferred-scoring episode (call :meth:`reset` first).

        The returned :class:`EpisodePlan` walks the layers exactly like
        :meth:`step` -- same observations, same termination -- but defers
        every cost-model evaluation to one batched call at
        :meth:`EpisodePlan.commit`, which is where an installed parallel
        backend shards the epoch across workers.
        """
        if not self.plan_supported():
            raise RuntimeError(
                "planned episodes need a resource or area constraint; "
                f"this env is {self.constraint.kind!r}-constrained")
        if self._done or self._step:
            raise RuntimeError("begin_plan() requires a fresh reset()")
        return EpisodePlan(self)

    @property
    def plan_table(self) -> LayerTable:
        """This model's :class:`LayerTable`, built once per env."""
        if getattr(self, "_plan_table", None) is None:
            self._plan_table = LayerTable.build(self.layers)
        return self._plan_table


class EpisodePlan:
    """One deferred-scoring episode over a :class:`HWAssignmentEnv`.

    The driver loop mirrors the scalar protocol::

        observation = env.reset()
        plan = env.begin_plan()
        while not done:
            action = policy(observation)
            observation, done = plan.step(action)
        rewards, episode = plan.commit()

    :meth:`step` applies the action bookkeeping and the *exact*
    termination rule of ``HWAssignmentEnv.step`` (resource arithmetic, or
    the closed-form area model) without touching the cost model;
    :meth:`commit` scores every recorded layer in one batched-estimator
    call and replays the reward shaping sequentially, so the rewards, the
    ``p_min`` trajectory, the :class:`EpisodeResult`, and all env
    counters come out bit-identical to the scalar path.
    """

    def __init__(self, env: HWAssignmentEnv) -> None:
        self.env = env
        self._actions: List[Tuple[int, ...]] = []
        self._decoded: List[Tuple] = []
        self._pes: List[int] = []
        self._l1: List[int] = []
        self._styles: List[str] = []
        self._used_budget = 0.0
        self._used_pes = 0
        self._used_l1 = 0
        self._done = False
        self._violated = False

    # ------------------------------------------------------------------
    def _check(self, pes: int, l1_bytes: int) -> bool:
        """The termination rule of ``HWAssignmentEnv._consume``, computed
        without a cost report."""
        constraint = self.env.constraint
        if isinstance(constraint, ResourceConstraint):
            self._used_pes += pes
            self._used_l1 += pes * l1_bytes
            self._used_budget = float(self._used_pes)
            return (self._used_pes > constraint.max_pes
                    or self._used_l1 > constraint.max_l1_bytes)
        # Area accumulates exactly as consumption(report) does: the
        # closed form and the report share one arithmetic (area_model).
        self._used_budget += area_um2(self.env.cost_model.hw, pes, l1_bytes)
        return self._used_budget > constraint.budget

    def step(self, action: Sequence[int]):
        """Record one action; returns (observation, done) -- no reward
        yet, rewards exist only after :meth:`commit`."""
        if self._done:
            raise RuntimeError("step() called on a finished plan")
        env = self.env
        action = tuple(int(a) for a in action)
        step_index = len(self._actions)
        layer = env.layers[step_index]
        decoded = env.space.decode(action)
        if len(decoded) == 3:
            pes, l1_bytes, style = decoded
        else:
            pes, l1_bytes = decoded
            style = env.dataflow
        self._actions.append(action)
        self._decoded.append(decoded)
        self._pes.append(pes)
        self._l1.append(l1_bytes)
        self._styles.append(style)

        if self._check(pes, l1_bytes):
            self._violated = True
            self._done = True
            observation = env.encoder.encode(layer, step_index, action)
            return observation, True

        next_index = step_index + 1
        self._done = next_index >= env.num_steps
        next_layer = (layer if self._done else env.layers[next_index])
        observation = env.encoder.encode(
            next_layer, min(next_index, env.num_steps - 1), action)
        return observation, self._done

    # ------------------------------------------------------------------
    def commit(self) -> Tuple[List[float], EpisodeResult]:
        """Score the recorded episode in one batched call and fold the
        outcome back into the env; returns (rewards, episode)."""
        if not self._done:
            raise RuntimeError("commit() before the episode finished")
        env = self.env
        steps = len(self._actions)
        batch = env.cost_model.batched.evaluate(
            env.plan_table,
            np.arange(steps, dtype=np.int64),
            np.array([STYLE_INDEX[s] for s in self._styles], dtype=np.int64),
            np.array(self._pes, dtype=np.int64),
            np.array(self._l1, dtype=np.int64))
        env.evaluations += steps
        costs = np.asarray(env.objective.evaluate(batch)).tolist()

        # Sequential replay of the reward shaping, in scalar step order.
        rewards: List[float] = []
        episode_cost = 0.0
        for index, cost in enumerate(costs):
            episode_cost += cost
            if self._violated and index == steps - 1:
                if env.penalty_mode == "accumulated":
                    rewards.append(-float(sum(rewards)))
                else:
                    rewards.append(env.constant_penalty)
                break
            performance = -cost
            if env.p_min is None or performance < env.p_min:
                env.p_min = performance
            if env.reward_shaping == "pmin":
                rewards.append(performance - env.p_min)
            else:
                rewards.append(performance)

        env._episode_actions = list(self._actions)
        env._episode_assignments = list(self._decoded)
        env._episode_cost = episode_cost
        env._used_budget = self._used_budget
        env._used_pes = self._used_pes
        env._used_l1 = self._used_l1
        episode = env._finish(feasible=not self._violated)
        return rewards, episode
