"""The interactive environment the RL agents search in (paper Section III).

``HWAssignmentEnv`` walks a DNN model layer by layer; at each time step the
agent picks a coarse-grained (PE, Buffer) action pair -- plus a dataflow
style under the MIX strategy -- and receives a shaped reward from the cost
model, with constraint violations penalized by the negated accumulated
episode reward (equation 2).
"""

from repro.env.spaces import ActionSpace, canonical_pe_levels
from repro.env.observation import ObservationEncoder, OBSERVATION_DIM
from repro.env.environment import EpisodeResult, HWAssignmentEnv
from repro.env.vector import VectorHWAssignmentEnv

__all__ = [
    "ActionSpace",
    "canonical_pe_levels",
    "ObservationEncoder",
    "OBSERVATION_DIM",
    "HWAssignmentEnv",
    "EpisodeResult",
    "VectorHWAssignmentEnv",
]
