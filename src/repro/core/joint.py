"""Dataflow-HW co-automation: the MIX strategy (paper Section IV-D).

Rather than fixing one dataflow style, the agent makes three decisions per
layer -- PEs, Buffers, *and* style.  ``JointSearch`` wraps ConfuciuX with
the MIX action space and exposes the per-layer style assignment that Fig. 8
visualizes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.confuciux import ConfuciuX, ConfuciuXResult
from repro.core.evaluator import Constraint
from repro.costmodel.estimator import CostModel
from repro.models.layers import Layer

#: Single-letter labels used under Fig. 8's x-axis.
STYLE_LETTERS = {"dla": "D", "shi": "S", "eye": "E"}


class JointSearch:
    """Con'X-MIX: joint per-layer dataflow and resource assignment."""

    def __init__(self, layers: Sequence[Layer], objective="latency",
                 constraint: Optional[Constraint] = None,
                 constraint_kind: str = "area", platform: str = "iot",
                 num_levels: int = 12, max_pes: int = 128,
                 cost_model: Optional[CostModel] = None,
                 seed: Optional[int] = None, **confuciux_kwargs) -> None:
        self.pipeline = ConfuciuX(
            layers,
            objective=objective,
            constraint=constraint,
            dataflow=None,
            mix=True,
            num_levels=num_levels,
            max_pes=max_pes,
            constraint_kind=constraint_kind,
            platform=platform,
            cost_model=cost_model,
            seed=seed,
            **confuciux_kwargs,
        )

    def run(self, global_epochs: int = 500,
            finetune_generations: int = 200) -> ConfuciuXResult:
        return self.pipeline._run(global_epochs, finetune_generations)


def dataflow_assignment_table(
    result: ConfuciuXResult, layers: Sequence[Layer]
) -> List[Dict]:
    """Per-layer rows of Fig. 8: layer number, style letter, PEs, Buffers.

    Raises:
        ValueError: if the result has no feasible solution or was not
            produced by a MIX search (assignments carry no style).
    """
    assignments = result.best_assignments
    if assignments is None:
        raise ValueError("result has no feasible solution")
    rows: List[Dict] = []
    for index, (layer, assignment) in enumerate(zip(layers, assignments),
                                                start=1):
        if len(assignment) != 3:
            raise ValueError("not a MIX result: assignment lacks a style")
        pes, l1_bytes, style = assignment
        rows.append({
            "layer": index,
            "name": layer.name,
            "type": layer.layer_type.name,
            "style": style,
            "letter": STYLE_LETTERS.get(style, "?"),
            "pes": pes,
            "l1_bytes": l1_bytes,
        })
    return rows


def style_histogram(rows: Sequence[Dict]) -> Dict[str, int]:
    """How many layers chose each style (summary used by tests/benches)."""
    counts: Dict[str, int] = {}
    for row in rows:
        counts[row["style"]] = counts.get(row["style"], 0) + 1
    return counts
