"""The two-stage ConfuciuX pipeline (paper Figure 3).

Stage 1 trains a REINFORCE agent over the coarse Table-I action levels
(global search); stage 2 seeds the local GA with the stage-1 solution and
polishes it in the raw integer space (local fine-tuning).  The result
carries everything the paper reports: the first feasible value, the
converged global value, the fine-tuned value, the convergence traces
(Fig. 7 / Fig. 9), and the constraint-utilization report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.constraints import (
    PlatformConstraint,
    ResourceConstraint,
    platform_constraint,
)
from repro.core.evaluator import Constraint, DesignPointEvaluator
from repro.costmodel.estimator import CostModel
from repro.costmodel.report import UtilizationReport
from repro.env.environment import HWAssignmentEnv
from repro.env.spaces import ActionSpace
from repro.ga.local_ga import LocalGA
from repro.models.layers import Layer
from repro.rl.common import SearchResult
from repro.rl.reinforce import Reinforce


@dataclass
class ConfuciuXResult:
    """Everything ConfuciuX reports for one task."""

    objective: object
    constraint: Constraint
    global_result: SearchResult
    finetune_result: Optional[SearchResult]

    @property
    def initial_valid_cost(self) -> Optional[float]:
        """The first feasible value the global stage found (Table VII)."""
        for value in self.global_result.history:
            if value != float("inf"):
                return value
        return None

    @property
    def global_cost(self) -> Optional[float]:
        return self.global_result.best_cost

    @property
    def best_cost(self) -> Optional[float]:
        if self.finetune_result and self.finetune_result.best_cost is not None:
            return self.finetune_result.best_cost
        return self.global_cost

    @property
    def best_assignments(self) -> Optional[Tuple]:
        if (self.finetune_result
                and self.finetune_result.best_assignments is not None):
            return self.finetune_result.best_assignments
        return self.global_result.best_assignments

    @property
    def trace(self) -> List[float]:
        """Best-so-far cost per epoch across both stages (Fig. 9)."""
        combined = list(self.global_result.history)
        if self.finetune_result:
            floor = combined[-1] if combined else float("inf")
            for value in self.finetune_result.history:
                floor = min(floor, value)
                combined.append(floor)
        return combined

    def improvement_fractions(self) -> Tuple[Optional[float], Optional[float]]:
        """(stage-1 improvement over first valid, stage-2 over stage-1),
        the two "Impr. (%)" columns of Table VII, as fractions."""
        first = self.initial_valid_cost
        stage1 = self.global_cost
        stage2 = (self.finetune_result.best_cost
                  if self.finetune_result else None)
        impr1 = None if (first is None or stage1 is None or first == 0) \
            else (first - stage1) / first
        impr2 = None if (stage1 is None or stage2 is None or stage1 == 0) \
            else (stage1 - stage2) / stage1
        return impr1, impr2

    def utilization(self) -> Optional[UtilizationReport]:
        """Constraint-utilization report for the final solution."""
        if self.best_cost is None:
            return None
        used = self._final_used
        budget = (self.constraint.budget
                  if isinstance(self.constraint, PlatformConstraint)
                  else float(self.constraint.max_pes))
        return UtilizationReport(constraint=self.constraint.kind,
                                 budget=budget, used=used)

    _final_used: float = field(default=0.0, repr=False)


class ConfuciuX:
    """End-to-end autonomous HW resource assignment.

    Args:
        layers: Target DNN model.
        objective: Any objective spec (name, ``weighted:``/``multi:``
            string, spec dict, or :class:`repro.objectives.Objective`
            instance), minimized; stored as its JSON-safe spec.
        constraint: A prebuilt constraint, or None to derive one from
            ``platform``/``constraint_kind`` per Table II.
        dataflow: Fixed style, or None with ``mix=True`` for co-automation.
        mix: Let the agent pick a dataflow per layer (Section IV-D).
        num_levels: Action levels L (Table IX sweeps 10/12/14).
        policy: "rnn" (paper) or "mlp" (ablation).
        constraint_kind / platform: Used when ``constraint`` is None.
        cost_model: Shared estimator (a fresh one is built if omitted).
        seed: Master RNG seed for both stages.
    """

    def __init__(
        self,
        layers: Sequence[Layer],
        objective="latency",
        constraint: Optional[Constraint] = None,
        dataflow: Optional[str] = "dla",
        mix: bool = False,
        num_levels: int = 12,
        max_pes: int = 128,
        policy: str = "rnn",
        constraint_kind: str = "area",
        platform: str = "iot",
        cost_model: Optional[CostModel] = None,
        seed: Optional[int] = None,
        reinforce_kwargs: Optional[dict] = None,
        ga_kwargs: Optional[dict] = None,
    ) -> None:
        from repro.objectives import objective_spec

        self.layers = list(layers)
        # Canonical JSON-safe spec: ConfuciuXResult serializes it.
        self.objective = objective_spec(objective)
        self.cost_model = cost_model or CostModel()
        self.space = ActionSpace.build(
            dataflow=dataflow or "dla", num_levels=num_levels,
            max_pes=max_pes, mix=mix)
        self.dataflow = None if mix else dataflow
        if constraint is None:
            constraint = platform_constraint(
                self.layers, dataflow or "dla", constraint_kind, platform,
                self.cost_model, ActionSpace.build(dataflow or "dla",
                                                   num_levels, max_pes))
        self.constraint = constraint
        self.seed = seed
        self.policy = policy
        self.reinforce_kwargs = dict(reinforce_kwargs or {})
        self.ga_kwargs = dict(ga_kwargs or {})
        self.env = HWAssignmentEnv(
            self.layers, self.space, objective, constraint, self.cost_model,
            dataflow=self.dataflow)
        self._raw_evaluator: Optional[DesignPointEvaluator] = None

    # ------------------------------------------------------------------
    def run(self, *_args, **_kwargs) -> ConfuciuXResult:
        """Removed in 1.3 (deprecated since 1.1); kept only to point
        stragglers at the session API instead of an ``AttributeError``.

        Use::

            repro.explore(model=..., method="confuciux",
                          budget=global_epochs,
                          finetune=finetune_generations)

        (or ``repro.SearchSession`` with a ``SearchSpec``) -- results are
        bit-identical to what ``run`` produced.
        """
        raise RuntimeError(
            "ConfuciuX.run() was removed; drive the pipeline through the "
            "session API instead: repro.explore(model=..., "
            "method='confuciux', budget=<global_epochs>, "
            "finetune=<finetune_generations>) or repro.SearchSession. "
            "Results are bit-identical to the removed shim.")

    def _run(self, global_epochs: int = 500,
             finetune_generations: int = 200) -> ConfuciuXResult:
        """Both stages, shim-free (the session API calls this)."""
        # Fresh evaluation counters per run: the evaluator is shared
        # between the fine-tune stage and the utilization measurement
        # within one run, but must not leak counts across runs.
        self._raw_evaluator = None
        agent = Reinforce(policy=self.policy, seed=self.seed,
                          **self.reinforce_kwargs)
        global_result = agent.search(self.env, global_epochs)

        finetune_result = None
        if finetune_generations > 0 and global_result.best_cost is not None:
            finetune_result = self._finetune(global_result,
                                             finetune_generations)

        result = ConfuciuXResult(
            objective=self.objective,
            constraint=self.constraint,
            global_result=global_result,
            finetune_result=finetune_result,
        )
        result._final_used = self._used_of_best(result)
        return result

    def _evaluator(self) -> DesignPointEvaluator:
        """The raw-space evaluator, built once and shared between the
        fine-tune stage and the final utilization measurement."""
        if self._raw_evaluator is None:
            self._raw_evaluator = DesignPointEvaluator(
                self.layers, self.objective, self.constraint,
                self.cost_model, self.space, dataflow=self.dataflow)
        return self._raw_evaluator

    def _finetune(self, global_result: SearchResult,
                  generations: int) -> SearchResult:
        max_l1 = 2 * max(self.space.buf_levels)
        max_pes = max(self.space.pe_levels)
        ga = LocalGA(seed=self.seed, max_pes=max_pes, max_l1_bytes=max_l1,
                     **self.ga_kwargs)
        return ga.search(self._evaluator(), global_result.best_assignments,
                         generations)

    def _used_of_best(self, result: ConfuciuXResult) -> float:
        assignments = result.best_assignments
        if assignments is None:
            return 0.0
        return self._evaluator().evaluate_raw(assignments).used
