"""JSON (de)serialization for search results and solutions.

A downstream user wants to run a long search once and keep the outcome:
the winning per-layer assignment, the convergence trace, and enough
metadata to reproduce the run.  These helpers produce plain-JSON documents
(no pickling) for :class:`SearchResult` and the two-stage
:class:`ConfuciuXResult`.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.rl.common import SearchResult


def _encode_history(history):
    return [None if value == float("inf") else value for value in history]


def _decode_history(history):
    return [float("inf") if value is None else value for value in history]


def search_result_to_dict(result: SearchResult) -> dict:
    """A JSON-safe dict capturing everything a table needs."""
    return {
        "algorithm": result.algorithm,
        "best_cost": result.best_cost,
        "best_assignments": (
            [list(a) for a in result.best_assignments]
            if result.best_assignments is not None else None),
        "best_genome": result.best_genome,
        "history": _encode_history(result.history),
        "evaluations": result.evaluations,
        "cache_hits": result.cache_hits,
        "episodes": result.episodes,
        "wall_time_s": result.wall_time_s,
        "memory_bytes": result.memory_bytes,
        "extra": dict(result.extra),
    }


def search_result_from_dict(data: dict) -> SearchResult:
    """Inverse of :func:`search_result_to_dict`.

    Raises:
        KeyError: if a required field is missing.
    """
    result = SearchResult(algorithm=data["algorithm"])
    result.best_cost = data["best_cost"]
    assignments = data["best_assignments"]
    result.best_assignments = (
        tuple(tuple(a) for a in assignments)
        if assignments is not None else None)
    result.best_genome = data["best_genome"]
    result.history = _decode_history(data["history"])
    result.evaluations = data["evaluations"]
    # Documents written before the batched engine lack the hit counter.
    result.cache_hits = data.get("cache_hits", 0)
    result.episodes = data["episodes"]
    result.wall_time_s = data["wall_time_s"]
    result.memory_bytes = data["memory_bytes"]
    # Documents written before the session API lack the extra payload.
    result.extra = dict(data.get("extra", {}))
    return result


def save_search_result(result: SearchResult, path) -> None:
    """Write a search result to ``path`` as JSON."""
    with open(path, "w") as handle:
        json.dump(search_result_to_dict(result), handle, indent=2)


def load_search_result(path) -> SearchResult:
    """Read a search result previously written by
    :func:`save_search_result`."""
    with open(path) as handle:
        return search_result_from_dict(json.load(handle))


def confuciux_result_to_dict(result) -> dict:
    """Serialize a two-stage :class:`ConfuciuXResult` summary."""
    return {
        "objective": result.objective,
        "constraint": {
            "kind": result.constraint.kind,
            "platform": result.constraint.platform,
            "budget": getattr(result.constraint, "budget", None),
        },
        "initial_valid_cost": result.initial_valid_cost,
        "global_cost": result.global_cost,
        "best_cost": result.best_cost,
        "best_assignments": (
            [list(a) for a in result.best_assignments]
            if result.best_assignments is not None else None),
        "global_result": search_result_to_dict(result.global_result),
        "finetune_result": (
            search_result_to_dict(result.finetune_result)
            if result.finetune_result is not None else None),
    }


def save_confuciux_result(result, path) -> None:
    """Write a two-stage result summary to ``path`` as JSON."""
    with open(path, "w") as handle:
        json.dump(confuciux_result_to_dict(result), handle, indent=2)
