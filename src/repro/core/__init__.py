"""The ConfuciuX orchestrator: two-stage search and its task plumbing.

``repro.env`` imports the constraint/evaluator modules in this package, and
the orchestrator in turn drives ``repro.env`` -- so the heavyweight exports
are resolved lazily (PEP 562) to keep the import graph acyclic.
"""

from repro.core.constraints import (
    PLATFORM_FRACTIONS,
    PlatformConstraint,
    ResourceConstraint,
    measure_max_consumption,
    platform_constraint,
)
from repro.core.evaluator import DesignPointEvaluator, EvalResult

__all__ = [
    "PLATFORM_FRACTIONS",
    "PlatformConstraint",
    "ResourceConstraint",
    "measure_max_consumption",
    "platform_constraint",
    "DesignPointEvaluator",
    "EvalResult",
    "ConfuciuX",
    "ConfuciuXResult",
    "JointSearch",
    "dataflow_assignment_table",
    "solution_report",
]

_LAZY = {
    "ConfuciuX": ("repro.core.confuciux", "ConfuciuX"),
    "ConfuciuXResult": ("repro.core.confuciux", "ConfuciuXResult"),
    "JointSearch": ("repro.core.joint", "JointSearch"),
    "dataflow_assignment_table": ("repro.core.joint",
                                  "dataflow_assignment_table"),
    "solution_report": ("repro.core.reporting", "solution_report"),
}


def __getattr__(name):
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(name) from None
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, attribute)
