"""Solution analysis and report rendering (Fig. 10, utilization reports).

Turns a converged design point into the figures the paper draws: the area
breakdown across PE / L1 / L2 / NoC, the per-layer PE and buffer bars, and
a plain-text table renderer shared by the benches.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.evaluator import DesignPointEvaluator, RawAssignment
from repro.costmodel.estimator import CostModel
from repro.costmodel.report import ModelCostReport
from repro.models.layers import Layer


def solution_report(
    layers: Sequence[Layer],
    assignments: Sequence[RawAssignment],
    cost_model: CostModel,
    dataflow: Optional[str] = None,
) -> ModelCostReport:
    """Re-evaluate a solution to obtain its full per-layer reports."""
    return cost_model.evaluate_model(layers, assignments, dataflow=dataflow)


def area_breakdown_fractions(report: ModelCostReport) -> Dict[str, float]:
    """Fig. 10's pie chart: fraction of total area per component."""
    breakdown = report.area_breakdown()
    total = sum(breakdown.values())
    if total <= 0:
        raise ValueError("report has no area")
    return {key: value / total for key, value in breakdown.items()}


def per_layer_assignment(
    assignments: Sequence[RawAssignment],
) -> Tuple[List[int], List[int]]:
    """Fig. 10's bottom bars: (PEs per layer, L1 bytes per layer)."""
    return ([a[0] for a in assignments], [a[1] for a in assignments])


def per_layer_area_fractions(report: ModelCostReport) -> List[float]:
    """Fig. 10's per-layer area split of the whole-chip budget."""
    total = report.area_um2
    return [r.area_um2 / total for r in report.per_layer]


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: Optional[str] = None) -> str:
    """Render an aligned plain-text table (the benches' output format)."""
    columns = [str(h) for h in headers]
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [len(col) for col in columns]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(col.ljust(w) for col, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(w)
                               for cell, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_bars(values: Sequence[float], width: int = 40,
               labels: Optional[Sequence[str]] = None) -> str:
    """Quick horizontal bar chart for per-layer figures in the benches."""
    peak = max(values) if values else 1.0
    if peak <= 0:
        peak = 1.0
    lines = []
    for i, value in enumerate(values):
        label = labels[i] if labels else str(i + 1)
        bar = "#" * max(1, int(round(width * value / peak)))
        lines.append(f"{label:>12s} |{bar}")
    return "\n".join(lines)
