"""Whole-design-point evaluation shared by every search method.

The RL environment steps layer by layer, but the baseline optimizers (grid /
random / SA / GA / Bayesian) and the stage-2 GA treat a complete per-layer
assignment -- a *genome* -- as one sample.  ``DesignPointEvaluator`` turns a
genome into (objective value, feasibility, report) under a platform or
resource constraint, counting evaluations so sample efficiency can be
compared across methods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.constraints import PlatformConstraint, ResourceConstraint
from repro.costmodel.batched import (
    STYLE_INDEX,
    LayerTable,
    ordered_row_sum,
)
from repro.costmodel.estimator import CostModel
from repro.costmodel.report import ModelCostReport, UtilizationReport
from repro.env.spaces import ActionSpace
from repro.models.layers import Layer
from repro.objectives import CostTotals, resolve_objective

Constraint = Union[PlatformConstraint, ResourceConstraint]

#: A raw per-layer assignment: (pes, l1_bytes) or (pes, l1_bytes, style).
RawAssignment = Tuple


@dataclass(frozen=True)
class EvalResult:
    """Outcome of evaluating one complete design point."""

    cost: float
    feasible: bool
    used: float
    report: ModelCostReport

    def utilization(self, constraint: Constraint) -> UtilizationReport:
        budget = (constraint.budget
                  if isinstance(constraint, PlatformConstraint)
                  else float(constraint.max_pes))
        return UtilizationReport(constraint=constraint.kind, budget=budget,
                                 used=self.used)


class DesignPointEvaluator:
    """Evaluate complete genomes for a (model, objective, constraint) task.

    Args:
        layers: Target model.
        objective: Any objective spec -- a registered name
            ("latency" / "energy" / "edp" / ...), a ``weighted:`` /
            ``multi:`` string, a spec dict, or an
            :class:`repro.objectives.Objective` instance (minimized).
        constraint: Platform (area/power) or resource (FPGA) budget.
        cost_model: The analytical estimator.
        space: Action space for level-indexed genomes.
        dataflow: Default style when assignments carry none.
        deployment: "lp" (per-layer partitions) or "ls" (one shared point).

    The resolved :class:`~repro.objectives.Objective` is exposed as
    :attr:`objective`; multi-objective specs score ``EvalResult.cost``
    with their primary component (Pareto methods re-rank from the
    aggregate figures on each result's report).
    """

    def __init__(
        self,
        layers: Sequence[Layer],
        objective,
        constraint: Constraint,
        cost_model: CostModel,
        space: ActionSpace,
        dataflow: Optional[str] = None,
        deployment: str = "lp",
    ) -> None:
        if deployment not in ("lp", "ls"):
            raise ValueError("deployment must be 'lp' or 'ls'")
        if space.is_mix and dataflow is None:
            dataflow = space.dataflows[0]
        if not space.is_mix and dataflow is None:
            raise ValueError("a dataflow is required for non-MIX spaces")
        self.layers = list(layers)
        self.objective = resolve_objective(objective)
        self.constraint = constraint
        self.cost_model = cost_model
        self.space = space
        self.dataflow = dataflow
        self.deployment = deployment
        self.evaluations = 0
        #: Population evaluations served by the duplicate-row memo
        #: instead of the kernel (see ``_evaluate_population_arrays``).
        self.cache_hits = 0
        self._table: Optional[LayerTable] = None

    # ------------------------------------------------------------------
    @property
    def genome_length(self) -> int:
        """Genes per genome: 2N, or 3N under MIX (Section III-G)."""
        return len(self.layers) * self.space.actions_per_step

    def decode_genome(self, genome: Sequence[int]) -> List[RawAssignment]:
        """Level-index genome -> raw per-layer assignments."""
        per_step = self.space.actions_per_step
        if len(genome) != self.genome_length:
            raise ValueError(
                f"genome length {len(genome)} != expected "
                f"{self.genome_length}"
            )
        assignments: List[RawAssignment] = []
        for i in range(len(self.layers)):
            chunk = genome[i * per_step:(i + 1) * per_step]
            assignments.append(self.space.decode(chunk))
        return assignments

    # ------------------------------------------------------------------
    def evaluate_genome(self, genome: Sequence[int]) -> EvalResult:
        """Evaluate a level-indexed genome."""
        return self.evaluate_raw(self.decode_genome(genome))

    def evaluate_raw(
        self, assignments: Sequence[RawAssignment]
    ) -> EvalResult:
        """Evaluate raw (pes, l1_bytes[, style]) per-layer assignments."""
        self.evaluations += 1
        if self.deployment == "ls":
            pes, l1_bytes = assignments[0][0], assignments[0][1]
            style = (assignments[0][2] if len(assignments[0]) == 3
                     else self.dataflow)
            report = self.cost_model.evaluate_model_ls(
                self.layers, pes, l1_bytes, style)
        else:
            report = self.cost_model.evaluate_model(
                self.layers, assignments, dataflow=self.dataflow)
        used, feasible = self._check(report, assignments)
        return EvalResult(
            cost=self.objective.evaluate(report),
            feasible=feasible,
            used=used,
            report=report,
        )

    # ------------------------------------------------------------------
    # Population (batched) evaluation
    # ------------------------------------------------------------------
    def evaluate_population(
        self, genomes: Sequence[Sequence[int]]
    ) -> List[EvalResult]:
        """Evaluate a whole population of level-index genomes as one batch.

        The genomes are decoded with array indexing and evaluated through
        the vectorized estimator, including vectorized constraint checks
        for both platform (area/power) and FPGA resource budgets.  The
        returned costs, feasibility flags, and used-budget figures are
        bit-identical to calling :meth:`evaluate_genome` per genome; the
        per-result :class:`ModelCostReport` carries the aggregate figures
        with an empty ``per_layer`` list (population consumers only read
        the aggregates).
        """
        genomes = list(genomes)
        if not genomes:
            return []
        try:
            genes = np.asarray(genomes, dtype=np.int64)
        except ValueError:
            raise ValueError(
                f"population genomes must all have length "
                f"{self.genome_length}"
            ) from None
        if genes.ndim != 2 or genes.shape[1] != self.genome_length:
            raise ValueError(
                f"population genomes must all have length "
                f"{self.genome_length}, got shape {genes.shape}"
            )
        per_step = self.space.actions_per_step
        pe_idx = genes[:, 0::per_step]
        buf_idx = genes[:, 1::per_step]
        num_levels = self.space.num_levels
        if pe_idx.min() < 0 or pe_idx.max() >= num_levels:
            raise ValueError("PE level index out of range")
        if buf_idx.min() < 0 or buf_idx.max() >= num_levels:
            raise ValueError("buffer level index out of range")
        pes = np.asarray(self.space.pe_levels, dtype=np.int64)[pe_idx]
        l1_bytes = np.asarray(self.space.buf_levels, dtype=np.int64)[buf_idx]
        if self.space.is_mix:
            df_idx = genes[:, 2::per_step]
            if df_idx.min() < 0 or df_idx.max() >= len(self.space.dataflows):
                raise ValueError("dataflow index out of range")
            lut = np.asarray(
                [STYLE_INDEX[s] for s in self.space.dataflows],
                dtype=np.int64)
            style_idx = lut[df_idx]
        else:
            style_idx = np.full(pes.shape, STYLE_INDEX[self.dataflow],
                                dtype=np.int64)
        return self._evaluate_population_arrays(pes, l1_bytes, style_idx)

    def evaluate_population_raw(
        self, populations: Sequence[Sequence[RawAssignment]]
    ) -> List[EvalResult]:
        """Batched :meth:`evaluate_raw` over many complete assignments.

        Used by the stage-2 GA, whose candidates live in the raw integer
        space rather than the level-index space.
        """
        populations = list(populations)
        if not populations:
            return []
        num_layers = len(self.layers)
        default = (STYLE_INDEX[self.dataflow]
                   if self.dataflow is not None else None)
        pes_rows, l1_rows, style_rows = [], [], []
        for assignments in populations:
            if len(assignments) != num_layers:
                raise ValueError(
                    f"got {num_layers} layers but {len(assignments)} "
                    f"assignments"
                )
            pes_rows.append([a[0] for a in assignments])
            l1_rows.append([a[1] for a in assignments])
            row = []
            for a in assignments:
                if len(a) == 3:
                    try:
                        row.append(STYLE_INDEX[a[2]])
                    except KeyError:
                        raise KeyError(
                            f"unknown dataflow style {a[2]!r}; available: "
                            f"{', '.join(STYLE_INDEX)}"
                        ) from None
                elif default is not None:
                    row.append(default)
                else:
                    raise ValueError(
                        "assignment lacks a dataflow and no default was "
                        "given"
                    )
            style_rows.append(row)
        return self._evaluate_population_arrays(
            np.asarray(pes_rows, dtype=np.int64),
            np.asarray(l1_rows, dtype=np.int64),
            np.asarray(style_rows, dtype=np.int64),
        )

    def _evaluate_population_arrays(
        self, pes: np.ndarray, l1_bytes: np.ndarray, style_idx: np.ndarray
    ) -> List[EvalResult]:
        """Shared batched core: (G, N) design arrays -> per-genome results.

        Identical design points -- common under elitism, low mutation
        rates, and two-stage re-probes -- are deduplicated before kernel
        dispatch (``np.unique`` over the decoded rows) and the unique
        results scattered back, so duplicates never reach the estimator
        or an installed parallel backend.  The kernel is elementwise per
        row, so the returned costs, flags, and budgets are bit-identical
        either way; served duplicates are counted on :attr:`cache_hits`
        while :attr:`evaluations` keeps charging the full population
        (the budget currency every method spends).
        """
        population, num_layers = pes.shape
        self.evaluations += population
        if self._table is None:
            self._table = LayerTable.build(self.layers)
        if self.deployment == "ls":
            # One shared design point runs every layer: broadcast each
            # genome's first assignment across the model.
            pes = np.repeat(pes[:, :1], num_layers, axis=1)
            l1_bytes = np.repeat(l1_bytes[:, :1], num_layers, axis=1)
            style_idx = np.repeat(style_idx[:, :1], num_layers, axis=1)
        if population > 1:
            design = np.concatenate((pes, l1_bytes, style_idx), axis=1)
            # Cheap pre-check: equal rows hash equal, so a fully-unique
            # hash vector proves there is nothing to dedup without
            # paying the row-sort (wrapping int64 overflow is fine --
            # collisions only cost the full check below).
            mixer = self._row_mixer(design.shape[1])
            hashes = design @ mixer
            if len(np.unique(hashes)) == population:
                return self._evaluate_unique_rows(pes, l1_bytes, style_idx)
            unique, inverse = np.unique(design, axis=0, return_inverse=True)
            if len(unique) < population:
                self.cache_hits += population - len(unique)
                results = self._evaluate_unique_rows(
                    np.ascontiguousarray(unique[:, :num_layers]),
                    np.ascontiguousarray(
                        unique[:, num_layers:2 * num_layers]),
                    np.ascontiguousarray(unique[:, 2 * num_layers:]))
                return [results[i] for i in inverse.reshape(-1).tolist()]
        return self._evaluate_unique_rows(pes, l1_bytes, style_idx)

    def _row_mixer(self, width: int) -> np.ndarray:
        """A fixed random int64 vector hashing design rows (seeded, so
        dedup behavior is deterministic across runs)."""
        mixer = getattr(self, "_mixer", None)
        if mixer is None or len(mixer) != width:
            mixer = np.random.default_rng(0x5EED).integers(
                np.iinfo(np.int64).min, np.iinfo(np.int64).max,
                size=width, dtype=np.int64)
            self._mixer = mixer
        return mixer

    def _evaluate_unique_rows(
        self, pes: np.ndarray, l1_bytes: np.ndarray, style_idx: np.ndarray
    ) -> List[EvalResult]:
        """Kernel dispatch and constraint checks for deduplicated rows."""
        population, num_layers = pes.shape
        layer_idx = np.tile(np.arange(num_layers, dtype=np.int64),
                            population)
        constraint = self.constraint
        fold = None
        if isinstance(constraint, PlatformConstraint):
            # Fused kernels fold the population reductions and the
            # budget comparison into the epilogue (bit-identical to the
            # post-pass below); fold is None whenever that fast path
            # does not apply and we reduce the report here as before.
            batch, fold = self.cost_model.batched.evaluate_constrained(
                self._table, layer_idx, style_idx.reshape(-1),
                pes.reshape(-1), l1_bytes.reshape(-1),
                self.deployment, constraint.kind, constraint.budget)
        else:
            batch = self.cost_model.batched.evaluate(
                self._table, layer_idx, style_idx.reshape(-1),
                pes.reshape(-1), l1_bytes.reshape(-1))

        if fold is not None:
            latency_total = fold.latency_total
            energy_total = fold.energy_total
            area_total = fold.area_total
            power_total = fold.power_total
        else:
            latency = batch.latency_cycles.reshape(population, num_layers)
            energy = batch.energy_nj.reshape(population, num_layers)
            area = batch.area_um2.reshape(population, num_layers)
            power = batch.power_mw.reshape(population, num_layers)
            latency_total = ordered_row_sum(latency)
            energy_total = ordered_row_sum(energy)
            if self.deployment == "ls":
                area_total = area.max(axis=1)
                power_total = power.max(axis=1)
            else:
                area_total = ordered_row_sum(area)
                power_total = ordered_row_sum(power)
        cost = np.asarray(self.objective.evaluate(CostTotals(
            latency_total, energy_total, area_total, power_total)),
            dtype=np.float64)

        if isinstance(constraint, ResourceConstraint):
            if self.deployment == "ls":
                total_pes = pes[:, 0]
                total_l1 = pes[:, 0] * l1_bytes[:, 0]
            else:
                total_pes = pes.sum(axis=1)
                total_l1 = (pes * l1_bytes).sum(axis=1)
            feasible = ((total_pes <= constraint.max_pes)
                        & (total_l1 <= constraint.max_l1_bytes))
            used = total_pes.astype(np.float64)
        elif fold is not None:
            used = fold.used
            feasible = fold.feasible
        else:
            used = area_total if constraint.kind == "area" else power_total
            feasible = used <= constraint.budget

        # tolist() converts to native Python scalars in one pass, which is
        # markedly cheaper than per-element float() on numpy scalars.
        results: List[EvalResult] = []
        for lat, en, ar, po, co, fe, us in zip(
                latency_total.tolist(), energy_total.tolist(),
                area_total.tolist(), power_total.tolist(), cost.tolist(),
                feasible.tolist(), used.tolist()):
            results.append(EvalResult(
                cost=co,
                feasible=fe,
                used=us,
                report=ModelCostReport(
                    latency_cycles=lat,
                    energy_nj=en,
                    area_um2=ar,
                    power_mw=po,
                    per_layer=[],
                ),
            ))
        return results

    def _check(self, report: ModelCostReport,
               assignments: Sequence[RawAssignment]) -> Tuple[float, bool]:
        constraint = self.constraint
        if isinstance(constraint, ResourceConstraint):
            if self.deployment == "ls":
                total_pes = assignments[0][0]
                total_l1 = assignments[0][0] * assignments[0][1]
            else:
                total_pes = sum(a[0] for a in assignments)
                total_l1 = sum(a[0] * a[1] for a in assignments)
            feasible = (total_pes <= constraint.max_pes
                        and total_l1 <= constraint.max_l1_bytes)
            return float(total_pes), feasible
        used = report.constraint(constraint.kind)
        return used, used <= constraint.budget

    # ------------------------------------------------------------------
    def uniform_genome(self, pe_idx: int, buf_idx: int) -> List[int]:
        """A genome assigning the same levels to every layer (baselines)."""
        step: List[int] = [pe_idx, buf_idx]
        if self.space.is_mix:
            step.append(0)
        return step * len(self.layers)
