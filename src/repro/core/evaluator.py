"""Whole-design-point evaluation shared by every search method.

The RL environment steps layer by layer, but the baseline optimizers (grid /
random / SA / GA / Bayesian) and the stage-2 GA treat a complete per-layer
assignment -- a *genome* -- as one sample.  ``DesignPointEvaluator`` turns a
genome into (objective value, feasibility, report) under a platform or
resource constraint, counting evaluations so sample efficiency can be
compared across methods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.constraints import PlatformConstraint, ResourceConstraint
from repro.costmodel.estimator import CostModel
from repro.costmodel.report import ModelCostReport, UtilizationReport
from repro.env.spaces import ActionSpace
from repro.models.layers import Layer

Constraint = Union[PlatformConstraint, ResourceConstraint]

#: A raw per-layer assignment: (pes, l1_bytes) or (pes, l1_bytes, style).
RawAssignment = Tuple


@dataclass(frozen=True)
class EvalResult:
    """Outcome of evaluating one complete design point."""

    cost: float
    feasible: bool
    used: float
    report: ModelCostReport

    def utilization(self, constraint: Constraint) -> UtilizationReport:
        budget = (constraint.budget
                  if isinstance(constraint, PlatformConstraint)
                  else float(constraint.max_pes))
        return UtilizationReport(constraint=constraint.kind, budget=budget,
                                 used=self.used)


class DesignPointEvaluator:
    """Evaluate complete genomes for a (model, objective, constraint) task.

    Args:
        layers: Target model.
        objective: "latency" | "energy" | "edp" (minimized).
        constraint: Platform (area/power) or resource (FPGA) budget.
        cost_model: The analytical estimator.
        space: Action space for level-indexed genomes.
        dataflow: Default style when assignments carry none.
        deployment: "lp" (per-layer partitions) or "ls" (one shared point).
    """

    def __init__(
        self,
        layers: Sequence[Layer],
        objective: str,
        constraint: Constraint,
        cost_model: CostModel,
        space: ActionSpace,
        dataflow: Optional[str] = None,
        deployment: str = "lp",
    ) -> None:
        if deployment not in ("lp", "ls"):
            raise ValueError("deployment must be 'lp' or 'ls'")
        if space.is_mix and dataflow is None:
            dataflow = space.dataflows[0]
        if not space.is_mix and dataflow is None:
            raise ValueError("a dataflow is required for non-MIX spaces")
        self.layers = list(layers)
        self.objective = objective
        self.constraint = constraint
        self.cost_model = cost_model
        self.space = space
        self.dataflow = dataflow
        self.deployment = deployment
        self.evaluations = 0

    # ------------------------------------------------------------------
    @property
    def genome_length(self) -> int:
        """Genes per genome: 2N, or 3N under MIX (Section III-G)."""
        return len(self.layers) * self.space.actions_per_step

    def decode_genome(self, genome: Sequence[int]) -> List[RawAssignment]:
        """Level-index genome -> raw per-layer assignments."""
        per_step = self.space.actions_per_step
        if len(genome) != self.genome_length:
            raise ValueError(
                f"genome length {len(genome)} != expected "
                f"{self.genome_length}"
            )
        assignments: List[RawAssignment] = []
        for i in range(len(self.layers)):
            chunk = genome[i * per_step:(i + 1) * per_step]
            assignments.append(self.space.decode(chunk))
        return assignments

    # ------------------------------------------------------------------
    def evaluate_genome(self, genome: Sequence[int]) -> EvalResult:
        """Evaluate a level-indexed genome."""
        return self.evaluate_raw(self.decode_genome(genome))

    def evaluate_raw(
        self, assignments: Sequence[RawAssignment]
    ) -> EvalResult:
        """Evaluate raw (pes, l1_bytes[, style]) per-layer assignments."""
        self.evaluations += 1
        if self.deployment == "ls":
            pes, l1_bytes = assignments[0][0], assignments[0][1]
            style = (assignments[0][2] if len(assignments[0]) == 3
                     else self.dataflow)
            report = self.cost_model.evaluate_model_ls(
                self.layers, pes, l1_bytes, style)
        else:
            report = self.cost_model.evaluate_model(
                self.layers, assignments, dataflow=self.dataflow)
        used, feasible = self._check(report, assignments)
        return EvalResult(
            cost=report.objective(self.objective),
            feasible=feasible,
            used=used,
            report=report,
        )

    def _check(self, report: ModelCostReport,
               assignments: Sequence[RawAssignment]) -> Tuple[float, bool]:
        constraint = self.constraint
        if isinstance(constraint, ResourceConstraint):
            if self.deployment == "ls":
                total_pes = assignments[0][0]
                total_l1 = assignments[0][0] * assignments[0][1]
            else:
                total_pes = sum(a[0] for a in assignments)
                total_l1 = sum(a[0] * a[1] for a in assignments)
            feasible = (total_pes <= constraint.max_pes
                        and total_l1 <= constraint.max_l1_bytes)
            return float(total_pes), feasible
        used = report.constraint(constraint.kind)
        return used, used <= constraint.budget

    # ------------------------------------------------------------------
    def uniform_genome(self, pe_idx: int, buf_idx: int) -> List[int]:
        """A genome assigning the same levels to every layer (baselines)."""
        step: List[int] = [pe_idx, buf_idx]
        if self.space.is_mix:
            step.append(0)
        return step * len(self.layers)
