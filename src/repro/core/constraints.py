"""Platform constraints (paper Table II).

The budget scale is *measured*, not hand-set: evaluate the whole model with
the uniform maximum action pair (p_max, b_max) to get C_max, then take a
fraction of it -- 50% for Cloud, 10% for IoT, 5% for the extreme IoTx.

Besides area/power budgets, :class:`ResourceConstraint` models the FPGA
deployment of Table VIII, where the budget is a total PE count and a total
L1 byte count instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.costmodel.estimator import CostModel
from repro.costmodel.report import CostReport
from repro.env.spaces import ActionSpace
from repro.models.layers import Layer

#: Fraction of the measured maximum consumption per platform (Table II).
PLATFORM_FRACTIONS: Dict[str, float] = {
    "unlimited": float("inf"),
    "cloud": 0.50,
    "iot": 0.10,
    "iotx": 0.05,
}


@dataclass(frozen=True)
class PlatformConstraint:
    """An area or power budget for the whole accelerator.

    Attributes:
        kind: "area" (um^2) or "power" (mW).
        budget: The numeric budget; inf for the unconstrained platform.
        platform: Platform label ("cloud", "iot", ...) for reports.
    """

    kind: str
    budget: float
    platform: str = "custom"

    def __post_init__(self) -> None:
        if self.kind not in ("area", "power"):
            raise ValueError(f"unknown constraint kind {self.kind!r}")
        if self.budget <= 0:
            raise ValueError("budget must be positive")

    def consumption(self, report: CostReport) -> float:
        """The budget this layer partition consumes."""
        return report.constraint(self.kind)

    def describe(self) -> str:
        return f"{self.kind.capitalize()}: {self.platform}"


@dataclass(frozen=True)
class ResourceConstraint:
    """A (total PEs, total L1 bytes) cap -- the FPGA setting of Table VIII."""

    max_pes: int
    max_l1_bytes: int
    platform: str = "fpga"
    kind: str = "resource"

    def __post_init__(self) -> None:
        if self.max_pes < 1 or self.max_l1_bytes < 1:
            raise ValueError("resource caps must be positive")


def measure_max_consumption(
    layers: Sequence[Layer],
    dataflow: str,
    kind: str,
    cost_model: CostModel,
    space: Optional[ActionSpace] = None,
) -> float:
    """C_max of Table II: whole-model consumption at the uniform max pair.

    The whole sweep is one batched-estimator call (one row per layer), so
    an installed parallel backend shards the calibration across workers
    exactly like any population batch.  The per-layer figures are
    bit-identical to the scalar ``evaluate_layer`` loop, and the total
    accumulates in layer order, so the constraint budgets never moved.
    """
    import numpy as np

    from repro.costmodel.batched import STYLE_INDEX, LayerTable
    from repro.costmodel.dataflow import get_dataflow

    if not layers:
        return 0.0
    space = space or ActionSpace.build(dataflow)
    decoded = space.decode(space.max_action())
    pes, l1_bytes = decoded[0], decoded[1]
    num_layers = len(layers)
    batch = cost_model.batched.evaluate(
        LayerTable.build(layers),
        np.arange(num_layers, dtype=np.int64),
        STYLE_INDEX[get_dataflow(dataflow).style],
        np.full(num_layers, pes, dtype=np.int64),
        np.full(num_layers, l1_bytes, dtype=np.int64))
    total = 0.0
    for value in batch.constraint(kind).tolist():
        total += value
    return total


def platform_constraint(
    layers: Sequence[Layer],
    dataflow: str,
    kind: str,
    platform: str,
    cost_model: CostModel,
    space: Optional[ActionSpace] = None,
) -> PlatformConstraint:
    """Build the Table-II constraint for a platform tier.

    Args:
        layers: Target model.
        dataflow: Style used for the C_max measurement (the MIX search
            measures with its default style, matching the paper's setup).
        kind: "area" or "power".
        platform: "unlimited" | "cloud" | "iot" | "iotx".
        cost_model: Estimator used for the measurement.
        space: Action space (defaults to the Table-I space for ``dataflow``).
    """
    try:
        fraction = PLATFORM_FRACTIONS[platform]
    except KeyError:
        raise KeyError(
            f"unknown platform {platform!r}; available: "
            f"{', '.join(PLATFORM_FRACTIONS)}"
        ) from None
    if fraction == float("inf"):
        return PlatformConstraint(kind=kind, budget=float("inf"),
                                  platform=platform)
    c_max = measure_max_consumption(layers, dataflow, kind, cost_model, space)
    return PlatformConstraint(kind=kind, budget=fraction * c_max,
                              platform=platform)
