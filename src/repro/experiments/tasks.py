"""Task specification: one (model, dataflow, objective, constraint) cell.

Every table row and figure panel in the paper's evaluation is one such
cell; ``TaskSpec`` builds the matching environment (for the RL agents) and
genome evaluator (for the baselines) from a shared cost model, so both see
exactly the same problem.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Union

from repro.core.constraints import (
    PlatformConstraint,
    ResourceConstraint,
    platform_constraint,
)
from repro.core.evaluator import Constraint, DesignPointEvaluator
from repro.costmodel.estimator import CostModel
from repro.env.environment import HWAssignmentEnv
from repro.env.spaces import ActionSpace
from repro.models.layers import Layer
from repro.models.zoo import get_model


def default_epochs(fallback: int = 200) -> int:
    """Search budget per method: ``REPRO_EPOCHS`` env var or ``fallback``.

    The paper uses Eps = 5000; benches default to a scaled-down budget so
    the whole suite completes in minutes (see DESIGN.md substitutions).
    """
    value = os.environ.get("REPRO_EPOCHS")
    if value is None:
        return fallback
    epochs = int(value)
    if epochs < 1:
        raise ValueError("REPRO_EPOCHS must be >= 1")
    return epochs


@dataclass
class TaskSpec:
    """A fully specified search problem.

    Attributes:
        model: Registry name or an explicit layer list.
        dataflow: Style, ignored when ``mix`` is True.
        objective: Any objective spec (name, ``weighted:``/``multi:``
            string, spec dict, or :class:`repro.objectives.Objective`
            instance); the environment and evaluator resolve it.
        constraint_kind: "area" | "power" | "resource".
        platform: Table-II tier, used for area/power constraints.
        mix: Per-layer dataflow co-automation.
        num_levels: Action levels L.
        max_pes: Top of the PE ladder.
        deployment: "lp" or "ls".
        max_total_pes / max_total_l1: FPGA caps when
            ``constraint_kind == "resource"`` (Table VIII).
        layer_slice: Optionally restrict to the first N layers (used to
            scale down bench runtimes; None = full model).
    """

    model: Union[str, Sequence[Layer]]
    dataflow: str = "dla"
    objective: object = "latency"
    constraint_kind: str = "area"
    platform: str = "iot"
    mix: bool = False
    num_levels: int = 12
    max_pes: int = 128
    deployment: str = "lp"
    max_total_pes: int = 4096
    max_total_l1: int = 8192
    layer_slice: Optional[int] = None

    def layers(self) -> List[Layer]:
        layers = (get_model(self.model) if isinstance(self.model, str)
                  else list(self.model))
        if self.layer_slice is not None:
            layers = layers[: self.layer_slice]
        return layers

    def space(self) -> ActionSpace:
        return ActionSpace.build(dataflow=self.dataflow,
                                 num_levels=self.num_levels,
                                 max_pes=self.max_pes, mix=self.mix)

    def constraint(self, cost_model: CostModel) -> Constraint:
        if self.constraint_kind == "resource":
            return ResourceConstraint(max_pes=self.max_total_pes,
                                      max_l1_bytes=self.max_total_l1,
                                      platform=self.platform)
        return platform_constraint(
            self.layers(), self.dataflow, self.constraint_kind,
            self.platform, cost_model,
            ActionSpace.build(self.dataflow, self.num_levels, self.max_pes))

    def make_env(self, cost_model: CostModel,
                 constraint: Optional[Constraint] = None
                 ) -> HWAssignmentEnv:
        """A fresh environment (per-search state starts clean)."""
        constraint = constraint or self.constraint(cost_model)
        return HWAssignmentEnv(
            self.layers(), self.space(), self.objective, constraint,
            cost_model, dataflow=None if self.mix else self.dataflow)

    def make_evaluator(self, cost_model: CostModel,
                       constraint: Optional[Constraint] = None
                       ) -> DesignPointEvaluator:
        """A fresh genome evaluator for the baseline optimizers."""
        constraint = constraint or self.constraint(cost_model)
        return DesignPointEvaluator(
            self.layers(), self.objective, constraint, cost_model,
            self.space(), dataflow=None if self.mix else self.dataflow,
            deployment=self.deployment)

    def label(self) -> str:
        from repro.objectives import objective_label

        model = self.model if isinstance(self.model, str) else "custom"
        return (f"{model}-{'MIX' if self.mix else self.dataflow} "
                f"{objective_label(self.objective)} "
                f"{self.constraint_kind}:{self.platform}")

    def scaled(self, layer_slice: Optional[int]) -> "TaskSpec":
        """A copy restricted to the first ``layer_slice`` layers."""
        return replace(self, layer_slice=layer_slice)
