"""LP-deployment comparison rows (Tables III and IV).

Thin wrappers over :func:`repro.experiments.runner.compare_methods` that
produce the paper's row format: the converged objective value per method,
"NAN" when a method never found a feasible point.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.costmodel.estimator import CostModel
from repro.experiments.runner import compare_methods
from repro.experiments.tasks import TaskSpec
from repro.rl.common import SearchResult

#: The Table III column methods.
TABLE3_METHODS = ("ga", "ppo2", "reinforce")
#: The Table IV column methods.
TABLE4_METHODS = ("grid", "random", "sa", "ga", "bayesian", "reinforce")
#: The Table V column methods.
TABLE5_METHODS = ("a2c", "acktr", "ppo2", "ddpg", "sac", "td3", "reinforce")


def run_row(task: TaskSpec, methods: Iterable[str], epochs: int,
            seed: int = 0, cost_model: Optional[CostModel] = None
            ) -> Dict[str, SearchResult]:
    """One table row: every method on one task cell."""
    return compare_methods(task, methods, epochs, seed=seed,
                           cost_model=cost_model)


def format_row(label: str, results: Dict[str, SearchResult],
               methods: Sequence[str]) -> List[str]:
    """Row cells in method order, formatted like the paper's tables."""
    return [label] + [results[m].format_cost() for m in methods]


def winners(results: Dict[str, SearchResult]) -> List[str]:
    """Methods achieving the best (lowest) feasible cost in a row."""
    feasible = {name: r.best_cost for name, r in results.items()
                if r.best_cost is not None}
    if not feasible:
        return []
    best = min(feasible.values())
    return [name for name, cost in feasible.items()
            if cost <= best * (1.0 + 1e-9)]
