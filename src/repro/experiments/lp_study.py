"""LP-deployment comparison rows (Tables III and IV).

Thin wrappers over :func:`repro.experiments.runner.compare_methods` that
produce the paper's row format: the converged objective value per method,
"NAN" when a method never found a feasible point.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.costmodel.estimator import CostModel
from repro.experiments.runner import compare_methods
from repro.experiments.tasks import TaskSpec
from repro.rl.common import SearchResult
from repro.search.registry import KIND_EPISODIC, KIND_GENOME, list_methods


def classic_optimizer_methods() -> tuple:
    """Table IV columns from the registry: every standalone genome-space
    optimizer (fine-tuners like ``local-ga`` need a seed point, so they
    are not from-scratch comparison columns), then Con'X(global).  A
    newly registered optimizer appears in the grid automatically."""
    names = [info.name for info in list_methods(kind=KIND_GENOME,
                                                include_variants=False)
             if not info.supports_finetune]
    return tuple(names) + ("reinforce",)


def rl_comparison_methods() -> tuple:
    """Table V columns from the registry: every episodic-RL method
    (ablation variants excluded), with Con'X(global) last.  A newly
    registered RL algorithm appears in the grid automatically."""
    names = [info.name for info in list_methods(kind=KIND_EPISODIC,
                                                include_variants=False)
             if info.name != "reinforce"]
    return tuple(names) + ("reinforce",)


#: Paper column names for the comparison grids; methods registered after
#: the paper fall back to their registry name.
PAPER_COLUMN_NAMES = {
    "grid": "Grid",
    "random": "Random",
    "sa": "SA",
    "ga": "GA",
    "bayesian": "Bayes.Opt.",
    "a2c": "A2C",
    "acktr": "ACKTR",
    "ppo2": "PPO2",
    "ddpg": "DDPG",
    "td3": "TD3",
    "sac": "SAC",
    "reinforce": "Con'X (global)",
}


def display_columns(methods: Sequence[str]) -> List[str]:
    """Header cells for ``methods``, failing fast on unknown names."""
    from repro.search.registry import get_method

    for name in methods:
        get_method(name)
    return [PAPER_COLUMN_NAMES.get(name, name) for name in methods]


#: The Table III column methods.
TABLE3_METHODS = ("ga", "ppo2", "reinforce")
#: Import-time snapshots of the registry-derived grids, for callers that
#: want a stable tuple; the benches call classic_optimizer_methods() /
#: rl_comparison_methods() at run time so late registrations appear.
TABLE4_METHODS = classic_optimizer_methods()
TABLE5_METHODS = rl_comparison_methods()


def run_row(task: TaskSpec, methods: Iterable[str], epochs: int,
            seed: int = 0, cost_model: Optional[CostModel] = None
            ) -> Dict[str, SearchResult]:
    """One table row: every method on one task cell."""
    return compare_methods(task, methods, epochs, seed=seed,
                           cost_model=cost_model)


def format_row(label: str, results: Dict[str, SearchResult],
               methods: Sequence[str]) -> List[str]:
    """Row cells in method order, formatted like the paper's tables."""
    return [label] + [results[m].format_cost() for m in methods]


def winners(results: Dict[str, SearchResult]) -> List[str]:
    """Methods achieving the best (lowest) feasible cost in a row."""
    feasible = {name: r.best_cost for name, r in results.items()
                if r.best_cost is not None}
    if not feasible:
        return []
    best = min(feasible.values())
    return [name for name, cost in feasible.items()
            if cost <= best * (1.0 + 1e-9)]
