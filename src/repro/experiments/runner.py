"""Run a set of search methods against one task and collect results.

The comparison tables (III, IV, V) are all "methods x tasks" grids; this
module provides the method registry (construction with per-method seeds)
and the loop that gives every method a fresh environment/evaluator over a
shared cost model, so cached layer evaluations are reused across methods
without leaking search state.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from repro.core.evaluator import DesignPointEvaluator
from repro.costmodel.estimator import CostModel
from repro.experiments.tasks import TaskSpec
from repro.optim import BASELINE_OPTIMIZERS
from repro.rl import RL_ALGORITHMS
from repro.rl.common import SearchResult

#: Method name -> factory(seed) for every search method in the repository.
_FACTORIES: Dict[str, Callable] = {}
_FACTORIES.update({
    name: (lambda cls: (lambda seed: cls(seed=seed)))(cls)
    for name, cls in BASELINE_OPTIMIZERS.items()
})
_FACTORIES.update({
    name: (lambda cls: (lambda seed: cls(seed=seed)))(cls)
    for name, cls in RL_ALGORITHMS.items()
})
_FACTORIES["reinforce-mlp"] = lambda seed: RL_ALGORITHMS["reinforce"](
    policy="mlp", seed=seed)

#: Which methods drive the env (episodic RL) vs. the genome evaluator.
RL_METHODS = frozenset(RL_ALGORITHMS) | {"reinforce-mlp"}


def method_factories(names: Iterable[str]) -> Dict[str, Callable]:
    """Resolve method names to factories, failing fast on typos."""
    factories = {}
    for name in names:
        try:
            factories[name] = _FACTORIES[name]
        except KeyError:
            raise KeyError(
                f"unknown method {name!r}; available: "
                f"{', '.join(sorted(_FACTORIES))}"
            ) from None
    return factories


def compare_methods(
    task: TaskSpec,
    methods: Iterable[str],
    epochs: int,
    seed: int = 0,
    cost_model: Optional[CostModel] = None,
) -> Dict[str, SearchResult]:
    """Run every method on ``task`` for ``epochs`` and collect results.

    RL methods consume ``epochs`` episodes; baselines consume ``epochs``
    whole-design-point evaluations -- the paper's protocol (both are one
    cost-model pass per layer per epoch for LP tasks).
    """
    cost_model = cost_model or CostModel()
    constraint = task.constraint(cost_model)
    results: Dict[str, SearchResult] = {}
    for name, factory in method_factories(methods).items():
        method = factory(seed)
        if name in RL_METHODS:
            env = task.make_env(cost_model, constraint)
            results[name] = method.search(env, epochs)
        else:
            evaluator = task.make_evaluator(cost_model, constraint)
            results[name] = method.search(evaluator, epochs)
    return results
