"""Run a set of search methods against one task and collect results.

The comparison tables (III, IV, V) are all "methods x tasks" grids.  This
module is now a thin veneer over the unified method registry
(:mod:`repro.search.registry`) and the session runners
(:mod:`repro.search.session`): every method -- episodic RL, genome-space
baseline, the stage-2 GA, or the full two-stage pipeline -- is resolved by
name and driven through its registered run protocol, with a fresh
environment/evaluator per method over a shared cost model so cached layer
evaluations are reused across methods without leaking search state.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from repro.costmodel.estimator import CostModel
from repro.experiments.tasks import TaskSpec
from repro.rl.common import SearchResult
# NOTE: repro.search.session is imported lazily inside compare_methods;
# importing it here would close a cycle (session -> experiments.tasks ->
# experiments/__init__ -> runner) while session is still initializing.
from repro.search.registry import KIND_EPISODIC, get_method, method_names


def _episodic_names() -> frozenset:
    return frozenset(method_names(kind=KIND_EPISODIC))


#: Methods that drive the env (episodic RL) vs. the genome evaluator.
#: Kept for backward compatibility; derived from registry metadata.
RL_METHODS = _episodic_names()


def method_factories(names: Iterable[str]) -> Dict[str, Callable]:
    """Resolve method names to seeded factories, failing fast on typos.

    Every factory follows the registry seed contract: it accepts
    ``seed`` (``None`` for fresh entropy) and builds its RNG as
    ``np.random.default_rng(seed)``.
    """
    return {name: get_method(name).factory for name in names}


def _grid_spec(task: TaskSpec, method: str, epochs: int, seed: int,
               envs: int):
    """The :class:`~repro.search.spec.SearchSpec` identity of one grid
    cell, or ``None`` when the task is not registry-representable (an
    explicit layer list has no serializable name, so it cannot be
    content-addressed)."""
    if not isinstance(task.model, str):
        return None
    from repro.search.spec import SearchSpec

    return SearchSpec(
        model=task.model, method=method, objective=task.objective,
        dataflow=task.dataflow, constraint_kind=task.constraint_kind,
        platform=task.platform, budget=epochs, seed=seed, mix=task.mix,
        num_levels=task.num_levels, max_pes=task.max_pes,
        deployment=task.deployment, max_total_pes=task.max_total_pes,
        max_total_l1=task.max_total_l1, layer_slice=task.layer_slice,
        envs=envs)


def compare_methods(
    task: TaskSpec,
    methods: Iterable[str],
    epochs: int,
    seed: int = 0,
    cost_model: Optional[CostModel] = None,
    executor: Optional[str] = None,
    workers: Optional[int] = None,
    dispatch_min_batch: Optional[int] = None,
    envs: int = 1,
    cache=None,
    force: bool = False,
) -> Dict[str, SearchResult]:
    """Run every method on ``task`` for ``epochs`` and collect results.

    RL methods consume ``epochs`` episodes; baselines consume ``epochs``
    whole-design-point evaluations -- the paper's protocol (both are one
    cost-model pass per layer per epoch for LP tasks).  Any registered
    method name is accepted, including ``local-ga`` and the two-stage
    ``confuciux`` pipeline.

    ``executor`` / ``workers`` optionally shard every batched evaluation
    of the grid through one parallel backend ("thread" / "process");
    the worker pool is shared across all methods and shut down before
    returning.  Results are bit-identical to the serial grid.
    ``dispatch_min_batch`` tunes the adaptive in-process fallback for
    small batches (``None`` resolves ``$REPRO_DISPATCH_MIN`` / the
    measured default; 0 always shards).  ``envs`` rolls the episodic-RL
    methods as that many lockstep episodes per wave (one batched cost
    call per layer step); unlike the executor knobs, ``envs > 1``
    changes which episodes are sampled (reproducibly per seed).

    ``cache`` plugs the grid into the content-addressed result store
    shared with the search service: pass a
    :class:`~repro.service.store.ResultStore`, a directory path, or
    ``True`` (the default store root).  Cells whose task is
    registry-representable (``task.model`` is a zoo name) are looked up
    before running and written back after -- so re-running a grid, or
    running a grid the service already served, is O(1) per hit.  Cells
    with explicit layer lists always run.  ``force=True`` re-runs every
    cell and overwrites its entry.  Execution knobs (``executor`` /
    ``workers`` / ``dispatch_min_batch``) are excluded from the identity:
    results are bit-identical across backends, so one cached result
    serves all of them.
    """
    from repro.search.session import (
        SessionContext,
        SessionResult,
        run_method,
    )

    store = None
    if cache is not None and cache is not False:
        from repro.service.store import ResultStore

        if isinstance(cache, ResultStore):
            store = cache
        elif cache is True:
            store = ResultStore()
        else:
            store = ResultStore(root=cache)

    cost_model = cost_model or CostModel()
    constraint = task.constraint(cost_model)
    backend = None
    if executor is not None and executor != "serial":
        from repro.parallel import default_dispatch_min_batch, make_backend

        if dispatch_min_batch is None:
            dispatch_min_batch = default_dispatch_min_batch()
        backend = make_backend(executor, workers, dispatch_min_batch)
        cost_model.set_executor(backend)
    results: Dict[str, SearchResult] = {}
    try:
        for name in methods:
            info = get_method(name)
            spec = (None if store is None
                    else _grid_spec(task, name, epochs, seed, envs))
            if spec is not None:
                hit = store.get(spec, force=force)
                if hit is not None:
                    results[name] = hit.result
                    continue
            context = SessionContext(task=task, budget=epochs, seed=seed,
                                     cost_model=cost_model,
                                     constraint=constraint, envs=envs)
            results[name] = run_method(info, context)
            if spec is not None:
                import repro

                store.put(spec, SessionResult(
                    spec=spec, result=results[name],
                    provenance={"repro_version": repro.__version__,
                                "method_kind": info.kind,
                                "source": "compare_methods"}))
    finally:
        if backend is not None:
            cost_model.set_executor(None)
            backend.shutdown()
    return results
