"""Shared experiment harness used by the ``benchmarks/`` suite."""

from repro.experiments.tasks import TaskSpec, default_epochs
from repro.experiments.runner import compare_methods, method_factories
from repro.experiments import ls_study, lp_study

__all__ = [
    "TaskSpec",
    "default_epochs",
    "compare_methods",
    "method_factories",
    "ls_study",
    "lp_study",
]
