"""Per-layer study for the LS deployment (paper Section IV-B, Fig. 5).

For Layer Sequential deployment one design point serves every layer, so the
study has three parts:

* exhaustive 12x12 contours of latency/energy over the action pairs for
  individual layers (the heatmaps of Fig. 5),
* the two common heuristics the paper contrasts -- A: configure for the
  most compute-intensive layer; B: the uniform pair that best optimizes the
  end-to-end model, and
* per-layer optimal pairs, showing no single pair suits all layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.costmodel.batched import (
    STYLE_INDEX,
    LayerTable,
    ordered_row_sum,
)
from repro.costmodel.estimator import CostModel
from repro.env.spaces import ActionSpace
from repro.models.layers import Layer
from repro.objectives import CostTotals, resolve_objective


def _action_pair_grid(space: ActionSpace) -> Tuple[np.ndarray, np.ndarray]:
    """The exhaustive L x L action-pair grid as flat (pes, l1) vectors,
    PE level outermost (row-major, matching the scalar loop order)."""
    pes = np.repeat(np.asarray(space.pe_levels, dtype=np.int64),
                    space.num_levels)
    l1_bytes = np.tile(np.asarray(space.buf_levels, dtype=np.int64),
                       space.num_levels)
    return pes, l1_bytes


def layer_contour(layer: Layer, dataflow: str, objective: str,
                  cost_model: CostModel,
                  space: ActionSpace) -> np.ndarray:
    """Exhaustive (PE level, Buffer level) objective grid for one layer.

    The full grid is one batched estimator call (bit-identical to the old
    per-pair scalar loop).
    """
    pes, l1_bytes = _action_pair_grid(space)
    batch = cost_model.evaluate_layer_batch(layer, dataflow, pes, l1_bytes)
    return batch.objective(objective).reshape(space.num_levels,
                                              space.num_levels)


def best_action_pair(grid: np.ndarray) -> Tuple[int, int, float]:
    """(pe level index, buffer level index, value) of the grid minimum."""
    flat = int(np.argmin(grid))
    pe_idx, buf_idx = divmod(flat, grid.shape[1])
    return pe_idx, buf_idx, float(grid[pe_idx, buf_idx])


def plateau_fraction(grid: np.ndarray, tolerance: float = 0.01) -> float:
    """Fraction of pairs within ``tolerance`` of their row minimum -- a
    measure of the over-provisioning plateaus visible in Fig. 5."""
    minima = grid.min(axis=1, keepdims=True)
    flat = np.abs(grid - minima) <= tolerance * minima
    return float(flat.mean())


def most_compute_intensive(layers: Sequence[Layer]) -> int:
    """Index of the layer with the most MACs (Heuristic A's anchor)."""
    return int(np.argmax([layer.macs for layer in layers]))


def uniform_cost(layers: Sequence[Layer], dataflow: str, objective: str,
                 cost_model: CostModel, pes: int, l1_bytes: int) -> float:
    """End-to-end LS cost of one shared design point."""
    report = cost_model.evaluate_model_ls(layers, pes, l1_bytes, dataflow)
    return report.objective(objective)


@dataclass(frozen=True)
class HeuristicOutcome:
    """A heuristic's chosen pair and its end-to-end cost."""

    pe_idx: int
    buf_idx: int
    pes: int
    l1_bytes: int
    end_to_end_cost: float


def heuristic_a(layers: Sequence[Layer], dataflow: str, objective: str,
                cost_model: CostModel,
                space: ActionSpace) -> HeuristicOutcome:
    """Heuristic A: size for the most compute-intensive layer."""
    anchor = layers[most_compute_intensive(layers)]
    grid = layer_contour(anchor, dataflow, objective, cost_model, space)
    pe_idx, buf_idx, _ = best_action_pair(grid)
    pes, l1_bytes = space.pe_levels[pe_idx], space.buf_levels[buf_idx]
    cost = uniform_cost(layers, dataflow, objective, cost_model, pes,
                        l1_bytes)
    return HeuristicOutcome(pe_idx, buf_idx, pes, l1_bytes, cost)


def uniform_sweep(layers: Sequence[Layer], dataflow: str, objective: str,
                  cost_model: CostModel, space: ActionSpace) -> np.ndarray:
    """End-to-end LS cost of every uniform action pair as an (L, L) grid.

    All L^2 design points x N layers are evaluated as a single batched
    call; row ``pe_idx``, column ``buf_idx`` matches
    :func:`uniform_cost` on the corresponding pair exactly.
    """
    style = STYLE_INDEX[dataflow]
    table = LayerTable.build(layers)
    num_layers = len(layers)
    pairs_pes, pairs_l1 = _action_pair_grid(space)
    num_pairs = len(pairs_pes)
    pes = np.repeat(pairs_pes, num_layers)
    l1_bytes = np.repeat(pairs_l1, num_layers)
    layer_idx = np.tile(np.arange(num_layers, dtype=np.int64), num_pairs)
    batch = cost_model.batched.evaluate(table, layer_idx, style, pes,
                                        l1_bytes)
    latency_total = ordered_row_sum(
        batch.latency_cycles.reshape(num_pairs, num_layers))
    energy_total = ordered_row_sum(
        batch.energy_nj.reshape(num_pairs, num_layers))
    # LS aggregates: one accelerator runs every layer, so area is that of
    # the single design point and power is the worst (peak) layer.
    area_total = batch.area_um2.reshape(num_pairs, num_layers).max(axis=1)
    power_total = batch.power_mw.reshape(num_pairs, num_layers).max(axis=1)
    cost = np.asarray(resolve_objective(objective).evaluate(CostTotals(
        latency_total, energy_total, area_total, power_total)),
        dtype=np.float64)
    return cost.reshape(space.num_levels, space.num_levels)


def heuristic_b(layers: Sequence[Layer], dataflow: str, objective: str,
                cost_model: CostModel,
                space: ActionSpace) -> HeuristicOutcome:
    """Heuristic B: the uniform pair minimizing end-to-end cost
    (exhaustive over the L^2 uniform configurations, evaluated as one
    batched sweep; ties resolve to the first pair in PE-major order,
    exactly as the old scalar scan did)."""
    grid = uniform_sweep(layers, dataflow, objective, cost_model, space)
    pe_idx, buf_idx, cost = best_action_pair(grid)
    return HeuristicOutcome(pe_idx, buf_idx, space.pe_levels[pe_idx],
                            space.buf_levels[buf_idx], cost)


def per_layer_optima(layers: Sequence[Layer], dataflow: str, objective: str,
                     cost_model: CostModel, space: ActionSpace
                     ) -> List[Tuple[int, int, float]]:
    """The per-layer optimal pairs Con'X finds in the LS study."""
    optima = []
    for layer in layers:
        grid = layer_contour(layer, dataflow, objective, cost_model, space)
        optima.append(best_action_pair(grid))
    return optima
