"""Per-layer study for the LS deployment (paper Section IV-B, Fig. 5).

For Layer Sequential deployment one design point serves every layer, so the
study has three parts:

* exhaustive 12x12 contours of latency/energy over the action pairs for
  individual layers (the heatmaps of Fig. 5),
* the two common heuristics the paper contrasts -- A: configure for the
  most compute-intensive layer; B: the uniform pair that best optimizes the
  end-to-end model, and
* per-layer optimal pairs, showing no single pair suits all layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.costmodel.estimator import CostModel
from repro.env.spaces import ActionSpace
from repro.models.layers import Layer


def layer_contour(layer: Layer, dataflow: str, objective: str,
                  cost_model: CostModel,
                  space: ActionSpace) -> np.ndarray:
    """Exhaustive (PE level, Buffer level) objective grid for one layer."""
    grid = np.zeros((space.num_levels, space.num_levels))
    for pe_idx, pes in enumerate(space.pe_levels):
        for buf_idx, l1_bytes in enumerate(space.buf_levels):
            report = cost_model.evaluate_layer(layer, dataflow, pes,
                                               l1_bytes)
            grid[pe_idx, buf_idx] = report.objective(objective)
    return grid


def best_action_pair(grid: np.ndarray) -> Tuple[int, int, float]:
    """(pe level index, buffer level index, value) of the grid minimum."""
    flat = int(np.argmin(grid))
    pe_idx, buf_idx = divmod(flat, grid.shape[1])
    return pe_idx, buf_idx, float(grid[pe_idx, buf_idx])


def plateau_fraction(grid: np.ndarray, tolerance: float = 0.01) -> float:
    """Fraction of pairs within ``tolerance`` of their row minimum -- a
    measure of the over-provisioning plateaus visible in Fig. 5."""
    minima = grid.min(axis=1, keepdims=True)
    flat = np.abs(grid - minima) <= tolerance * minima
    return float(flat.mean())


def most_compute_intensive(layers: Sequence[Layer]) -> int:
    """Index of the layer with the most MACs (Heuristic A's anchor)."""
    return int(np.argmax([layer.macs for layer in layers]))


def uniform_cost(layers: Sequence[Layer], dataflow: str, objective: str,
                 cost_model: CostModel, pes: int, l1_bytes: int) -> float:
    """End-to-end LS cost of one shared design point."""
    report = cost_model.evaluate_model_ls(layers, pes, l1_bytes, dataflow)
    return report.objective(objective)


@dataclass(frozen=True)
class HeuristicOutcome:
    """A heuristic's chosen pair and its end-to-end cost."""

    pe_idx: int
    buf_idx: int
    pes: int
    l1_bytes: int
    end_to_end_cost: float


def heuristic_a(layers: Sequence[Layer], dataflow: str, objective: str,
                cost_model: CostModel,
                space: ActionSpace) -> HeuristicOutcome:
    """Heuristic A: size for the most compute-intensive layer."""
    anchor = layers[most_compute_intensive(layers)]
    grid = layer_contour(anchor, dataflow, objective, cost_model, space)
    pe_idx, buf_idx, _ = best_action_pair(grid)
    pes, l1_bytes = space.pe_levels[pe_idx], space.buf_levels[buf_idx]
    cost = uniform_cost(layers, dataflow, objective, cost_model, pes,
                        l1_bytes)
    return HeuristicOutcome(pe_idx, buf_idx, pes, l1_bytes, cost)


def heuristic_b(layers: Sequence[Layer], dataflow: str, objective: str,
                cost_model: CostModel,
                space: ActionSpace) -> HeuristicOutcome:
    """Heuristic B: the uniform pair minimizing end-to-end cost
    (exhaustive over the L^2 uniform configurations)."""
    best: Optional[HeuristicOutcome] = None
    for pe_idx, pes in enumerate(space.pe_levels):
        for buf_idx, l1_bytes in enumerate(space.buf_levels):
            cost = uniform_cost(layers, dataflow, objective, cost_model,
                                pes, l1_bytes)
            if best is None or cost < best.end_to_end_cost:
                best = HeuristicOutcome(pe_idx, buf_idx, pes, l1_bytes, cost)
    return best


def per_layer_optima(layers: Sequence[Layer], dataflow: str, objective: str,
                     cost_model: CostModel, space: ActionSpace
                     ) -> List[Tuple[int, int, float]]:
    """The per-layer optimal pairs Con'X finds in the LS study."""
    optima = []
    for layer in layers:
        grid = layer_contour(layer, dataflow, objective, cost_model, space)
        optima.append(best_action_pair(grid))
    return optima
