"""The specially designed local fine-tuning GA (paper Section III-G).

The RL stage navigates the coarse Table-I levels; this GA then polishes the
solution in the *raw* integer space (any PE count, any buffer size), using
two conservative operators that preserve the constraint relationship the RL
stage learnt:

* **Local mutation** -- a gene moves at most ``step`` away from its current
  value (e.g. PE=64 -> [60, 68] for step 4), keeping most offspring valid.
* **Local crossover** -- instead of blending two parents (which the paper
  shows breaks the learnt per-layer budget split), the (PE, Buffer) tuples
  of two layers are swapped *within one* genome.

The first population is seeded with the stage-1 solution.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.evaluator import DesignPointEvaluator, RawAssignment
from repro.rl.common import SearchResult

Genome = List[List]  # [[pes, buf(, style)], ...] mutable raw assignments


class LocalGA:
    """Local-search GA seeded with a known-good design point.

    Args:
        population_size: Individuals per generation (paper: 20).
        mutation_rate: Per-gene local-mutation probability (paper: 0.05).
        crossover_rate: Per-individual layer-swap probability (paper: 0.2).
        mutation_step: Maximum per-gene move (paper: 4).
        max_pes: Raw PE upper bound.
        max_l1_bytes: Raw buffer upper bound.
        crossover_mode: "local" (the paper's within-genome layer swap) or
            "global" (conventional two-parent gene blending) -- the latter
            exists only for the ablation that reproduces the paper's
            argument that blending breaks the learnt budget split.
        seed: RNG seed.
    """

    name = "local-ga"

    def __init__(self, population_size: int = 20, mutation_rate: float = 0.05,
                 crossover_rate: float = 0.2, mutation_step: int = 4,
                 max_pes: int = 128, max_l1_bytes: int = 2048,
                 elite: int = 2, crossover_mode: str = "local",
                 seed: Optional[int] = None) -> None:
        if population_size < 2:
            raise ValueError("population_size must be >= 2")
        if mutation_step < 1:
            raise ValueError("mutation_step must be >= 1")
        if not 0.0 <= mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in [0, 1]")
        if not 0.0 <= crossover_rate <= 1.0:
            raise ValueError("crossover_rate must be in [0, 1]")
        if crossover_mode not in ("local", "global"):
            raise ValueError(
                f"unknown crossover_mode {crossover_mode!r}")
        self.crossover_mode = crossover_mode
        self.population_size = population_size
        self.mutation_rate = mutation_rate
        self.crossover_rate = crossover_rate
        self.mutation_step = mutation_step
        self.max_pes = max_pes
        self.max_l1_bytes = max_l1_bytes
        self.elite = max(1, elite)
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    @staticmethod
    def _to_genome(assignments: Sequence[RawAssignment]) -> Genome:
        return [list(assignment) for assignment in assignments]

    def _mutate(self, genome: Genome) -> Genome:
        child = [list(gene) for gene in genome]
        for gene in child:
            if self.rng.random() < self.mutation_rate:
                delta = int(self.rng.integers(-self.mutation_step,
                                              self.mutation_step + 1))
                gene[0] = int(min(max(gene[0] + delta, 1), self.max_pes))
            if self.rng.random() < self.mutation_rate:
                delta = int(self.rng.integers(-self.mutation_step,
                                              self.mutation_step + 1))
                gene[1] = int(min(max(gene[1] + delta, 1),
                                  self.max_l1_bytes))
        return child

    def _local_crossover(self, genome: Genome) -> Genome:
        """Swap the full assignments of two layers within one genome."""
        if len(genome) < 2:
            return genome
        child = [list(gene) for gene in genome]
        i, j = self.rng.choice(len(child), size=2, replace=False)
        child[int(i)], child[int(j)] = child[int(j)], child[int(i)]
        return child

    def _global_crossover(self, a: Genome, b: Genome) -> Genome:
        """Conventional uniform blending of two parents (ablation only)."""
        child = []
        for gene_a, gene_b in zip(a, b):
            child.append(list(gene_b if self.rng.random() < 0.5
                              else gene_a))
        return child

    def _fitness(self, evaluator: DesignPointEvaluator,
                 genome: Genome) -> float:
        outcome = evaluator.evaluate_raw([tuple(g) for g in genome])
        return outcome.cost if outcome.feasible else float("inf")

    # ------------------------------------------------------------------
    def search(self, evaluator: DesignPointEvaluator,
               initial: Sequence[RawAssignment],
               generations: int) -> SearchResult:
        """Fine-tune ``initial`` for ``generations`` GA generations.

        The initial point is evaluated first and is never lost (elitism), so
        the result is monotonically at least as good as the seed.
        """
        if generations < 1:
            raise ValueError("generations must be >= 1")
        result = SearchResult(algorithm=self.name)
        started = time.perf_counter()

        seed_genome = self._to_genome(initial)
        population: List[Tuple[float, Genome]] = []
        seed_cost = self._fitness(evaluator, seed_genome)
        population.append((seed_cost, seed_genome))
        for _ in range(self.population_size - 1):
            population.append((
                float("inf"),
                self._mutate(seed_genome),
            ))
        population = [(self._fitness(evaluator, genome)
                       if cost == float("inf") else cost, genome)
                      for cost, genome in population]

        for _ in range(generations):
            population.sort(key=lambda item: item[0])
            survivors = population[: max(self.elite,
                                         self.population_size // 2)]
            next_population = list(population[: self.elite])
            while len(next_population) < self.population_size:
                _, parent = survivors[
                    int(self.rng.integers(len(survivors)))]
                child = parent
                if self.rng.random() < self.crossover_rate:
                    if self.crossover_mode == "local":
                        child = self._local_crossover(child)
                    else:
                        _, other = survivors[
                            int(self.rng.integers(len(survivors)))]
                        child = self._global_crossover(child, other)
                child = self._mutate(child)
                next_population.append(
                    (self._fitness(evaluator, child), child))
            population = next_population
            best_cost = min(cost for cost, _ in population)
            result.record(None if best_cost == float("inf") else best_cost)

        population.sort(key=lambda item: item[0])
        best_cost, best_genome = population[0]
        if best_cost != float("inf"):
            result.best_cost = best_cost
            result.best_assignments = tuple(
                tuple(gene) for gene in best_genome)
        result.wall_time_s = time.perf_counter() - started
        result.evaluations = evaluator.evaluations
        result.episodes = generations
        return result
