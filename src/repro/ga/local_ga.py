"""The specially designed local fine-tuning GA (paper Section III-G).

The RL stage navigates the coarse Table-I levels; this GA then polishes the
solution in the *raw* integer space (any PE count, any buffer size), using
two conservative operators that preserve the constraint relationship the RL
stage learnt:

* **Local mutation** -- a gene moves at most ``step`` away from its current
  value (e.g. PE=64 -> [60, 68] for step 4), keeping most offspring valid.
* **Local crossover** -- instead of blending two parents (which the paper
  shows breaks the learnt per-layer budget split), the (PE, Buffer) tuples
  of two layers are swapped *within one* genome.

The first population is seeded with the stage-1 solution.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.evaluator import DesignPointEvaluator, EvalResult, \
    RawAssignment
from repro.rl.common import SearchResult

Genome = List[List]  # [[pes, buf(, style)], ...] mutable raw assignments

#: Hashable fitness-memo key for one genome.
GenomeKey = Tuple[Tuple, ...]


class LocalGA:
    """Local-search GA seeded with a known-good design point.

    Args:
        population_size: Individuals per generation (paper: 20).
        mutation_rate: Per-gene local-mutation probability (paper: 0.05).
        crossover_rate: Per-individual layer-swap probability (paper: 0.2).
        mutation_step: Maximum per-gene move (paper: 4).
        max_pes: Raw PE upper bound.
        max_l1_bytes: Raw buffer upper bound.
        crossover_mode: "local" (the paper's within-genome layer swap) or
            "global" (conventional two-parent gene blending) -- the latter
            exists only for the ablation that reproduces the paper's
            argument that blending breaks the learnt budget split.
        use_batch: Evaluate each generation's offspring as one batched
            population instead of per-individual calls (bit-identical
            results; ``False`` keeps the scalar path for parity tests).
            Batched generations are the unit an installed parallel
            backend (:mod:`repro.parallel`) shards across workers.
        memoize: Cache fitness by genome within one search so duplicate
            offspring -- common with elitism and low mutation rates --
            never re-hit the estimator.  The hit count is exposed on
            :attr:`SearchResult.cache_hits`.
        seed: RNG seed.
    """

    name = "local-ga"

    def __init__(self, population_size: int = 20, mutation_rate: float = 0.05,
                 crossover_rate: float = 0.2, mutation_step: int = 4,
                 max_pes: int = 128, max_l1_bytes: int = 2048,
                 elite: int = 2, crossover_mode: str = "local",
                 use_batch: bool = True, memoize: bool = True,
                 seed: Optional[int] = None) -> None:
        if population_size < 2:
            raise ValueError("population_size must be >= 2")
        if mutation_step < 1:
            raise ValueError("mutation_step must be >= 1")
        if not 0.0 <= mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in [0, 1]")
        if not 0.0 <= crossover_rate <= 1.0:
            raise ValueError("crossover_rate must be in [0, 1]")
        if crossover_mode not in ("local", "global"):
            raise ValueError(
                f"unknown crossover_mode {crossover_mode!r}")
        self.crossover_mode = crossover_mode
        self.population_size = population_size
        self.mutation_rate = mutation_rate
        self.crossover_rate = crossover_rate
        self.mutation_step = mutation_step
        self.max_pes = max_pes
        self.max_l1_bytes = max_l1_bytes
        self.elite = max(1, elite)
        self.use_batch = use_batch
        self.memoize = memoize
        self.rng = np.random.default_rng(seed)
        self._memo: Dict[GenomeKey, float] = {}
        self._hits = 0

    # ------------------------------------------------------------------
    @staticmethod
    def _to_genome(assignments: Sequence[RawAssignment]) -> Genome:
        return [list(assignment) for assignment in assignments]

    def _mutate(self, genome: Genome) -> Genome:
        child = [list(gene) for gene in genome]
        for gene in child:
            if self.rng.random() < self.mutation_rate:
                delta = int(self.rng.integers(-self.mutation_step,
                                              self.mutation_step + 1))
                gene[0] = int(min(max(gene[0] + delta, 1), self.max_pes))
            if self.rng.random() < self.mutation_rate:
                delta = int(self.rng.integers(-self.mutation_step,
                                              self.mutation_step + 1))
                gene[1] = int(min(max(gene[1] + delta, 1),
                                  self.max_l1_bytes))
        return child

    def _local_crossover(self, genome: Genome) -> Genome:
        """Swap the full assignments of two layers within one genome."""
        if len(genome) < 2:
            return genome
        child = [list(gene) for gene in genome]
        i, j = self.rng.choice(len(child), size=2, replace=False)
        child[int(i)], child[int(j)] = child[int(j)], child[int(i)]
        return child

    def _global_crossover(self, a: Genome, b: Genome) -> Genome:
        """Conventional uniform blending of two parents (ablation only)."""
        child = []
        for gene_a, gene_b in zip(a, b):
            child.append(list(gene_b if self.rng.random() < 0.5
                              else gene_a))
        return child

    @staticmethod
    def _cost_of(outcome: EvalResult) -> float:
        """The GA's fitness rule: objective cost, infinite if infeasible."""
        return outcome.cost if outcome.feasible else float("inf")

    @staticmethod
    def _key(genome: Genome) -> GenomeKey:
        return tuple(tuple(gene) for gene in genome)

    def _evaluate_many(self, evaluator: DesignPointEvaluator,
                       genomes: Sequence[Genome]) -> List[EvalResult]:
        raw = [[tuple(gene) for gene in genome] for genome in genomes]
        if self.use_batch:
            return evaluator.evaluate_population_raw(raw)
        return [evaluator.evaluate_raw(assignments) for assignments in raw]

    def _fitness_many(self, evaluator: DesignPointEvaluator,
                      genomes: Sequence[Genome]) -> List[float]:
        """Fitness of many genomes: one batched estimator call, with
        duplicate genomes (within the batch or across the whole search)
        served from the memo instead of re-hitting the estimator."""
        if not self.memoize:
            return [self._cost_of(outcome) for outcome
                    in self._evaluate_many(evaluator, genomes)]
        keys = [self._key(genome) for genome in genomes]
        pending: Dict[GenomeKey, Genome] = {}
        for key, genome in zip(keys, genomes):
            if key in self._memo or key in pending:
                self._hits += 1
            else:
                pending[key] = genome
        if pending:
            outcomes = self._evaluate_many(evaluator,
                                           list(pending.values()))
            for key, outcome in zip(pending, outcomes):
                self._memo[key] = self._cost_of(outcome)
        return [self._memo[key] for key in keys]

    # ------------------------------------------------------------------
    def search(self, evaluator: DesignPointEvaluator,
               initial: Sequence[RawAssignment],
               generations: int) -> SearchResult:
        """Fine-tune ``initial`` for ``generations`` GA generations.

        The initial point is evaluated first and is never lost (elitism), so
        the result is monotonically at least as good as the seed.
        """
        if generations < 1:
            raise ValueError("generations must be >= 1")
        result = SearchResult(algorithm=self.name)
        started = time.perf_counter()
        self._memo = {}
        self._hits = 0

        seed_genome = self._to_genome(initial)
        genomes: List[Genome] = [seed_genome]
        for _ in range(self.population_size - 1):
            genomes.append(self._mutate(seed_genome))
        population: List[Tuple[float, Genome]] = list(
            zip(self._fitness_many(evaluator, genomes), genomes))

        for _ in range(generations):
            population.sort(key=lambda item: item[0])
            survivors = population[: max(self.elite,
                                         self.population_size // 2)]
            next_population = list(population[: self.elite])
            # Breed the full offspring set first (fitness consumes no
            # randomness), then score it as one batched evaluation.
            offspring: List[Genome] = []
            while len(next_population) + len(offspring) \
                    < self.population_size:
                _, parent = survivors[
                    int(self.rng.integers(len(survivors)))]
                child = parent
                if self.rng.random() < self.crossover_rate:
                    if self.crossover_mode == "local":
                        child = self._local_crossover(child)
                    else:
                        _, other = survivors[
                            int(self.rng.integers(len(survivors)))]
                        child = self._global_crossover(child, other)
                offspring.append(self._mutate(child))
            next_population.extend(
                zip(self._fitness_many(evaluator, offspring), offspring))
            population = next_population
            best_cost = min(cost for cost, _ in population)
            result.record(None if best_cost == float("inf") else best_cost)

        population.sort(key=lambda item: item[0])
        best_cost, best_genome = population[0]
        if best_cost != float("inf"):
            result.best_cost = best_cost
            result.best_assignments = tuple(
                tuple(gene) for gene in best_genome)
        result.wall_time_s = time.perf_counter() - started
        # ``evaluations`` keeps its historical meaning -- fitness samples
        # the search consumed -- so sample-efficiency comparisons against
        # the non-memoizing methods stay apples-to-apples; ``cache_hits``
        # says how many of those never reached the estimator.
        result.evaluations = evaluator.evaluations + self._hits
        result.cache_hits = self._hits
        result.episodes = generations
        return result
