"""Stage-2 local fine-tuning (paper Section III-G)."""

from repro.ga.local_ga import LocalGA

__all__ = ["LocalGA"]
