"""SAC comparison agent (Haarnoja et al. 2018).

Maximum-entropy actor-critic: a tanh-squashed Gaussian actor trained with
the reparameterization trick against the minimum of twin Q critics, with a
fixed entropy temperature.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.env.environment import HWAssignmentEnv
from repro.nn.autograd import Tensor, no_grad
from repro.nn.functional import huber_loss
from repro.nn.modules import Linear, MLP, Module
from repro.nn.optim import Adam
from repro.rl.offpolicy import OffPolicyAgent, QNetwork

_LOG_STD_MIN = -5.0
_LOG_STD_MAX = 2.0
_LOG_2PI = math.log(2.0 * math.pi)


class GaussianActor(Module):
    """Squashed-Gaussian policy head used by SAC."""

    def __init__(self, obs_dim: int, action_dim: int, hidden_sizes,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.body = MLP([obs_dim, *hidden_sizes], activation="relu",
                        output_activation="relu", rng=rng)
        self.mean_head = Linear(hidden_sizes[-1], action_dim, rng=rng,
                                gain=0.1)
        self.log_std_head = Linear(hidden_sizes[-1], action_dim, rng=rng,
                                   gain=0.1)

    def forward(self, obs: Tensor) -> Tuple[Tensor, Tensor]:
        features = self.body(obs)
        mean = self.mean_head(features)
        log_std = self.log_std_head(features).clip(_LOG_STD_MIN,
                                                   _LOG_STD_MAX)
        return mean, log_std

    def sample(self, obs: Tensor,
               rng: np.random.Generator) -> Tuple[Tensor, Tensor]:
        """Reparameterized squashed sample and its log-probability."""
        mean, log_std = self(obs)
        std = log_std.exp()
        noise = Tensor(rng.standard_normal(mean.shape))
        pre_tanh = mean + std * noise
        action = pre_tanh.tanh()
        gaussian_logp = (
            (noise * noise) * -0.5 - log_std - 0.5 * _LOG_2PI
        ).sum(axis=-1)
        # Change of variables for the tanh squash.
        correction = (1.0 - action * action + 1e-6).log().sum(axis=-1)
        return action, gaussian_logp - correction


class SAC(OffPolicyAgent):
    """Soft actor-critic over the level box."""

    name = "sac"

    def __init__(self, alpha: float = 0.1, **kwargs) -> None:
        super().__init__(**kwargs)
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha

    def _build(self, env: HWAssignmentEnv) -> None:
        obs_dim = env.observation_dim
        self.actor = GaussianActor(obs_dim, self.action_dim,
                                   self.hidden_sizes, rng=self.rng)
        self.critic1 = QNetwork(obs_dim, self.action_dim, self.hidden_sizes,
                                rng=self.rng)
        self.critic2 = QNetwork(obs_dim, self.action_dim, self.hidden_sizes,
                                rng=self.rng)
        self.critic1_target = QNetwork(obs_dim, self.action_dim,
                                       self.hidden_sizes, rng=self.rng)
        self.critic2_target = QNetwork(obs_dim, self.action_dim,
                                       self.hidden_sizes, rng=self.rng)
        self.critic1_target.load_state_dict(self.critic1.state_dict())
        self.critic2_target.load_state_dict(self.critic2.state_dict())
        self.actor_optimizer = Adam(self.actor.parameters(), lr=self.lr)
        self.critic_optimizer = Adam(
            self.critic1.parameters() + self.critic2.parameters(),
            lr=self.lr)

    def _act(self, observation: np.ndarray, explore: bool) -> np.ndarray:
        obs = Tensor(observation.reshape(1, -1))
        with no_grad():
            if explore:
                action, _ = self.actor.sample(obs, self.rng)
                return action.numpy()[0]
            mean, _ = self.actor(obs)
            return np.tanh(mean.numpy()[0])

    def _act_batch(self, observations: np.ndarray,
                   explore: bool) -> np.ndarray:
        obs = Tensor(observations)
        with no_grad():
            if explore:
                actions, _ = self.actor.sample(obs, self.rng)
                return actions.numpy()
            mean, _ = self.actor(obs)
            return np.tanh(mean.numpy())

    def _update(self) -> None:
        obs, actions, rewards, next_obs, dones = self._sample_batch()
        with no_grad():
            next_actions, next_logp = self.actor.sample(next_obs, self.rng)
            q1 = self.critic1_target(next_obs, next_actions).numpy()
            q2 = self.critic2_target(next_obs, next_actions).numpy()
            soft_q = (np.minimum(q1, q2).reshape(-1)
                      - self.alpha * next_logp.numpy())
        targets = Tensor(rewards + self.discount * (1.0 - dones) * soft_q)

        q1_values = self.critic1(obs, actions).reshape(self.batch_size)
        q2_values = self.critic2(obs, actions).reshape(self.batch_size)
        critic_loss = huber_loss(q1_values, targets) \
            + huber_loss(q2_values, targets)
        self.critic_optimizer.zero_grad()
        critic_loss.backward()
        self.critic_optimizer.step()

        new_actions, logp = self.actor.sample(obs, self.rng)
        q1_pi = self.critic1(obs, new_actions).reshape(self.batch_size)
        q2_pi = self.critic2(obs, new_actions).reshape(self.batch_size)
        min_q = 0.5 * (q1_pi + q2_pi - (q1_pi - q2_pi).abs())
        actor_loss = (logp * self.alpha - min_q).mean()
        self.actor_optimizer.zero_grad()
        self.critic1.zero_grad()
        self.critic2.zero_grad()
        actor_loss.backward()
        self.actor_optimizer.step()
        self.critic1.zero_grad()
        self.critic2.zero_grad()

        self.critic1_target.soft_update(self.critic1, self.tau)
        self.critic2_target.soft_update(self.critic2, self.tau)

    def _memory_bytes(self) -> int:
        return 8 * (self.actor.num_parameters()
                    + 2 * (self.critic1.num_parameters()
                           + self.critic2.num_parameters()))
