"""DDPG comparison agent (Lillicrap et al. 2015).

Deterministic tanh actor with Gaussian exploration noise, a single Q
critic, and Polyak-averaged target networks.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.env.environment import HWAssignmentEnv
from repro.nn.autograd import Tensor, no_grad
from repro.nn.functional import huber_loss
from repro.nn.modules import MLP
from repro.nn.optim import Adam
from repro.rl.offpolicy import OffPolicyAgent, QNetwork


class DDPG(OffPolicyAgent):
    """Deep deterministic policy gradient over the level box."""

    name = "ddpg"

    def __init__(self, noise_sigma: float = 0.2, **kwargs) -> None:
        super().__init__(**kwargs)
        if noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")
        self.noise_sigma = noise_sigma

    def _build(self, env: HWAssignmentEnv) -> None:
        obs_dim = env.observation_dim
        self.actor = MLP([obs_dim, *self.hidden_sizes, self.action_dim],
                         activation="relu", output_activation="tanh",
                         rng=self.rng)
        self.critic = QNetwork(obs_dim, self.action_dim, self.hidden_sizes,
                               rng=self.rng)
        self.actor_target = MLP(
            [obs_dim, *self.hidden_sizes, self.action_dim],
            activation="relu", output_activation="tanh", rng=self.rng)
        self.critic_target = QNetwork(obs_dim, self.action_dim,
                                      self.hidden_sizes, rng=self.rng)
        self.actor_target.load_state_dict(self.actor.state_dict())
        self.critic_target.load_state_dict(self.critic.state_dict())
        self.actor_optimizer = Adam(self.actor.parameters(), lr=self.lr)
        self.critic_optimizer = Adam(self.critic.parameters(), lr=self.lr)

    def _act(self, observation: np.ndarray, explore: bool) -> np.ndarray:
        with no_grad():
            action = self.actor(
                Tensor(observation.reshape(1, -1))).numpy()[0]
        if explore:
            action = action + self.rng.normal(0.0, self.noise_sigma,
                                              size=action.shape)
        return np.clip(action, -1.0, 1.0)

    def _act_batch(self, observations: np.ndarray,
                   explore: bool) -> np.ndarray:
        with no_grad():
            actions = self.actor(Tensor(observations)).numpy()
        if explore:
            actions = actions + self.rng.normal(0.0, self.noise_sigma,
                                                size=actions.shape)
        return np.clip(actions, -1.0, 1.0)

    def _update(self) -> None:
        obs, actions, rewards, next_obs, dones = self._sample_batch()
        with no_grad():
            next_actions = self.actor_target(next_obs)
            next_q = self.critic_target(next_obs, next_actions).numpy()
            next_q = next_q.reshape(-1)
        targets = rewards + self.discount * (1.0 - dones) * next_q

        q_values = self.critic(obs, actions).reshape(self.batch_size)
        critic_loss = huber_loss(q_values, Tensor(targets))
        self.critic_optimizer.zero_grad()
        critic_loss.backward()
        self.critic_optimizer.step()

        # Policy gradient: maximize Q(s, pi(s)).
        actor_actions = self.actor(obs)
        actor_loss = -self.critic(obs, actor_actions).mean()
        self.actor_optimizer.zero_grad()
        self.critic.zero_grad()
        actor_loss.backward()
        self.actor_optimizer.step()
        self.critic.zero_grad()

        self.actor_target.soft_update(self.actor, self.tau)
        self.critic_target.soft_update(self.critic, self.tau)

    def _memory_bytes(self) -> int:
        return 8 * 2 * (self.actor.num_parameters()
                        + self.critic.num_parameters())
