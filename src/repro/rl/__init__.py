"""RL algorithms for the HW-assignment search.

``Reinforce`` is the paper's choice (actor-only, LSTM policy); the rest are
the state-of-the-art comparison points of Table V: the discrete actor-critic
family (A2C, ACKTR, PPO2) and the continuous off-policy family (DDPG, TD3,
SAC), whose box actions are snapped onto the discrete Table-I levels.
"""

from repro.rl.common import SearchAlgorithm, SearchResult
from repro.rl.policies import MLPPolicy, RecurrentPolicy
from repro.rl.reinforce import Reinforce
from repro.rl.a2c import A2C
from repro.rl.acktr import ACKTR
from repro.rl.ppo import PPO2
from repro.rl.ddpg import DDPG
from repro.rl.td3 import TD3
from repro.rl.sac import SAC

RL_ALGORITHMS = {
    "reinforce": Reinforce,
    "a2c": A2C,
    "acktr": ACKTR,
    "ppo2": PPO2,
    "ddpg": DDPG,
    "td3": TD3,
    "sac": SAC,
}

__all__ = [
    "SearchAlgorithm",
    "SearchResult",
    "RecurrentPolicy",
    "MLPPolicy",
    "Reinforce",
    "A2C",
    "ACKTR",
    "PPO2",
    "DDPG",
    "TD3",
    "SAC",
    "RL_ALGORITHMS",
]
