"""Policy networks: the paper's RNN (LSTM-128) policy and the MLP ablation.

Both produce one categorical distribution per action head -- (PE, Buffer)
and, under MIX, the dataflow style.  The recurrent policy threads an LSTM
state through the episode so it can ``remember the consumed constraint of
previous layers`` (Section IV-G); the MLP sees only the current observation
(which still includes the previous action, equation 1).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.autograd import Tensor
from repro.nn.distributions import Categorical
from repro.nn.modules import Linear, LSTMCell, MLP, Module


class RecurrentPolicy(Module):
    """LSTM backbone with one linear head per sub-action.

    Args:
        obs_dim: Observation dimensionality (10, equation 1).
        head_sizes: Number of levels per action head (Table I / MIX).
        hidden_size: LSTM width; the paper uses 128.
    """

    def __init__(self, obs_dim: int, head_sizes: Sequence[int],
                 hidden_size: int = 128,
                 rng: Optional[np.random.Generator] = None) -> None:
        rng = rng or np.random.default_rng()
        self.obs_dim = obs_dim
        self.hidden_size = hidden_size
        self.cell = LSTMCell(obs_dim, hidden_size, rng=rng)
        self.heads = [Linear(hidden_size, size, rng=rng, gain=0.1)
                      for size in head_sizes]

    @property
    def is_recurrent(self) -> bool:
        return True

    def initial_state(self, batch: int = 1) -> Tuple[Tensor, Tensor]:
        """Zero state for ``batch`` lockstep episodes (1 = scalar)."""
        return self.cell.initial_state(batch=batch)

    def forward(self, obs: Tensor,
                state: Tuple[Tensor, Tensor]
                ) -> Tuple[List[Categorical], Tuple[Tensor, Tensor]]:
        h, c = self.cell(obs, state)
        dists = [Categorical(head(h)) for head in self.heads]
        return dists, (h, c)


class MLPPolicy(Module):
    """Feed-forward policy (Table IX's MLP ablation and the comparison
    agents' default architecture)."""

    def __init__(self, obs_dim: int, head_sizes: Sequence[int],
                 hidden_sizes: Sequence[int] = (64, 64),
                 rng: Optional[np.random.Generator] = None) -> None:
        rng = rng or np.random.default_rng()
        self.obs_dim = obs_dim
        self.body = MLP([obs_dim, *hidden_sizes], activation="tanh",
                        output_activation="tanh", rng=rng)
        self.heads = [Linear(hidden_sizes[-1], size, rng=rng, gain=0.1)
                      for size in head_sizes]

    @property
    def is_recurrent(self) -> bool:
        return False

    def initial_state(self, batch: int = 1) -> None:
        return None

    def forward(self, obs: Tensor, state=None
                ) -> Tuple[List[Categorical], None]:
        features = self.body(obs)
        dists = [Categorical(head(features)) for head in self.heads]
        return dists, None


def build_policy(kind: str, obs_dim: int, head_sizes: Sequence[int],
                 rng: Optional[np.random.Generator] = None,
                 hidden_size: int = 128) -> Module:
    """Factory used by the policy-network ablation (Table IX)."""
    if kind == "rnn":
        return RecurrentPolicy(obs_dim, head_sizes, hidden_size=hidden_size,
                               rng=rng)
    if kind == "mlp":
        return MLPPolicy(obs_dim, head_sizes, rng=rng)
    raise ValueError(f"unknown policy kind {kind!r} (use 'rnn' or 'mlp')")
