"""TD3 comparison agent (Fujimoto et al. 2018).

DDPG plus the three TD3 fixes: clipped double-Q (twin critics, min target),
target-policy smoothing noise, and delayed actor updates.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.env.environment import HWAssignmentEnv
from repro.nn.autograd import Tensor, no_grad
from repro.nn.functional import huber_loss
from repro.nn.modules import MLP
from repro.nn.optim import Adam
from repro.rl.offpolicy import OffPolicyAgent, QNetwork


class TD3(OffPolicyAgent):
    """Twin-delayed DDPG over the level box."""

    name = "td3"

    def __init__(self, noise_sigma: float = 0.2, target_noise: float = 0.2,
                 noise_clip: float = 0.5, policy_delay: int = 2,
                 **kwargs) -> None:
        super().__init__(**kwargs)
        if policy_delay < 1:
            raise ValueError("policy_delay must be >= 1")
        self.noise_sigma = noise_sigma
        self.target_noise = target_noise
        self.noise_clip = noise_clip
        self.policy_delay = policy_delay
        self._updates = 0

    def _build(self, env: HWAssignmentEnv) -> None:
        obs_dim = env.observation_dim

        def make_actor() -> MLP:
            return MLP([obs_dim, *self.hidden_sizes, self.action_dim],
                       activation="relu", output_activation="tanh",
                       rng=self.rng)

        self.actor = make_actor()
        self.actor_target = make_actor()
        self.actor_target.load_state_dict(self.actor.state_dict())
        self.critic1 = QNetwork(obs_dim, self.action_dim, self.hidden_sizes,
                                rng=self.rng)
        self.critic2 = QNetwork(obs_dim, self.action_dim, self.hidden_sizes,
                                rng=self.rng)
        self.critic1_target = QNetwork(obs_dim, self.action_dim,
                                       self.hidden_sizes, rng=self.rng)
        self.critic2_target = QNetwork(obs_dim, self.action_dim,
                                       self.hidden_sizes, rng=self.rng)
        self.critic1_target.load_state_dict(self.critic1.state_dict())
        self.critic2_target.load_state_dict(self.critic2.state_dict())
        self.actor_optimizer = Adam(self.actor.parameters(), lr=self.lr)
        self.critic_optimizer = Adam(
            self.critic1.parameters() + self.critic2.parameters(),
            lr=self.lr)

    def _act(self, observation: np.ndarray, explore: bool) -> np.ndarray:
        with no_grad():
            action = self.actor(
                Tensor(observation.reshape(1, -1))).numpy()[0]
        if explore:
            action = action + self.rng.normal(0.0, self.noise_sigma,
                                              size=action.shape)
        return np.clip(action, -1.0, 1.0)

    def _act_batch(self, observations: np.ndarray,
                   explore: bool) -> np.ndarray:
        with no_grad():
            actions = self.actor(Tensor(observations)).numpy()
        if explore:
            actions = actions + self.rng.normal(0.0, self.noise_sigma,
                                                size=actions.shape)
        return np.clip(actions, -1.0, 1.0)

    def _update(self) -> None:
        obs, actions, rewards, next_obs, dones = self._sample_batch()
        with no_grad():
            noise = np.clip(
                self.rng.normal(0.0, self.target_noise,
                                size=(self.batch_size, self.action_dim)),
                -self.noise_clip, self.noise_clip)
            next_actions = np.clip(
                self.actor_target(next_obs).numpy() + noise, -1.0, 1.0)
            next_actions = Tensor(next_actions)
            q1 = self.critic1_target(next_obs, next_actions).numpy()
            q2 = self.critic2_target(next_obs, next_actions).numpy()
            next_q = np.minimum(q1, q2).reshape(-1)
        targets = Tensor(rewards + self.discount * (1.0 - dones) * next_q)

        q1_values = self.critic1(obs, actions).reshape(self.batch_size)
        q2_values = self.critic2(obs, actions).reshape(self.batch_size)
        critic_loss = huber_loss(q1_values, targets) \
            + huber_loss(q2_values, targets)
        self.critic_optimizer.zero_grad()
        critic_loss.backward()
        self.critic_optimizer.step()

        self._updates += 1
        if self._updates % self.policy_delay == 0:
            actor_actions = self.actor(obs)
            actor_loss = -self.critic1(obs, actor_actions).mean()
            self.actor_optimizer.zero_grad()
            self.critic1.zero_grad()
            actor_loss.backward()
            self.actor_optimizer.step()
            self.critic1.zero_grad()
            self.actor_target.soft_update(self.actor, self.tau)
            self.critic1_target.soft_update(self.critic1, self.tau)
            self.critic2_target.soft_update(self.critic2, self.tau)

    def _memory_bytes(self) -> int:
        return 8 * 2 * (self.actor.num_parameters()
                        + self.critic1.num_parameters()
                        + self.critic2.num_parameters())
