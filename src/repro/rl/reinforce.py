"""REINFORCE -- the global-search stage of ConfuciuX (Section III).

Actor-only policy gradient: no critic approximates the (discrete, irregular)
HW-performance landscape; the policy learns directly from shaped rewards.
Per episode the agent samples one action pair per layer, the rewards are
turned into discounted (d = 0.9) returns, standardized, and the policy is
updated once -- the paper's "policy network gets updated at the end of each
epoch".
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.env.environment import HWAssignmentEnv
from repro.nn.autograd import Tensor
from repro.nn.optim import Adam, clip_grad_norm
from repro.rl.common import (
    SearchAlgorithm,
    SearchResult,
    drive_wave_sets,
    normalize_rewards_for_training,
)
from repro.rl.policies import build_policy


class Reinforce(SearchAlgorithm):
    """The Con'X(global) agent.

    Args:
        policy: "rnn" (the paper's LSTM-128) or "mlp" (Table IX ablation).
        lr: Adam learning rate.
        discount: Return discount; the paper found 0.9 a good default.
        entropy_coef: Exploration bonus weight.
        hidden_size: LSTM width.
        batch_episodes: Score each epoch's sampled episode through the
            batched estimator in one call -- the call an installed
            parallel backend shards across workers -- instead of one
            scalar cost-model call per layer step.  Bit-identical to the
            scalar path (rewards, RNG stream, results) and therefore on
            by default; envs whose termination rule needs full per-layer
            reports (power budgets) fall back to scalar stepping.
        seed: RNG seed for reproducible searches.
    """

    name = "reinforce"

    def __init__(self, policy: str = "rnn", lr: float = 3e-3,
                 discount: float = 0.9, entropy_coef: float = 0.01,
                 hidden_size: int = 128, max_grad_norm: float = 5.0,
                 batch_episodes: bool = True,
                 seed: Optional[int] = None) -> None:
        self.policy_kind = policy
        self.lr = lr
        self.discount = discount
        self.entropy_coef = entropy_coef
        self.hidden_size = hidden_size
        self.max_grad_norm = max_grad_norm
        self.batch_episodes = batch_episodes
        self.rng = np.random.default_rng(seed)
        self.policy = None
        self.optimizer = None

    # ------------------------------------------------------------------
    def _build(self, env: HWAssignmentEnv) -> None:
        self.policy = build_policy(
            self.policy_kind, env.observation_dim, env.space.head_sizes,
            rng=self.rng, hidden_size=self.hidden_size)
        self.optimizer = Adam(self.policy.parameters(), lr=self.lr)

    def _sample_step(self, observation, state):
        """Sample one action tuple from the policy.

        The single sampling implementation for both episode drivers: the
        planned path's bit-identical-RNG guarantee rests on the scalar
        and deferred loops consuming randomness through exactly this
        code.  Returns (action, summed log-prob, summed entropy, state).
        """
        obs_tensor = Tensor(observation.reshape(1, -1))
        dists, state = self.policy(obs_tensor, state)
        action = [int(d.sample(self.rng)[0]) for d in dists]
        step_logp = dists[0].log_prob([action[0]])
        step_entropy = dists[0].entropy()
        for head, dist in enumerate(dists[1:], start=1):
            step_logp = step_logp + dist.log_prob([action[head]])
            step_entropy = step_entropy + dist.entropy()
        return action, step_logp, step_entropy, state

    def run_episode(self, env: HWAssignmentEnv):
        """Roll out one episode keeping the autograd graph alive.

        Returns (log_prob tensors, entropy tensors, rewards, episode info).
        """
        observation = env.reset()
        state = self.policy.initial_state()
        log_probs: List[Tensor] = []
        entropies: List[Tensor] = []
        rewards: List[float] = []
        episode = None
        done = False
        while not done:
            action, step_logp, step_entropy, state = self._sample_step(
                observation, state)
            observation, reward, done, info = env.step(action)
            log_probs.append(step_logp)
            entropies.append(step_entropy)
            rewards.append(reward)
            episode = info["episode"]
        return log_probs, entropies, rewards, episode

    def run_episode_planned(self, env: HWAssignmentEnv):
        """Roll out one episode with deferred batched scoring.

        Sampling is step-by-step (the LSTM is sequential and termination
        must be exact -- see ``HWAssignmentEnv.plan_supported``), but no
        cost-model call happens until ``commit``, which scores the whole
        epoch as one batched -- and, with a parallel backend installed,
        sharded -- evaluation.  Observations, sampled actions, rewards,
        and the RNG stream are bit-identical to :meth:`run_episode`.
        """
        observation = env.reset()
        plan = env.begin_plan()
        state = self.policy.initial_state()
        log_probs: List[Tensor] = []
        entropies: List[Tensor] = []
        done = False
        while not done:
            action, step_logp, step_entropy, state = self._sample_step(
                observation, state)
            observation, done = plan.step(action)
            log_probs.append(step_logp)
            entropies.append(step_entropy)
        rewards, episode = plan.commit()
        return log_probs, entropies, rewards, episode

    def run_wave(self, venv, episodes: int):
        """Roll ``episodes`` lockstep episodes through a vector env.

        One policy forward (and one batched action draw per head) serves
        the whole wave, and the env scores the wave's layers in one
        batched cost call.  The LSTM state is row-compacted as episodes
        finish.  Returns one ``(log_probs, entropies, rewards)`` triple
        per episode, where the tensors are single-row views into the
        wave graph -- for one episode the values, rewards, and RNG
        stream are bit-identical to :meth:`run_episode`.

        Waves are double-buffered when the env supports ``step_async``:
        wave ``t``'s batched cost call stays in flight while wave
        ``t+1``'s policy forward (and action sampling) runs, joined
        before the next wave is issued -- bit-identical to plain
        stepping (see ``rollout_waves``).
        """
        observations = venv.reset(episodes)
        state = self.policy.initial_state(batch=episodes)
        per_episode = [([], [], []) for _ in range(episodes)]
        step_async = getattr(venv, "step_async", None)
        pending = None

        def flush(pending) -> None:
            live, step_logp, step_entropy, handle = pending
            _, rewards, _, _ = venv.step_wait(handle)
            reward_list = rewards.tolist()
            for row, episode in enumerate(live.tolist()):
                log_probs, entropies, episode_rewards = per_episode[episode]
                log_probs.append(step_logp[[row]])
                entropies.append(step_entropy[[row]])
                episode_rewards.append(reward_list[row])

        while not venv.all_done:
            live = venv.live_indices
            dists, state = self.policy(Tensor(observations), state)
            actions = np.stack([d.sample(self.rng) for d in dists], axis=1)
            step_logp = dists[0].log_prob(actions[:, 0])
            step_entropy = dists[0].entropy()
            for head, dist in enumerate(dists[1:], start=1):
                step_logp = step_logp + dist.log_prob(actions[:, head])
                step_entropy = step_entropy + dist.entropy()
            if step_async is None:
                observations, rewards, dones, _ = venv.step(actions)
                reward_list = rewards.tolist()
                for row, episode in enumerate(live.tolist()):
                    (log_probs, entropies,
                     episode_rewards) = per_episode[episode]
                    log_probs.append(step_logp[[row]])
                    entropies.append(step_entropy[[row]])
                    episode_rewards.append(reward_list[row])
            else:
                if pending is not None:
                    flush(pending)
                handle = step_async(actions)
                pending = (live, step_logp, step_entropy, handle)
                observations, dones = handle.observations, handle.dones
            keep = ~dones
            observations = observations[keep]
            if state is not None and not keep.all():
                state = (state[0][keep], state[1][keep])
        if pending is not None:
            flush(pending)
        return per_episode

    def _episode_loss(self, log_probs: List[Tensor],
                      entropies: List[Tensor],
                      rewards: List[float]) -> Tensor:
        """The REINFORCE loss of one episode (kept as a tensor)."""
        returns = normalize_rewards_for_training(rewards, self.discount)
        loss = None
        for log_prob, entropy, g in zip(log_probs, entropies, returns):
            term = log_prob * float(g) + entropy * self.entropy_coef
            loss = term if loss is None else loss + term
        return -loss.sum() * (1.0 / max(len(rewards), 1))

    def _apply_loss(self, loss: Tensor) -> float:
        self.optimizer.zero_grad()
        loss.backward()
        clip_grad_norm(self.optimizer.parameters, self.max_grad_norm)
        self.optimizer.step()
        return loss.item()

    def update(self, log_probs: List[Tensor], entropies: List[Tensor],
               rewards: List[float]) -> float:
        """One policy-gradient step; returns the scalar loss."""
        return self._apply_loss(
            self._episode_loss(log_probs, entropies, rewards))

    def update_wave(self, per_episode) -> float:
        """One policy-gradient step over a wave of episodes.

        The wave's episodes form one minibatch -- the mean of the
        per-episode losses, the standard vectorized-REINFORCE estimator
        (the per-step tensors share one wave graph, which supports a
        single backward).  For a one-episode wave this is exactly
        :meth:`update`.
        """
        losses = [self._episode_loss(*logs) for logs in per_episode]
        loss = losses[0]
        for other in losses[1:]:
            loss = loss + other
        if len(losses) > 1:
            loss = loss * (1.0 / len(losses))
        return self._apply_loss(loss)

    # ------------------------------------------------------------------
    def search(self, env: HWAssignmentEnv, epochs: int) -> SearchResult:
        """Train for ``epochs`` episodes; track the best feasible design."""
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        result, started = self._start(self.name)
        if self.policy is None:
            self._build(env)
        if getattr(env, "is_vector", False):
            drive_wave_sets(
                env, epochs, result,
                lambda episodes: self.update_wave(
                    self.run_wave(env, episodes)))
        else:
            planned = self.batch_episodes and env.plan_supported()
            episode_fn = (self.run_episode_planned if planned
                          else self.run_episode)
            for _ in range(epochs):
                log_probs, entropies, rewards, _ = episode_fn(env)
                self.update(log_probs, entropies, rewards)
                result.record(env.best.cost if env.best else None)
        self._finalize(result, env, started)
        result.memory_bytes = 8 * self.policy.num_parameters()
        return result
