"""Shared machinery for the continuous off-policy agents (DDPG/TD3/SAC).

The HW-assignment action space is discrete (Table-I levels), so the
continuous agents act in the box [-1, 1]^d -- d = 2, or 3 under MIX -- and
the environment adapter snaps each coordinate onto the nearest level, the
standard discretization the paper uses when comparing against continuous
methods ("DDPG, SAC, and TD3 in continuous space").
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.env.environment import HWAssignmentEnv
from repro.nn.autograd import Tensor, no_grad
from repro.nn.modules import MLP, Module
from repro.rl.common import (
    ReplayBuffer,
    SearchAlgorithm,
    SearchResult,
    drive_wave_sets,
)


def continuous_to_levels(action: np.ndarray,
                         head_sizes: Tuple[int, ...]) -> List[int]:
    """Map a point in [-1, 1]^d onto per-head level indices."""
    levels = []
    for coordinate, size in zip(action, head_sizes):
        fraction = (float(np.clip(coordinate, -1.0, 1.0)) + 1.0) / 2.0
        levels.append(int(round(fraction * (size - 1))))
    return levels


def continuous_to_levels_batch(actions: np.ndarray,
                               head_sizes: Tuple[int, ...]) -> np.ndarray:
    """Vectorized :func:`continuous_to_levels` over an ``(E, d)`` batch.

    ``np.rint`` matches Python's round-half-even, so every row is
    bit-identical to the scalar mapping.
    """
    fractions = (np.clip(actions, -1.0, 1.0) + 1.0) / 2.0
    sizes = np.asarray(head_sizes, dtype=np.float64) - 1.0
    return np.rint(fractions * sizes).astype(np.int64)


class QNetwork(Module):
    """State-action value network Q(s, a)."""

    def __init__(self, obs_dim: int, action_dim: int,
                 hidden_sizes=(64, 64),
                 rng: Optional[np.random.Generator] = None) -> None:
        self.net = MLP([obs_dim + action_dim, *hidden_sizes, 1],
                       activation="relu", rng=rng)

    def forward(self, obs: Tensor, action: Tensor) -> Tensor:
        return self.net(Tensor.concat([obs, action], axis=-1))


class OffPolicyAgent(SearchAlgorithm):
    """Base loop: act, store, and update once per environment step."""

    name = "offpolicy"

    def __init__(self, lr: float = 1e-3, discount: float = 0.9,
                 tau: float = 0.01, batch_size: int = 64,
                 warmup_steps: int = 256, buffer_capacity: int = 50_000,
                 hidden_sizes=(64, 64), updates_per_step: int = 1,
                 seed: Optional[int] = None) -> None:
        self.lr = lr
        self.discount = discount
        self.tau = tau
        self.batch_size = batch_size
        self.warmup_steps = warmup_steps
        self.buffer_capacity = buffer_capacity
        self.hidden_sizes = tuple(hidden_sizes)
        self.updates_per_step = updates_per_step
        self.rng = np.random.default_rng(seed)
        self.buffer: Optional[ReplayBuffer] = None
        self.action_dim = 0
        self._total_steps = 0

    # Subclass interface ------------------------------------------------
    def _build(self, env: HWAssignmentEnv) -> None:
        raise NotImplementedError

    def _act(self, observation: np.ndarray, explore: bool) -> np.ndarray:
        raise NotImplementedError

    def _act_batch(self, observations: np.ndarray,
                   explore: bool) -> np.ndarray:
        """Batched :meth:`_act` over an ``(E, obs_dim)`` wave (one policy
        forward, one batched noise draw); bit-identical per row for a
        one-row batch."""
        raise NotImplementedError

    def _update(self) -> None:
        raise NotImplementedError

    def _memory_bytes(self) -> int:
        raise NotImplementedError

    # Shared loops ------------------------------------------------------
    def _wave_actions(self, observations: np.ndarray) -> np.ndarray:
        """Actions for one lockstep wave, honoring the warmup schedule.

        The warmup budget is spent in episode-index order within the
        wave: the leading rows still inside it draw uniform box actions
        (one batched draw), the rest act through the policy (one batched
        forward + noise draw) -- for one live episode this is exactly the
        scalar per-step rule.
        """
        live = len(observations)
        warmup_rows = int(np.clip(self.warmup_steps - self._total_steps,
                                  0, live))
        actions = np.empty((live, self.action_dim))
        if warmup_rows:
            actions[:warmup_rows] = self.rng.uniform(
                -1.0, 1.0, (warmup_rows, self.action_dim))
        if warmup_rows < live:
            actions[warmup_rows:] = self._act_batch(
                observations[warmup_rows:], explore=True)
        return actions

    def _run_wave_set(self, venv, episodes: int) -> None:
        """One lockstep wave set: per wave, one batched act, one batched
        env step (a single cost-model call), one transition append per
        live episode, and -- past warmup -- one replay update per
        transition, mirroring the scalar loop's one-update-per-step
        cadence."""
        head_sizes = venv.space.head_sizes
        observations = venv.reset(episodes)
        while not venv.all_done:
            actions = self._wave_actions(observations)
            levels = continuous_to_levels_batch(actions, head_sizes)
            next_observations, rewards, dones, _ = venv.step(levels)
            live = len(levels)
            for row in range(live):
                self.buffer.add(observations[row], actions[row],
                                rewards[row], next_observations[row],
                                dones[row])
            self._total_steps += live
            if (self._total_steps >= self.warmup_steps
                    and len(self.buffer) >= self.batch_size):
                for _ in range(live * self.updates_per_step):
                    self._update()
            observations = next_observations[~dones]

    def search(self, env: HWAssignmentEnv, epochs: int) -> SearchResult:
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        result, started = self._start(self.name)
        if self.buffer is None:
            self.action_dim = len(env.space.head_sizes)
            self.buffer = ReplayBuffer(self.buffer_capacity,
                                       env.observation_dim, self.action_dim)
            self._build(env)
        if getattr(env, "is_vector", False):
            drive_wave_sets(
                env, epochs, result,
                lambda episodes: self._run_wave_set(env, episodes))
        else:
            head_sizes = env.space.head_sizes
            for _ in range(epochs):
                observation = env.reset()
                done = False
                while not done:
                    if self._total_steps < self.warmup_steps:
                        action = self.rng.uniform(-1.0, 1.0,
                                                  self.action_dim)
                    else:
                        action = self._act(observation, explore=True)
                    levels = continuous_to_levels(action, head_sizes)
                    next_observation, reward, done, _ = env.step(levels)
                    self.buffer.add(observation, action, reward,
                                    next_observation, done)
                    observation = next_observation
                    self._total_steps += 1
                    if (self._total_steps >= self.warmup_steps
                            and len(self.buffer) >= self.batch_size):
                        for _ in range(self.updates_per_step):
                            self._update()
                result.record(env.best.cost if env.best else None)
        self._finalize(result, env, started)
        result.memory_bytes = self._memory_bytes()
        # Replay buffer dominates the paper's memory-overhead row.
        result.memory_bytes += self.buffer.obs.nbytes * 2 \
            + self.buffer.actions.nbytes + self.buffer.rewards.nbytes \
            + self.buffer.dones.nbytes
        return result

    def _sample_batch(self):
        obs, actions, rewards, next_obs, dones = self.buffer.sample(
            self.batch_size, self.rng)
        return (Tensor(obs), Tensor(actions), rewards, Tensor(next_obs),
                dones)
