"""ACKTR comparison agent (Wu et al. 2017).

The reference algorithm preconditions gradients with a Kronecker-factored
approximation of the Fisher information matrix (K-FAC).  A full K-FAC is a
framework in itself; this reproduction follows the common lightweight
approximation -- a *diagonal* Fisher estimate maintained as a running
average of squared policy gradients, used to precondition the update, with
a trust-region step-size clamp.  That captures ACKTR's two behavioural
signatures relative to A2C (curvature-scaled per-parameter steps and a KL
trust region) at a fraction of the machinery; the substitution is recorded
in DESIGN.md.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.rl.a2c import A2C


class ACKTR(A2C):
    """A2C with diagonal-Fisher preconditioning and a trust-region clamp."""

    name = "acktr"

    def __init__(self, lr: float = 0.05, discount: float = 0.9,
                 entropy_coef: float = 0.01, value_coef: float = 0.5,
                 max_grad_norm: float = 5.0, fisher_decay: float = 0.99,
                 trust_region: float = 0.01, damping: float = 1e-2,
                 seed: Optional[int] = None) -> None:
        super().__init__(lr=lr, discount=discount, entropy_coef=entropy_coef,
                         value_coef=value_coef, max_grad_norm=max_grad_norm,
                         seed=seed)
        if not 0.0 < fisher_decay < 1.0:
            raise ValueError("fisher_decay must be in (0, 1)")
        self.fisher_decay = fisher_decay
        self.trust_region = trust_region
        self.damping = damping
        self._fisher = None

    def _precondition(self) -> None:
        """Scale gradients by the inverse diagonal Fisher, then clamp the
        step so the (approximate) KL change stays inside the trust region."""
        parameters = self.optimizer.parameters
        if self._fisher is None:
            self._fisher = [np.zeros_like(p.data) for p in parameters]
        # Update the running Fisher estimate from the raw gradients.
        for fisher, parameter in zip(self._fisher, parameters):
            if parameter.grad is None:
                continue
            fisher *= self.fisher_decay
            fisher += (1.0 - self.fisher_decay) * parameter.grad ** 2
        # Natural-gradient direction: F^{-1} g (diagonal approximation).
        quadratic = 0.0
        for fisher, parameter in zip(self._fisher, parameters):
            if parameter.grad is None:
                continue
            natural = parameter.grad / (fisher + self.damping)
            quadratic += float(np.sum(natural * parameter.grad))
            parameter.grad = natural
        # Trust region: eta = min(1, sqrt(2 * delta / (g^T F^{-1} g))).
        if quadratic > 0:
            eta = min(1.0, np.sqrt(2.0 * self.trust_region / quadratic))
            for parameter in parameters:
                if parameter.grad is not None:
                    parameter.grad *= eta
