"""PPO2 comparison agent (Schulman et al. 2017).

Clipped-surrogate proximal policy optimization with an MLP policy: the
strongest of the Table-V comparison agents in the paper.  Each epoch
collects one episode, computes standardized discounted returns and
advantages against an MLP value function, then performs several
minibatched update passes with the probability-ratio clip.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.env.environment import HWAssignmentEnv
from repro.nn.autograd import Tensor, no_grad
from repro.nn.functional import mse_loss
from repro.nn.modules import MLP
from repro.nn.optim import Adam, clip_grad_norm
from repro.rl.common import (
    SearchAlgorithm,
    SearchResult,
    discounted_returns,
    drive_wave_sets,
    rollout_waves,
    standardize,
    waves_to_trajectories,
)
from repro.rl.policies import MLPPolicy


class PPO2(SearchAlgorithm):
    """Clipped-surrogate PPO with an MLP actor and critic."""

    name = "ppo2"

    def __init__(self, lr: float = 3e-3, discount: float = 0.9,
                 clip_ratio: float = 0.2, update_epochs: int = 4,
                 minibatch_size: int = 32, entropy_coef: float = 0.01,
                 value_coef: float = 0.5, max_grad_norm: float = 5.0,
                 hidden_sizes=(64, 64), seed: Optional[int] = None) -> None:
        if not 0.0 < clip_ratio < 1.0:
            raise ValueError("clip_ratio must be in (0, 1)")
        self.lr = lr
        self.discount = discount
        self.clip_ratio = clip_ratio
        self.update_epochs = update_epochs
        self.minibatch_size = minibatch_size
        self.entropy_coef = entropy_coef
        self.value_coef = value_coef
        self.max_grad_norm = max_grad_norm
        self.hidden_sizes = tuple(hidden_sizes)
        self.rng = np.random.default_rng(seed)
        self.policy: Optional[MLPPolicy] = None
        self.critic: Optional[MLP] = None
        self.optimizer: Optional[Adam] = None

    def _build(self, env: HWAssignmentEnv) -> None:
        self.policy = MLPPolicy(env.observation_dim, env.space.head_sizes,
                                hidden_sizes=self.hidden_sizes, rng=self.rng)
        self.critic = MLP([env.observation_dim, *self.hidden_sizes, 1],
                          rng=self.rng)
        self.optimizer = Adam(
            self.policy.parameters() + self.critic.parameters(), lr=self.lr)

    def _collect(self, env: HWAssignmentEnv):
        observation = env.reset()
        observations: List[np.ndarray] = []
        actions: List[List[int]] = []
        rewards: List[float] = []
        old_log_probs: List[float] = []
        done = False
        while not done:
            with no_grad():
                dists, _ = self.policy(Tensor(observation.reshape(1, -1)),
                                       None)
                action = [int(d.sample(self.rng)[0]) for d in dists]
                logp = sum(
                    float(d.log_prob([action[i]]).numpy()[0])
                    for i, d in enumerate(dists)
                )
            observations.append(observation)
            actions.append(action)
            old_log_probs.append(logp)
            observation, reward, done, _ = env.step(action)
            rewards.append(reward)
        return (np.array(observations), actions, rewards,
                np.array(old_log_probs))

    def _act_wave(self, observations: np.ndarray):
        """Batched action sampling plus behavior log-probs for a wave."""
        with no_grad():
            dists, _ = self.policy(Tensor(observations), None)
            actions = np.stack([d.sample(self.rng) for d in dists], axis=1)
            log_probs = None
            for head, dist in enumerate(dists):
                head_logp = dist.log_prob(actions[:, head]).numpy()
                log_probs = head_logp if log_probs is None \
                    else log_probs + head_logp
        return actions, log_probs

    def _collect_vector(self, venv, episodes: int):
        """Lockstep episode collection (one cost batch per wave); each
        trajectory additionally carries its behavior log-probabilities.
        Bit-identical to :meth:`_collect` for a single episode."""
        waves = rollout_waves(venv, episodes, self._act_wave)
        trajectories = waves_to_trajectories(waves, episodes)
        collected = []
        for trajectory in trajectories:
            old_log_probs = np.array([
                float(waves[wave].extras[row])
                for wave, row in trajectory.rows])
            collected.append((np.array(trajectory.observations),
                              trajectory.actions, trajectory.rewards,
                              old_log_probs))
        return collected

    def _surrogate_loss(self, observations, actions, old_log_probs,
                        advantages, returns) -> Tensor:
        obs_tensor = Tensor(observations)
        dists, _ = self.policy(obs_tensor, None)
        log_probs = None
        entropies = None
        for head, dist in enumerate(dists):
            head_actions = [a[head] for a in actions]
            logp = dist.log_prob(head_actions)
            ent = dist.entropy()
            log_probs = logp if log_probs is None else log_probs + logp
            entropies = ent if entropies is None else entropies + ent
        ratio = (log_probs - Tensor(old_log_probs)).exp()
        adv = Tensor(advantages)
        unclipped = ratio * adv
        clipped = ratio.clip(1.0 - self.clip_ratio,
                             1.0 + self.clip_ratio) * adv
        # min(a, b) = b + (a - b).clip(-inf side): compose via elementwise
        # minimum using the identity min(a,b) = 0.5*(a+b-|a-b|).
        diff = unclipped - clipped
        surrogate = 0.5 * (unclipped + clipped - diff.abs())
        values = self.critic(obs_tensor).reshape(len(actions))
        value_loss = mse_loss(values, Tensor(returns))
        return (-surrogate.mean()
                + self.value_coef * value_loss
                - self.entropy_coef * entropies.mean())

    def update(self, observations, actions, rewards, old_log_probs) -> float:
        """Clipped-surrogate passes over a single collected episode."""
        returns = standardize(discounted_returns(rewards, self.discount))
        with no_grad():
            values = self.critic(Tensor(observations)).numpy().reshape(-1)
        advantages = standardize(returns - values)
        return self._update_passes(observations, actions, old_log_probs,
                                   advantages, returns)

    def update_wave(self, collected) -> float:
        """Clipped-surrogate passes over a wave of lockstep episodes.

        The wave is the rollout batch -- the standard vectorized-PPO
        convention: returns and advantages are computed (and
        standardized) per episode exactly as the scalar rule does, then
        concatenated so the minibatched update passes shuffle across the
        whole wave.  For a one-episode wave this is exactly
        :meth:`update`.
        """
        observations = np.concatenate([c[0] for c in collected])
        actions = [action for c in collected for action in c[1]]
        old_log_probs = np.concatenate([c[3] for c in collected])
        returns = np.concatenate(
            [standardize(discounted_returns(c[2], self.discount))
             for c in collected])
        with no_grad():
            values = self.critic(Tensor(observations)).numpy().reshape(-1)
        advantages = np.empty_like(returns)
        offset = 0
        for c in collected:
            steps = len(c[2])
            chunk = slice(offset, offset + steps)
            advantages[chunk] = standardize(returns[chunk] - values[chunk])
            offset += steps
        return self._update_passes(observations, actions, old_log_probs,
                                   advantages, returns)

    def _update_passes(self, observations, actions, old_log_probs,
                       advantages, returns) -> float:
        count = len(actions)
        last_loss = 0.0
        for _ in range(self.update_epochs):
            order = self.rng.permutation(count)
            for start in range(0, count, self.minibatch_size):
                batch = order[start:start + self.minibatch_size]
                loss = self._surrogate_loss(
                    observations[batch],
                    [actions[i] for i in batch],
                    old_log_probs[batch],
                    advantages[batch],
                    returns[batch],
                )
                self.optimizer.zero_grad()
                loss.backward()
                clip_grad_norm(self.optimizer.parameters, self.max_grad_norm)
                self.optimizer.step()
                last_loss = loss.item()
        return last_loss

    def search(self, env: HWAssignmentEnv, epochs: int) -> SearchResult:
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        result, started = self._start(self.name)
        if self.policy is None:
            self._build(env)
        if getattr(env, "is_vector", False):
            drive_wave_sets(
                env, epochs, result,
                lambda episodes: self.update_wave(
                    self._collect_vector(env, episodes)))
        else:
            for _ in range(epochs):
                observations, actions, rewards, old_log_probs = \
                    self._collect(env)
                self.update(observations, actions, rewards, old_log_probs)
                result.record(env.best.cost if env.best else None)
        self._finalize(result, env, started)
        result.memory_bytes = 8 * (self.policy.num_parameters()
                                   + self.critic.num_parameters())
        return result
