"""Shared search-algorithm interface and return-processing utilities.

Every search method in this repository -- the seven RL agents and the five
classic optimizers -- implements :class:`SearchAlgorithm` and produces a
:class:`SearchResult`, so the comparison tables (III, IV, V) are generated
by one harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.env.environment import EpisodeResult, HWAssignmentEnv


@dataclass
class SearchResult:
    """Outcome of one search run.

    ``best_cost`` is ``None`` when no feasible design point was found within
    the epoch budget -- rendered as "NAN" in the paper's tables.
    """

    algorithm: str
    best_cost: Optional[float] = None
    best_assignments: Optional[Tuple] = None
    best_genome: Optional[List[int]] = None
    history: List[float] = field(default_factory=list)
    evaluations: int = 0
    #: Fitness lookups served from a search-local memo instead of the
    #: estimator (currently populated by the stage-2 local GA).
    cache_hits: int = 0
    episodes: int = 0
    wall_time_s: float = 0.0
    memory_bytes: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def feasible(self) -> bool:
        return self.best_cost is not None

    def record(self, best_so_far: Optional[float]) -> None:
        """Append one epoch's best-so-far cost to the convergence trace."""
        self.history.append(
            float("inf") if best_so_far is None else best_so_far)

    def epochs_to_reach(self, target: float) -> Optional[int]:
        """First epoch whose best-so-far cost is <= target (sample
        efficiency metric of Table V / Fig. 7)."""
        for epoch, value in enumerate(self.history):
            if value <= target:
                return epoch
        return None

    def format_cost(self) -> str:
        """Table rendering: scientific notation, or NAN when infeasible."""
        return "NAN" if self.best_cost is None else f"{self.best_cost:.1E}"


class SearchAlgorithm:
    """Interface: mutate internal state while driving an environment."""

    name = "base"

    def search(self, env: HWAssignmentEnv, epochs: int) -> SearchResult:
        """Run for ``epochs`` episodes and return the search outcome."""
        raise NotImplementedError

    # Helpers shared by the RL agents ----------------------------------
    @staticmethod
    def _start(name: str) -> Tuple[SearchResult, float]:
        return SearchResult(algorithm=name), time.perf_counter()

    @staticmethod
    def _finalize(result: SearchResult, env: HWAssignmentEnv,
                  started: float) -> SearchResult:
        result.wall_time_s = time.perf_counter() - started
        result.evaluations = env.evaluations
        result.episodes = env.episodes
        if env.best is not None:
            result.best_cost = env.best.cost
            result.best_assignments = env.best.assignments
            result.best_genome = env.best.genome
        return result


def discounted_returns(rewards: Sequence[float],
                       discount: float) -> np.ndarray:
    """G_t = sum_k d^k r_{t+k} computed backward over one episode."""
    if not 0.0 <= discount <= 1.0:
        raise ValueError("discount must be in [0, 1]")
    returns = np.zeros(len(rewards), dtype=np.float64)
    running = 0.0
    for t in range(len(rewards) - 1, -1, -1):
        running = rewards[t] + discount * running
        returns[t] = running
    return returns


def standardize(values: np.ndarray, eps: float = 1e-8) -> np.ndarray:
    """Zero-mean unit-variance normalization (the paper standardizes the
    per-step rewards before training, Section III-E)."""
    values = np.asarray(values, dtype=np.float64)
    std = values.std()
    if std < eps:
        return values - values.mean()
    return (values - values.mean()) / std


class ReplayBuffer:
    """Uniform-sampling transition store for the off-policy agents."""

    def __init__(self, capacity: int, obs_dim: int, action_dim: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.obs = np.zeros((capacity, obs_dim))
        self.actions = np.zeros((capacity, action_dim))
        self.rewards = np.zeros(capacity)
        self.next_obs = np.zeros((capacity, obs_dim))
        self.dones = np.zeros(capacity)
        self._next = 0
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def add(self, obs, action, reward, next_obs, done) -> None:
        index = self._next
        self.obs[index] = obs
        self.actions[index] = action
        self.rewards[index] = reward
        self.next_obs[index] = next_obs
        self.dones[index] = float(done)
        self._next = (self._next + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def sample(self, batch_size: int, rng: np.random.Generator):
        if self._size == 0:
            raise RuntimeError("cannot sample from an empty buffer")
        indices = rng.integers(0, self._size, size=batch_size)
        return (
            self.obs[indices],
            self.actions[indices],
            self.rewards[indices],
            self.next_obs[indices],
            self.dones[indices],
        )


def normalize_rewards_for_training(rewards: Sequence[float],
                                   discount: float) -> np.ndarray:
    """The paper's pipeline: discounted returns, then standardization."""
    return standardize(discounted_returns(rewards, discount))


# ----------------------------------------------------------------------
# Lockstep (vectorized) rollout collection
# ----------------------------------------------------------------------
@dataclass
class WaveStep:
    """One lockstep wave of a vector-env rollout.

    All arrays are row-aligned with ``live`` -- the episode index each row
    acted for.  ``extras`` is an agent-defined per-row payload (PPO's
    behavior log-probabilities, for example) or ``None``.
    """

    live: np.ndarray
    observations: np.ndarray
    actions: np.ndarray
    rewards: np.ndarray
    dones: np.ndarray
    extras: object = None


@dataclass
class Trajectory:
    """One episode's slice of a wave rollout, in scalar-step order.

    ``rows`` holds ``(wave_index, row)`` pairs locating this episode in
    each :class:`WaveStep`, so agents can gather per-step extras (or
    autograd tensors) without copying them through the assembly.
    """

    observations: List[np.ndarray] = field(default_factory=list)
    actions: List[List[int]] = field(default_factory=list)
    rewards: List[float] = field(default_factory=list)
    rows: List[Tuple[int, int]] = field(default_factory=list)


def drive_wave_sets(venv, epochs: int, result: SearchResult,
                    run_wave_set) -> None:
    """The shared vector-rollout driver every episodic agent uses.

    Splits an ``epochs`` episode budget into wave sets of at most
    ``venv.num_envs`` lockstep episodes (the last set shrinks so the
    budget is spent exactly), hands each set to
    ``run_wave_set(episodes)`` -- the agent's collect-and-update step --
    and records one best-so-far history entry per episode, keeping the
    convergence-trace length equal to the scalar loop's.
    """
    remaining = epochs
    while remaining:
        episodes = min(venv.num_envs, remaining)
        run_wave_set(episodes)
        for _ in range(episodes):
            result.record(venv.best.cost if venv.best else None)
        remaining -= episodes


def rollout_waves(venv, episodes: int, act) -> List[WaveStep]:
    """Roll ``episodes`` lockstep episodes through a vector env.

    ``act(observations) -> (actions, extras)`` maps the live episodes'
    observation matrix to an ``(L, heads)`` action matrix (one batched
    policy forward per wave) plus an optional row-aligned payload.
    Randomness is consumed wave-major: one batched draw per action head
    per wave, row ``e`` belonging to episode ``live[e]`` -- the vector
    RNG contract (see API.md).

    Waves are double-buffered when the env supports ``step_async``:
    wave ``t``'s batched cost call (sharded across a parallel executor
    when one is installed) stays in flight while wave ``t+1``'s policy
    forward runs, and is joined before the next wave is issued.  Env
    mutations stay strictly ordered and the agent RNG stream is
    untouched, so the rollout is bit-identical to plain stepping.
    """
    observations = venv.reset(episodes)
    waves: List[WaveStep] = []
    step_async = getattr(venv, "step_async", None)
    if step_async is None:
        while not venv.all_done:
            live = venv.live_indices
            actions, extras = act(observations)
            next_observations, rewards, dones, _ = venv.step(actions)
            waves.append(WaveStep(live=live, observations=observations,
                                  actions=actions, rewards=rewards,
                                  dones=dones, extras=extras))
            observations = next_observations[~dones]
        return waves
    pending = None
    while not venv.all_done:
        live = venv.live_indices
        actions, extras = act(observations)  # overlaps the in-flight wave
        if pending is not None:
            _collect_wave(venv, waves, pending)
        handle = step_async(actions)
        pending = (live, observations, actions, extras, handle)
        observations = handle.observations[~handle.dones]
    if pending is not None:
        _collect_wave(venv, waves, pending)
    return waves


def _collect_wave(venv, waves: List[WaveStep], pending) -> None:
    """Join one in-flight wave and append its :class:`WaveStep`."""
    live, observations, actions, extras, handle = pending
    _, rewards, dones, _ = venv.step_wait(handle)
    waves.append(WaveStep(live=live, observations=observations,
                          actions=actions, rewards=rewards,
                          dones=dones, extras=extras))


def waves_to_trajectories(waves: Sequence[WaveStep],
                          episodes: int) -> List[Trajectory]:
    """Transpose a wave-major rollout into per-episode trajectories.

    Each trajectory's observations / actions / rewards are exactly what a
    scalar rollout of that episode would have collected.
    """
    trajectories = [Trajectory() for _ in range(episodes)]
    for wave_index, wave in enumerate(waves):
        rewards = wave.rewards.tolist()
        for row, episode in enumerate(wave.live.tolist()):
            trajectory = trajectories[episode]
            trajectory.observations.append(wave.observations[row])
            trajectory.actions.append(
                [int(a) for a in wave.actions[row]])
            trajectory.rewards.append(rewards[row])
            trajectory.rows.append((wave_index, row))
    return trajectories
