"""A2C (advantage actor-critic), one of the Table-V comparison agents.

Synchronous actor-critic with an MLP policy (the comparison agents use the
frameworks' default feed-forward architecture).  A value network regresses
the discounted return; advantages are returns minus values.  The paper's
Section IV-C3 argues -- and Fig. 6 demonstrates -- that the critic struggles
on the discrete, irregular HW-performance landscape, which is why ConfuciuX
itself is actor-only.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.env.environment import HWAssignmentEnv
from repro.nn.autograd import Tensor, no_grad
from repro.nn.functional import mse_loss
from repro.nn.modules import MLP
from repro.nn.optim import Adam, clip_grad_norm
from repro.rl.common import (
    SearchAlgorithm,
    SearchResult,
    discounted_returns,
    drive_wave_sets,
    rollout_waves,
    standardize,
    waves_to_trajectories,
)
from repro.rl.policies import MLPPolicy


class A2C(SearchAlgorithm):
    """Advantage actor-critic with an MLP policy and MLP value function."""

    name = "a2c"

    def __init__(self, lr: float = 3e-3, discount: float = 0.9,
                 entropy_coef: float = 0.01, value_coef: float = 0.5,
                 max_grad_norm: float = 5.0,
                 hidden_sizes=(64, 64), seed: Optional[int] = None) -> None:
        self.lr = lr
        self.discount = discount
        self.entropy_coef = entropy_coef
        self.value_coef = value_coef
        self.max_grad_norm = max_grad_norm
        self.hidden_sizes = tuple(hidden_sizes)
        self.rng = np.random.default_rng(seed)
        self.policy: Optional[MLPPolicy] = None
        self.critic: Optional[MLP] = None
        self.optimizer: Optional[Adam] = None

    def _build(self, env: HWAssignmentEnv) -> None:
        self.policy = MLPPolicy(env.observation_dim, env.space.head_sizes,
                                hidden_sizes=self.hidden_sizes, rng=self.rng)
        self.critic = MLP([env.observation_dim, *self.hidden_sizes, 1],
                          rng=self.rng)
        self.optimizer = Adam(
            self.policy.parameters() + self.critic.parameters(), lr=self.lr)

    def _collect(self, env: HWAssignmentEnv):
        """Sample one episode without gradients; return arrays."""
        observation = env.reset()
        observations: List[np.ndarray] = []
        actions: List[List[int]] = []
        rewards: List[float] = []
        done = False
        while not done:
            obs_tensor = Tensor(observation.reshape(1, -1))
            dists, _ = self.policy(obs_tensor, None)
            action = [int(d.sample(self.rng)[0]) for d in dists]
            observations.append(observation)
            actions.append(action)
            observation, reward, done, _ = env.step(action)
            rewards.append(reward)
        return np.array(observations), actions, rewards

    def _act_wave(self, observations: np.ndarray):
        """One batched policy forward for a whole lockstep wave (no
        graph: the update recomputes its own forward)."""
        with no_grad():
            dists, _ = self.policy(Tensor(observations), None)
            actions = np.stack([d.sample(self.rng) for d in dists], axis=1)
        return actions, None

    def _collect_vector(self, venv, episodes: int):
        """Sample ``episodes`` lockstep episodes; one cost-model batch
        and one policy forward per wave.  For a single episode the
        sampled actions, rewards, and RNG stream are bit-identical to
        :meth:`_collect`."""
        waves = rollout_waves(venv, episodes, self._act_wave)
        return waves_to_trajectories(waves, episodes)

    def _precondition(self) -> None:
        """Hook for ACKTR's trust-region scaling (no-op for plain A2C)."""

    def update(self, observations: np.ndarray, actions: List[List[int]],
               rewards: List[float]) -> float:
        """One actor-critic step over a single episode."""
        returns = standardize(discounted_returns(rewards, self.discount))
        return self._update_arrays(observations, actions, returns)

    def update_wave(self, trajectories) -> float:
        """One actor-critic step over a wave of lockstep episodes.

        The wave is the minibatch -- the synchronous-A2C convention:
        per-episode discounted returns (standardized per episode, the
        scalar rule) are concatenated and a single forward/backward
        serves every episode.  For a one-episode wave this is exactly
        :meth:`update`.
        """
        observations = np.concatenate(
            [np.array(trajectory.observations)
             for trajectory in trajectories])
        actions = [action for trajectory in trajectories
                   for action in trajectory.actions]
        returns = np.concatenate(
            [standardize(discounted_returns(trajectory.rewards,
                                            self.discount))
             for trajectory in trajectories])
        return self._update_arrays(observations, actions, returns)

    def _update_arrays(self, observations: np.ndarray,
                       actions: List[List[int]],
                       returns: np.ndarray) -> float:
        obs_tensor = Tensor(observations)
        dists, _ = self.policy(obs_tensor, None)
        values = self.critic(obs_tensor).reshape(len(returns))
        returns_tensor = Tensor(returns)
        advantages = Tensor(returns - values.numpy())

        log_probs = None
        entropies = None
        for head, dist in enumerate(dists):
            head_actions = [a[head] for a in actions]
            logp = dist.log_prob(head_actions)
            ent = dist.entropy()
            log_probs = logp if log_probs is None else log_probs + logp
            entropies = ent if entropies is None else entropies + ent

        policy_loss = -(log_probs * advantages).mean()
        value_loss = mse_loss(values, returns_tensor)
        entropy_loss = -entropies.mean()
        loss = (policy_loss + self.value_coef * value_loss
                + self.entropy_coef * entropy_loss)
        self.optimizer.zero_grad()
        loss.backward()
        clip_grad_norm(self.optimizer.parameters, self.max_grad_norm)
        self._precondition()
        self.optimizer.step()
        return loss.item()

    def search(self, env: HWAssignmentEnv, epochs: int) -> SearchResult:
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        result, started = self._start(self.name)
        if self.policy is None:
            self._build(env)
        if getattr(env, "is_vector", False):
            drive_wave_sets(
                env, epochs, result,
                lambda episodes: self.update_wave(
                    self._collect_vector(env, episodes)))
        else:
            for _ in range(epochs):
                observations, actions, rewards = self._collect(env)
                self.update(observations, actions, rewards)
                result.record(env.best.cost if env.best else None)
        self._finalize(result, env, started)
        result.memory_bytes = 8 * (self.policy.num_parameters()
                                   + self.critic.num_parameters())
        return result
