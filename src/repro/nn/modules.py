"""Neural-network modules: parameters, linear layers, MLPs, and LSTMs.

``Module`` provides parameter discovery (recursively through attributes),
state (de)serialization for target-network syncing, and gradient zeroing.
Initialization follows the conventions of the frameworks the paper used:
orthogonal-ish scaled-uniform for linear layers, unit forget-gate bias for
LSTMs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.autograd import Tensor


class Parameter(Tensor):
    """A tensor registered as trainable."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class with recursive parameter discovery and state dicts."""

    def parameters(self) -> List[Parameter]:
        found: List[Parameter] = []
        seen = set()
        self._collect(found, seen)
        return found

    def _collect(self, found: List[Parameter], seen: set) -> None:
        for value in vars(self).values():
            self._collect_value(value, found, seen)

    def _collect_value(self, value, found: List[Parameter],
                       seen: set) -> None:
        if isinstance(value, Parameter):
            if id(value) not in seen:
                seen.add(id(value))
                found.append(value)
        elif isinstance(value, Module):
            value._collect(found, seen)
        elif isinstance(value, (list, tuple)):
            for item in value:
                self._collect_value(item, found, seen)
        elif isinstance(value, dict):
            for item in value.values():
                self._collect_value(item, found, seen)

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def num_parameters(self) -> int:
        """Total scalar parameter count (the paper's memory column)."""
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> List[np.ndarray]:
        """Parameter values in discovery order (copies)."""
        return [p.data.copy() for p in self.parameters()]

    def load_state_dict(self, state: Sequence[np.ndarray]) -> None:
        parameters = self.parameters()
        if len(parameters) != len(state):
            raise ValueError(
                f"state has {len(state)} arrays but module has "
                f"{len(parameters)} parameters"
            )
        for parameter, array in zip(parameters, state):
            if parameter.data.shape != array.shape:
                raise ValueError(
                    f"shape mismatch: {parameter.data.shape} vs {array.shape}"
                )
            parameter.data = array.copy()

    def soft_update(self, source: "Module", tau: float) -> None:
        """Polyak averaging toward ``source`` (target networks)."""
        own = self.parameters()
        other = source.parameters()
        if len(own) != len(other):
            raise ValueError("module structures do not match")
        for p_target, p_source in zip(own, other):
            p_target.data = (1.0 - tau) * p_target.data + tau * p_source.data

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - interface
        raise NotImplementedError


def _linear_init(rng: np.random.Generator, fan_in: int, fan_out: int,
                 gain: float = 1.0) -> np.ndarray:
    """Scaled-uniform init (Glorot-style)."""
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=(fan_in, fan_out))


class Linear(Module):
    """Affine layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int,
                 rng: Optional[np.random.Generator] = None,
                 gain: float = 1.0) -> None:
        if in_features < 1 or out_features < 1:
            raise ValueError("feature counts must be positive")
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(_linear_init(rng, in_features, out_features,
                                             gain))
        self.bias = Parameter(np.zeros(out_features))

    def forward(self, x: Tensor) -> Tensor:
        return x @ self.weight + self.bias


_ACTIVATIONS = {
    "tanh": lambda t: t.tanh(),
    "relu": lambda t: t.relu(),
    "sigmoid": lambda t: t.sigmoid(),
    "identity": lambda t: t,
}


class MLP(Module):
    """Multi-layer perceptron with a configurable hidden activation."""

    def __init__(self, sizes: Sequence[int], activation: str = "tanh",
                 output_activation: str = "identity",
                 rng: Optional[np.random.Generator] = None) -> None:
        if len(sizes) < 2:
            raise ValueError("MLP needs at least input and output sizes")
        if activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}")
        if output_activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation {output_activation!r}")
        rng = rng or np.random.default_rng()
        self.layers = [
            Linear(sizes[i], sizes[i + 1], rng=rng)
            for i in range(len(sizes) - 1)
        ]
        self._activation = activation
        self._output_activation = output_activation

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers[:-1]:
            x = _ACTIVATIONS[self._activation](layer(x))
        return _ACTIVATIONS[self._output_activation](self.layers[-1](x))


class LSTMCell(Module):
    """A single LSTM cell with fused gate weights.

    Gate order in the fused matrices: input, forget, cell, output.  The
    forget-gate bias starts at 1.0, the standard trick for gradient flow
    over the ~50-step episodes of the larger models.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        if input_size < 1 or hidden_size < 1:
            raise ValueError("sizes must be positive")
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_x = Parameter(
            _linear_init(rng, input_size, 4 * hidden_size))
        self.weight_h = Parameter(
            _linear_init(rng, hidden_size, 4 * hidden_size))
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size:2 * hidden_size] = 1.0
        self.bias = Parameter(bias)

    def initial_state(self, batch: int = 1) -> Tuple[Tensor, Tensor]:
        zeros = np.zeros((batch, self.hidden_size))
        return Tensor(zeros), Tensor(zeros)

    def forward(self, x: Tensor,
                state: Tuple[Tensor, Tensor]) -> Tuple[Tensor, Tensor]:
        h_prev, c_prev = state
        gates = x @ self.weight_x + h_prev @ self.weight_h + self.bias
        hs = self.hidden_size
        i_gate = gates[:, 0 * hs:1 * hs].sigmoid()
        f_gate = gates[:, 1 * hs:2 * hs].sigmoid()
        g_gate = gates[:, 2 * hs:3 * hs].tanh()
        o_gate = gates[:, 3 * hs:4 * hs].sigmoid()
        c_next = f_gate * c_prev + i_gate * g_gate
        h_next = o_gate * c_next.tanh()
        return h_next, c_next


class LSTM(Module):
    """Convenience wrapper running an LSTMCell over a sequence."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)

    def forward(self, inputs: Sequence[Tensor],
                state: Optional[Tuple[Tensor, Tensor]] = None
                ) -> Tuple[List[Tensor], Tuple[Tensor, Tensor]]:
        if state is None:
            state = self.cell.initial_state()
        outputs: List[Tensor] = []
        for x in inputs:
            h, c = self.cell(x, state)
            state = (h, c)
            outputs.append(h)
        return outputs, state
