"""Reverse-mode automatic differentiation over numpy arrays.

A :class:`Tensor` wraps an ``ndarray`` and records the operations applied to
it; :meth:`Tensor.backward` walks the recorded graph in reverse topological
order accumulating gradients.  Broadcasting follows numpy semantics -- the
backward pass sums gradients over broadcast dimensions.

The engine supports exactly what the RL agents in this repository need:
elementwise arithmetic, matmul, the common activations, reductions,
reshaping / slicing / concatenation, and numerically stable softmax building
blocks.  It is intentionally small and dependency-free.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union["Tensor", np.ndarray, float, int, list]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Disable graph recording inside the context (action sampling, eval)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (reverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum along dimensions that were expanded from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A node in the autograd graph.

    Attributes:
        data: The underlying float64 ndarray.
        requires_grad: Whether gradients flow into this tensor.
        grad: Accumulated gradient (same shape as ``data``) after backward.
    """

    __slots__ = ("data", "requires_grad", "grad", "_backward", "_parents")

    def __init__(self, data: ArrayLike, requires_grad: bool = False) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _wrap(value: ArrayLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        out = Tensor(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64),
                            self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """A copy of the values, detached from the graph."""
        return self.data.copy()

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError("item() requires a single-element tensor")
        return float(self.data.reshape(()))

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy())

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{flag})"

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return self._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-self._wrap(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._wrap(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return self._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data ** 2))

        return self._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._wrap(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(
                    grad * exponent * self.data ** (exponent - 1))

        return self._make(self.data ** exponent, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ other.data.swapaxes(-1, -2))
            if other.requires_grad:
                other._accumulate(self.data.swapaxes(-1, -2) @ grad)

        return self._make(self.data @ other.data, (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        value = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * value)

        return self._make(value, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return self._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        value = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * 0.5 / value)

        return self._make(value, (self,), backward)

    def tanh(self) -> "Tensor":
        value = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - value ** 2))

        return self._make(value, (self,), backward)

    def sigmoid(self) -> "Tensor":
        value = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * value * (1.0 - value))

        return self._make(value, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make(self.data * mask, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values; gradient is passed through inside the range."""
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make(np.clip(self.data, low, high), (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * sign)

        return self._make(np.abs(self.data), (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[int] = None,
            keepdims: bool = False) -> "Tensor":
        value = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return self._make(value, (self,), backward)

    def mean(self, axis: Optional[int] = None,
             keepdims: bool = False) -> "Tensor":
        count = (self.data.size if axis is None
                 else self.data.shape[axis])
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        value = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            v = value
            if not keepdims:
                g = np.expand_dims(g, axis)
                v = np.expand_dims(v, axis)
            mask = self.data == v
            # Split gradient among ties, matching subgradient convention.
            counts = mask.sum(axis=axis, keepdims=True)
            self._accumulate(g * mask / counts)

        return self._make(value, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.asarray(grad).reshape(original))

        return self._make(self.data.reshape(*shape), (self,), backward)

    def transpose(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.asarray(grad).swapaxes(-1, -2))

        return self._make(self.data.swapaxes(-1, -2), (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return self._make(self.data[index], (self,), backward)

    @staticmethod
    def concat(tensors: Sequence["Tensor"], axis: int = -1) -> "Tensor":
        tensors = [Tensor._wrap(t) for t in tensors]
        sizes = [t.data.shape[axis] for t in tensors]
        value = np.concatenate([t.data for t in tensors], axis=axis)

        def backward(grad: np.ndarray) -> None:
            offset = 0
            for tensor, size in zip(tensors, sizes):
                if tensor.requires_grad:
                    slicer = [slice(None)] * grad.ndim
                    slicer[axis] = slice(offset, offset + size)
                    tensor._accumulate(grad[tuple(slicer)])
                offset += size

        return Tensor._make(value, tensors, backward)

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._wrap(t) for t in tensors]
        value = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad: np.ndarray) -> None:
            for i, tensor in enumerate(tensors):
                if tensor.requires_grad:
                    tensor._accumulate(np.take(grad, i, axis=axis))

        return Tensor._make(value, tensors, backward)

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Args:
            grad: Seed gradient; defaults to ones (required to be scalar
                output otherwise the seed must be supplied).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor without grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "backward() without a seed requires a scalar output"
                )
            grad = np.ones_like(self.data)

        order: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited and parent.requires_grad:
                    stack.append((parent, False))

        self._accumulate(np.asarray(grad, dtype=np.float64))
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
