"""Gradient-descent optimizers for the tiny NN library."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.nn.modules import Parameter


class Optimizer:
    """Base optimizer over an explicit parameter list."""

    def __init__(self, parameters: Sequence[Parameter]) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer needs at least one parameter")

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 1e-2,
                 momentum: float = 0.0) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            velocity *= self.momentum
            velocity += parameter.grad
            parameter.data -= self.lr * velocity


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            parameter.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm(parameters: Sequence[Parameter],
                   max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for logging and tests).
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = 0.0
    for parameter in parameters:
        if parameter.grad is not None:
            total += float(np.sum(parameter.grad ** 2))
    norm = float(np.sqrt(total))
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for parameter in parameters:
            if parameter.grad is not None:
                parameter.grad *= scale
    return norm
