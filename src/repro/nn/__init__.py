"""A small reverse-mode autograd engine and neural-network library on numpy.

The paper builds its agents on off-the-shelf RL frameworks; this repository
has no such dependency, so ``repro.nn`` supplies the substrate: a tensor
autograd engine, the modules the policy/value networks need (``Linear``,
``LSTMCell``, ``MLP``), Adam/SGD optimizers, and the categorical / Gaussian
action distributions used by the discrete and continuous agents.
"""

from repro.nn.autograd import Tensor, no_grad
from repro.nn.modules import LSTM, LSTMCell, Linear, MLP, Module, Parameter
from repro.nn.optim import SGD, Adam, Optimizer, clip_grad_norm
from repro.nn.distributions import Categorical, DiagGaussian
from repro.nn import functional

__all__ = [
    "Tensor",
    "no_grad",
    "Module",
    "Parameter",
    "Linear",
    "MLP",
    "LSTMCell",
    "LSTM",
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "Categorical",
    "DiagGaussian",
    "functional",
]
