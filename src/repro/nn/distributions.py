"""Action distributions for the RL agents.

``Categorical`` backs the discrete agents (REINFORCE, A2C, ACKTR, PPO2);
``DiagGaussian`` backs the continuous ones (DDPG's exploration noise aside,
SAC and TD3 sample from / evaluate Gaussians over the squashed action box).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.nn.autograd import Tensor
from repro.nn.functional import log_softmax, softmax

_LOG_2PI = math.log(2.0 * math.pi)


class Categorical:
    """Categorical distribution parameterized by logits (batch, classes)."""

    def __init__(self, logits: Tensor) -> None:
        if logits.ndim != 2:
            raise ValueError("logits must be 2-D (batch, classes)")
        self.logits = logits
        self._log_probs = log_softmax(logits, axis=-1)

    @property
    def probs(self) -> np.ndarray:
        return softmax(self.logits, axis=-1).numpy()

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Sample one class index per batch row (no gradient)."""
        probs = self.probs
        cumulative = probs.cumsum(axis=-1)
        # Guard against round-off so searchsorted never lands out of range.
        cumulative[:, -1] = 1.0
        draws = rng.random(size=(probs.shape[0], 1))
        return (draws < cumulative).argmax(axis=-1)

    def mode(self) -> np.ndarray:
        return self.probs.argmax(axis=-1)

    def log_prob(self, actions: Sequence[int]) -> Tensor:
        """Log-probability of ``actions`` with gradients to the logits."""
        actions = np.asarray(actions, dtype=np.int64)
        rows = np.arange(actions.shape[0])
        return self._log_probs[rows, actions]

    def entropy(self) -> Tensor:
        probs = softmax(self.logits, axis=-1)
        return -(probs * self._log_probs).sum(axis=-1)


class DiagGaussian:
    """Diagonal Gaussian with learnable mean and log-std tensors."""

    def __init__(self, mean: Tensor, log_std: Tensor) -> None:
        self.mean = mean
        self.log_std = log_std

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        noise = rng.standard_normal(self.mean.shape)
        return self.mean.numpy() + np.exp(self.log_std.numpy()) * noise

    def rsample(self, rng: np.random.Generator) -> Tensor:
        """Reparameterized sample (gradient flows to mean and log-std)."""
        noise = Tensor(rng.standard_normal(self.mean.shape))
        return self.mean + self.log_std.exp() * noise

    def log_prob(self, value) -> Tensor:
        value = value if isinstance(value, Tensor) else Tensor(value)
        var = (self.log_std * 2.0).exp()
        diff = value - self.mean
        per_dim = (
            (diff * diff) / var * -0.5
            - self.log_std
            - 0.5 * _LOG_2PI
        )
        return per_dim.sum(axis=-1)

    def entropy(self) -> Tensor:
        return (self.log_std + 0.5 * (_LOG_2PI + 1.0)).sum(axis=-1)
