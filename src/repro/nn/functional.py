"""Functional building blocks composed from autograd primitives."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.autograd import Tensor


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = logits - logits.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = logits - logits.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    diff = prediction - target
    return (diff * diff).mean()


def huber_loss(prediction: Tensor, target: Tensor,
               delta: float = 1.0) -> Tensor:
    """Smooth-L1 loss, the standard critic loss for DDPG-family agents."""
    diff = prediction - target
    abs_diff = diff.abs()
    quadratic = abs_diff.clip(0.0, delta)
    linear = abs_diff - quadratic
    return (quadratic * quadratic * 0.5 + linear * delta).mean()


def one_hot(indices: Sequence[int], num_classes: int) -> np.ndarray:
    """Plain-numpy one-hot encoding helper (no gradient)."""
    indices = np.asarray(indices, dtype=np.int64)
    if indices.ndim != 1:
        raise ValueError("indices must be 1-D")
    if np.any(indices < 0) or np.any(indices >= num_classes):
        raise ValueError("index out of range for one_hot")
    encoded = np.zeros((indices.size, num_classes), dtype=np.float64)
    encoded[np.arange(indices.size), indices] = 1.0
    return encoded
