"""Thin Python client for the ND-JSON service transport.

:class:`ServiceClient` speaks :mod:`repro.service.transport`'s
one-line-JSON protocol over a TCP socket -- the same surface as the
``repro submit`` / ``repro jobs`` / ``repro cache`` CLI, importable::

    with ServiceClient(port=7661) as client:
        result = client.submit(spec)           # SessionResult, blocks
        job = client.submit(spec, wait=False)  # dict summary, async
        client.status(job["id"])
        client.cache_stats()

One client holds one connection and is not thread-safe; create one per
thread.  ``connect_timeout`` retries the initial connection with a short
backoff so a client started alongside ``repro serve`` (the CI pattern)
wins the startup race without sleeps.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Iterator, List, Optional, Union

from repro.search.session import SessionResult
from repro.search.spec import SearchSpec

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """The server answered ``ok: false`` (message is the server's)."""


class ServiceClient:
    """One connection to a running search service."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7661,
                 connect_timeout: float = 10.0) -> None:
        self.host = host
        self.port = port
        deadline = time.monotonic() + connect_timeout
        delay = 0.05
        while True:
            try:
                self._sock = socket.create_connection((host, port),
                                                      timeout=connect_timeout)
                break
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(delay)
                delay = min(delay * 2, 0.5)
        self._sock.settimeout(None)
        self._reader = self._sock.makefile("rb")

    # ------------------------------------------------------------------
    def _send(self, request: dict) -> None:
        self._sock.sendall(json.dumps(request).encode("utf-8") + b"\n")

    def _recv(self) -> dict:
        line = self._reader.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        return json.loads(line.decode("utf-8"))

    def _call(self, request: dict) -> dict:
        self._send(request)
        response = self._recv()
        if not response.get("ok"):
            raise ServiceError(response.get("error", "unknown error"))
        return response

    @staticmethod
    def _result_of(response: dict) -> SessionResult:
        if response["job"]["state"] != "DONE":
            raise ServiceError(
                response.get("error")
                or f"job {response['job']['id']} "
                   f"{response['job']['state']}")
        return SessionResult.from_dict(response["result"])

    # ------------------------------------------------------------------
    def ping(self) -> str:
        """Server's repro version (also: liveness check)."""
        return self._call({"op": "ping"})["version"]

    def submit(self, spec: SearchSpec, force: bool = False,
               wait: bool = True,
               timeout: Optional[float] = None
               ) -> Union[SessionResult, dict]:
        """Submit a spec.

        ``wait=True`` (default) blocks until terminal and returns the
        :class:`~repro.search.session.SessionResult`; ``wait=False``
        returns the job-summary dict immediately (poll via
        :meth:`status` / :meth:`result`).  ``force`` bypasses the cache
        and overwrites the entry when done.
        """
        request = {"op": "submit", "spec": spec.to_dict(),
                   "force": force, "wait": wait}
        if timeout is not None:
            request["timeout"] = timeout
        response = self._call(request)
        if not wait:
            return response["job"]
        return self._result_of(response)

    def watch(self, spec: SearchSpec,
              force: bool = False) -> Iterator[dict]:
        """Submit and stream the job's events as dicts.

        The final yielded item is the terminal response (has an ``ok``
        key and the job summary / result document).
        """
        self._send({"op": "submit", "spec": spec.to_dict(),
                    "force": force, "watch": True})
        while True:
            message = self._recv()
            yield message
            if "ok" in message:
                return

    def status(self, job_id: str) -> dict:
        return self._call({"op": "status", "job": job_id})["job"]

    def result(self, job_id: str, wait: bool = True,
               timeout: Optional[float] = None) -> SessionResult:
        request = {"op": "result", "job": job_id, "wait": wait}
        if timeout is not None:
            request["timeout"] = timeout
        return self._result_of(self._call(request))

    def jobs(self) -> List[dict]:
        return self._call({"op": "jobs"})["jobs"]

    def cancel(self, job_id: str) -> bool:
        return self._call({"op": "cancel", "job": job_id})["cancelled"]

    def cache_stats(self) -> dict:
        return self._call({"op": "cache", "action": "stats"})["stats"]

    def cache_clear(self) -> int:
        return self._call({"op": "cache", "action": "clear"})["cleared"]

    def stats(self) -> dict:
        return self._call({"op": "stats"})["stats"]

    def shutdown(self) -> None:
        """Ask the transport to stop accepting connections."""
        self._call({"op": "shutdown"})

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
