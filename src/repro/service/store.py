"""Content-addressed, on-disk store of finished search results.

The traffic pattern the service targets is dominated by *repeats*: the
same (model, method, objective, constraint, budget, seed) spec submitted
again and again.  Every registered method is a deterministic function of
its :class:`~repro.search.spec.SearchSpec`, so a finished
:class:`~repro.search.session.SessionResult` can be addressed purely by
the spec's content -- no invalidation protocol, no freshness window.

Keys are the SHA-256 of the spec's *canonical identity*: the spec dict
with

* the objective normalized to its canonical JSON-safe form (so
  ``"latency"`` and the equivalent spec dict or
  :class:`~repro.objectives.Objective` instance dedup to one entry),
* ``envs`` resolved (``None`` / ``$REPRO_ENVS`` / explicit ``1`` all
  mean the same scalar-stepping scenario), and
* the execution-only knobs (``executor`` / ``workers`` /
  ``dispatch_min_batch`` / ``task_timeout_s``) dropped -- the parity
  suites hold results bit-identical across backends, so a result
  computed on a process pool *is* the serial result.

The cache contract (after the kg-microbe exemplar): re-running is safe --
existing results are served from the store; a ``force`` flag bypasses the
lookup to re-run (the fresh result then overwrites the entry).  Writes
are atomic (write-to-temp + ``fsync`` + ``os.replace``, the
``CheckpointHook`` idiom), so a reader never sees a torn entry; a
corrupted or truncated entry is treated as a miss and dropped.  A small
in-process LRU sits in front of the disk so hot keys skip the filesystem
entirely.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from collections import OrderedDict
from typing import Optional, Union

from repro.objectives import objective_spec
from repro.search.session import SessionResult
from repro.search.spec import SearchSpec

__all__ = [
    "ResultStore",
    "canonical_identity",
    "result_key",
    "default_cache_dir",
    "STORE_FORMAT",
    "EXECUTION_ONLY_FIELDS",
]

#: Envelope format tag; bump on incompatible layout changes (old entries
#: then read as misses and are regenerated, never misparsed).
STORE_FORMAT = "repro-result-store/v1"

#: Spec fields that never change results (the executor x workers parity
#: matrix holds them bit-identical), excluded from the cache identity so
#: a result computed on any backend serves every backend.
EXECUTION_ONLY_FIELDS = (
    "executor",
    "workers",
    "dispatch_min_batch",
    "task_timeout_s",
)


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro/results``."""
    configured = os.environ.get("REPRO_CACHE_DIR")
    if configured:
        return configured
    return os.path.join(os.path.expanduser("~"), ".cache", "repro",
                        "results")


def canonical_identity(spec: SearchSpec) -> dict:
    """The JSON-safe dict that *is* a spec's result identity.

    Two specs with equal identities produce bit-identical results; two
    specs with different identities may not.  See the module docstring
    for what gets normalized away.
    """
    identity = spec.to_dict()
    for field in EXECUTION_ONLY_FIELDS:
        identity.pop(field, None)
    identity["objective"] = objective_spec(spec.objective)
    identity["envs"] = spec.resolved_envs()
    return identity


def result_key(spec: SearchSpec) -> str:
    """SHA-256 hex digest of the spec's canonical identity."""
    canonical = json.dumps(canonical_identity(spec), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultStore:
    """Content-addressed result cache: spec in, finished result out.

    Args:
        root: Store directory (created on first write); ``None`` resolves
            ``$REPRO_CACHE_DIR`` / the user cache dir.
        max_memory_entries: Size of the in-process LRU in front of the
            disk (0 disables it).

    Thread-safe: all public methods may be called from concurrent
    scheduler threads.  Entries live at ``<root>/<key[:2]>/<key>.json``
    as a versioned envelope ``{format, key, identity, result, stored_at,
    repro_version}``; the embedded ``result`` document round-trips
    through :meth:`SessionResult.from_dict` unchanged, which is what
    makes a cache hit bit-identical to the run that produced it.
    """

    def __init__(self, root: Optional[Union[str, os.PathLike]] = None,
                 max_memory_entries: int = 64) -> None:
        if max_memory_entries < 0:
            raise ValueError("max_memory_entries must be >= 0")
        self.root = os.fspath(root) if root is not None \
            else default_cache_dir()
        self.max_memory_entries = max_memory_entries
        self._lock = threading.Lock()
        self._memory: "OrderedDict[str, dict]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.memory_hits = 0
        self.puts = 0
        self.evictions = 0
        self.bypasses = 0
        self.corrupt_dropped = 0

    # ------------------------------------------------------------------
    def key_of(self, spec_or_key: Union[SearchSpec, str]) -> str:
        """Accept a spec or a precomputed hex key."""
        if isinstance(spec_or_key, str):
            return spec_or_key
        return result_key(spec_or_key)

    def path_for(self, spec_or_key: Union[SearchSpec, str]) -> str:
        """Where the entry for ``spec_or_key`` lives (existing or not)."""
        key = self.key_of(spec_or_key)
        return os.path.join(self.root, key[:2], f"{key}.json")

    # ------------------------------------------------------------------
    def get(self, spec_or_key: Union[SearchSpec, str],
            force: bool = False) -> Optional[SessionResult]:
        """The stored result for this identity, or ``None`` on a miss.

        ``force=True`` bypasses the lookup unconditionally (the caller
        intends to re-run; the fresh :meth:`put` then overwrites the
        entry) -- the kg-microbe "force flag to re-run" contract.
        """
        key = self.key_of(spec_or_key)
        with self._lock:
            if force:
                self.bypasses += 1
                return None
            envelope = self._memory.get(key)
            if envelope is not None:
                self._memory.move_to_end(key)
                self.hits += 1
                self.memory_hits += 1
                return SessionResult.from_dict(envelope["result"])
            envelope = self._read_envelope(key)
            if envelope is None:
                self.misses += 1
                return None
            try:
                result = SessionResult.from_dict(envelope["result"])
            except Exception:
                self._drop_corrupt(key)
                self.misses += 1
                return None
            self._remember(key, envelope)
            self.hits += 1
            return result

    def put(self, spec: SearchSpec, result: SessionResult) -> str:
        """Store ``result`` under ``spec``'s identity; returns the key.

        Overwrites any existing entry atomically (last write wins whole,
        never torn), so a ``force`` re-run refreshes the cache in place.
        """
        key = result_key(spec)
        envelope = {
            "format": STORE_FORMAT,
            "key": key,
            "identity": canonical_identity(spec),
            "result": result.to_dict(),
            "stored_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "repro_version": _repro_version(),
        }
        path = self.path_for(key)
        with self._lock:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            self._write_atomic(path, envelope)
            self._remember(key, envelope)
            self.puts += 1
        return key

    def evict(self, spec_or_key: Union[SearchSpec, str]) -> bool:
        """Drop one entry (memory and disk); True if anything existed."""
        key = self.key_of(spec_or_key)
        with self._lock:
            existed = self._memory.pop(key, None) is not None
            path = self.path_for(key)
            if os.path.exists(path):
                os.remove(path)
                existed = True
            if existed:
                self.evictions += 1
            return existed

    def clear(self) -> int:
        """Drop every entry; returns how many disk entries were removed."""
        with self._lock:
            self._memory.clear()
            removed = 0
            for path in self._entry_paths():
                os.remove(path)
                removed += 1
            self.evictions += removed
            return removed

    def stats(self) -> dict:
        """Counters plus the current disk footprint (entries, bytes)."""
        with self._lock:
            paths = self._entry_paths()
            return {
                "root": self.root,
                "entries": len(paths),
                "bytes": sum(os.path.getsize(path) for path in paths),
                "memory_entries": len(self._memory),
                "hits": self.hits,
                "memory_hits": self.memory_hits,
                "misses": self.misses,
                "puts": self.puts,
                "evictions": self.evictions,
                "bypasses": self.bypasses,
                "corrupt_dropped": self.corrupt_dropped,
            }

    # ------------------------------------------------------------------
    def _entry_paths(self) -> list:
        paths = []
        if not os.path.isdir(self.root):
            return paths
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    paths.append(os.path.join(shard_dir, name))
        return paths

    def _remember(self, key: str, envelope: dict) -> None:
        if self.max_memory_entries == 0:
            return
        self._memory[key] = envelope
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)

    def _read_envelope(self, key: str) -> Optional[dict]:
        """Load and validate one disk entry; corrupt entries (torn
        writes can't happen, but truncated copies, stray files, or
        format drift can) are dropped and read as misses."""
        path = self.path_for(key)
        try:
            with open(path) as handle:
                envelope = json.load(handle)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError, UnicodeDecodeError):
            self._drop_corrupt(key)
            return None
        if (not isinstance(envelope, dict)
                or envelope.get("format") != STORE_FORMAT
                or envelope.get("key") != key
                or "result" not in envelope):
            self._drop_corrupt(key)
            return None
        return envelope

    def _drop_corrupt(self, key: str) -> None:
        self._memory.pop(key, None)
        path = self.path_for(key)
        try:
            os.remove(path)
        except OSError:  # pragma: no cover - already gone
            pass
        self.corrupt_dropped += 1

    @staticmethod
    def _write_atomic(path: str, envelope: dict) -> None:
        tmp_path = f"{path}.tmp"
        with open(tmp_path, "w") as handle:
            json.dump(envelope, handle, indent=2)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)


def _repro_version() -> str:
    import repro

    return repro.__version__
