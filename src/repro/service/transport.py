"""Line-delimited-JSON socket transport for :class:`SearchServer`.

A deliberately tiny wire protocol so a second process (the ``repro
submit`` / ``repro jobs`` / ``repro cache`` CLI, or any language that can
write JSON to a socket) can drive a running service:

* Every request is one JSON object on one line; every request yields
  exactly one JSON response line -- except ``submit`` with
  ``"watch": true``, which first streams the job's event lines
  (``{"event": {...}}``) and then the final response.
* Responses carry ``"ok": true`` or ``"ok": false`` plus ``"error"``.
* A connection may carry any number of requests sequentially.

Operations::

    {"op": "ping"}
    {"op": "submit", "spec": {...}, "force": false,
     "watch": false, "wait": true}
    {"op": "status", "job": "j3"}
    {"op": "result", "job": "j3", "wait": true}
    {"op": "jobs"}
    {"op": "cancel", "job": "j3"}
    {"op": "cache", "action": "stats" | "clear"}
    {"op": "stats"}
    {"op": "shutdown"}

``submit`` with ``"wait": true`` (the default) blocks until the job is
terminal and embeds the full ``result`` document; ``"wait": false``
returns the job summary immediately (poll with ``status`` / ``result``).
The transport never re-serializes a stored result through live objects
except via ``SessionResult.from_dict``/``to_dict``, so a cache hit's
document is bit-identical to the run that produced it.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from typing import Tuple

from repro.search.spec import SearchSpec
from repro.service.server import SearchServer

__all__ = ["ServiceTCPServer", "start_transport", "probe", "DEFAULT_PORT"]

DEFAULT_PORT = 7661


class ServiceTCPServer(socketserver.ThreadingTCPServer):
    """Threaded ND-JSON front end over one :class:`SearchServer`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int],
                 search_server: SearchServer) -> None:
        super().__init__(address, _RequestHandler)
        self.search_server = search_server


class _RequestHandler(socketserver.StreamRequestHandler):
    """One connection: requests in, responses out, line by line."""

    def handle(self) -> None:
        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            try:
                request = json.loads(line.decode("utf-8"))
                if not isinstance(request, dict):
                    raise ValueError("request must be a JSON object")
            except (ValueError, UnicodeDecodeError) as error:
                self._send({"ok": False, "error": f"bad request: {error}"})
                continue
            try:
                stop = self._dispatch(request)
            except BrokenPipeError:  # pragma: no cover - client went away
                return
            except Exception as error:  # noqa: BLE001 - protocol boundary
                self._send({"ok": False,
                            "error": f"{type(error).__name__}: {error}"})
                continue
            if stop:
                return

    # ------------------------------------------------------------------
    def _send(self, document: dict) -> None:
        self.wfile.write(json.dumps(document).encode("utf-8") + b"\n")
        self.wfile.flush()

    def _job_response(self, job, with_result: bool) -> dict:
        response = {"ok": True, "job": job.to_dict()}
        if with_result and job.result is not None:
            response["result"] = job.result.to_dict()
        if job.error is not None:
            response["error"] = job.error
        return response

    def _dispatch(self, request: dict) -> bool:
        server = self.server.search_server
        op = request.get("op")
        if op == "ping":
            import repro

            self._send({"ok": True, "version": repro.__version__})
        elif op == "submit":
            spec = SearchSpec.from_dict(request["spec"])
            job = server.submit(spec, force=bool(request.get("force")))
            if request.get("watch"):
                for event in job.events():
                    self._send({"event": event})
                self._send(self._job_response(job, with_result=True))
            elif request.get("wait", True):
                job.wait(timeout=request.get("timeout"))
                self._send(self._job_response(job, with_result=True))
            else:
                self._send(self._job_response(job, with_result=False))
        elif op == "status":
            job = server.job(request["job"])
            self._send(self._job_response(job, with_result=False))
        elif op == "result":
            job = server.job(request["job"])
            if request.get("wait", True):
                job.wait(timeout=request.get("timeout"))
            if not job.done:
                self._send({"ok": False,
                            "error": f"job {job.id} is {job.state}"})
            else:
                self._send(self._job_response(job, with_result=True))
        elif op == "jobs":
            self._send({"ok": True,
                        "jobs": [job.to_dict() for job in server.jobs()]})
        elif op == "cancel":
            cancelled = server.cancel(request["job"])
            self._send({"ok": True, "cancelled": cancelled})
        elif op == "cache":
            store = server.store
            if store is None:
                self._send({"ok": False, "error": "cache disabled"})
            elif request.get("action", "stats") == "clear":
                self._send({"ok": True, "cleared": store.clear()})
            else:
                self._send({"ok": True, "stats": store.stats()})
        elif op == "stats":
            self._send({"ok": True, "stats": server.stats()})
        elif op == "shutdown":
            self._send({"ok": True, "stopping": True})
            # shutdown() blocks until serve_forever() exits; it must be
            # called off the serve_forever thread, which handler threads
            # are (ThreadingTCPServer), so this is safe -- but the
            # search server itself is closed by the owner around
            # serve_forever, not here.
            threading.Thread(target=self.server.shutdown,
                             daemon=True).start()
            return True
        else:
            self._send({"ok": False, "error": f"unknown op {op!r}"})
        return False


def start_transport(search_server: SearchServer, host: str = "127.0.0.1",
                    port: int = 0,
                    in_thread: bool = True) -> ServiceTCPServer:
    """Bind the ND-JSON transport and (optionally) serve in a thread.

    ``port=0`` binds an ephemeral port -- read the real one from
    ``transport.server_address[1]`` (what the tests do).  With
    ``in_thread=True`` (default) ``serve_forever`` runs on a daemon
    thread and the call returns immediately; call ``shutdown()`` +
    ``server_close()`` when done.  The CLI runs it in the foreground
    instead.
    """
    transport = ServiceTCPServer((host, port), search_server)
    if in_thread:
        thread = threading.Thread(target=transport.serve_forever,
                                  name="repro-service-transport",
                                  daemon=True)
        thread.start()
    return transport


def probe(host: str, port: int, timeout: float = 1.0) -> bool:
    """True when a service answers ``ping`` at ``host:port``."""
    try:
        with socket.create_connection((host, port), timeout=timeout) as sock:
            sock.sendall(b'{"op": "ping"}\n')
            handle = sock.makefile("rb")
            line = handle.readline()
        return bool(line) and json.loads(line.decode("utf-8")).get("ok") \
            is True
    except (OSError, ValueError):
        return False
