"""The long-lived search service: job scheduler over one warmed pool.

:class:`SearchServer` turns the one-shot :class:`~repro.search.session
.SearchSession` library into a multiplexing service:

* **Submission** -- :meth:`SearchServer.submit` accepts a frozen
  :class:`~repro.search.spec.SearchSpec` and returns a :class:`Job`
  immediately; up to ``max_concurrent`` scheduler threads drain the
  queue, each running a full session.
* **Cache** -- specs are first looked up in the content-addressed
  :class:`~repro.service.store.ResultStore` (unless ``force``): a hit
  returns a ``DONE`` job carrying the stored result in O(1), no session
  run.  Completed (non-stopped) runs are written back, so the next
  identical submission is a hit.
* **Single-flight** -- N concurrent submissions of one identity collapse
  onto one executing job: the first becomes the leader, the rest get the
  *same* :class:`Job` object, so exactly one session runs and every
  caller sees its result.
* **Shared pool** -- when the server is built with a parallel executor it
  owns one ``keep_alive`` :class:`~repro.parallel.ParallelCoordinator`;
  every job takes a :meth:`~repro.parallel.ParallelCoordinator.lease` on
  it, so many concurrent sessions multiplex over one warmed worker
  fleet (batch evaluations serialize on the pool lock; results stay
  bit-identical to serial runs).
* **Lifecycle** -- jobs move ``PENDING -> RUNNING -> DONE`` (or
  ``FAILED`` / ``CANCELLED``); :meth:`SearchServer.cancel` maps onto the
  observer protocol's graceful early-stop, so a cancelled running job
  keeps its best-so-far result.
* **Streaming progress** -- each job bridges the
  :class:`~repro.search.callbacks.SearchObserver` hooks
  (``on_step`` / ``on_improvement`` / ``on_warning``) into an event
  stream that any number of watchers can iterate concurrently
  (:meth:`Job.events`).
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from typing import Dict, List, Optional

from repro.search.callbacks import SearchObserver
from repro.search.session import SearchSession, SessionResult
from repro.search.spec import SearchSpec
from repro.service.store import ResultStore, result_key

__all__ = ["Job", "JobState", "SearchServer", "JobObserver"]


class JobState:
    """The job lifecycle (plain strings so they serialize as-is)."""

    PENDING = "PENDING"
    RUNNING = "RUNNING"
    DONE = "DONE"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"

    #: States a job never leaves.
    TERMINAL = frozenset({DONE, FAILED, CANCELLED})


class Job:
    """One submitted search: shared state between scheduler and watchers.

    A job is handed out by :meth:`SearchServer.submit`; identical
    concurrent submissions receive the *same* object (single-flight).
    All mutation happens under one condition variable, which also backs
    :meth:`wait` and the :meth:`events` stream.
    """

    def __init__(self, job_id: str, spec: SearchSpec, key: str) -> None:
        self.id = job_id
        self.spec = spec
        self.key = key
        self.state = JobState.PENDING
        self.cached = False
        self.result: Optional[SessionResult] = None
        self.error: Optional[str] = None
        self.created_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self._events: List[dict] = []
        self._condition = threading.Condition()
        self._cancel_requested = False
        self._observer: Optional["JobObserver"] = None

    # ------------------------------------------------------------------
    def _emit(self, kind: str, **payload) -> None:
        """Append one event and wake every watcher."""
        with self._condition:
            event = {"seq": len(self._events), "type": kind,
                     "job": self.id, **payload}
            self._events.append(event)
            self._condition.notify_all()

    def _set_state(self, state: str, **payload) -> None:
        with self._condition:
            self.state = state
            if state == JobState.RUNNING:
                self.started_at = time.time()
            if state in JobState.TERMINAL:
                self.finished_at = time.time()
        self._emit("state", state=state, **payload)

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.state in JobState.TERMINAL

    @property
    def cancel_requested(self) -> bool:
        return self._cancel_requested

    def wait(self, timeout: Optional[float] = None) -> "Job":
        """Block until the job reaches a terminal state; returns self.

        Raises :class:`TimeoutError` if ``timeout`` elapses first.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._condition:
            while self.state not in JobState.TERMINAL:
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        f"job {self.id} still {self.state} after "
                        f"{timeout}s")
                self._condition.wait(remaining)
        return self

    def events(self, timeout: Optional[float] = None):
        """Iterate this job's event stream from the beginning.

        Yields every event (``state`` transitions, throttled ``step``
        progress, ``improvement``, ``warning``) in order and returns
        once the job is terminal and the stream is drained.  Multiple
        watchers can iterate concurrently; each gets the full stream.
        ``timeout`` bounds each *wait* for the next event (raising
        :class:`TimeoutError`), not the total iteration.
        """
        index = 0
        while True:
            with self._condition:
                while (index >= len(self._events)
                        and self.state not in JobState.TERMINAL):
                    if not self._condition.wait(timeout):
                        raise TimeoutError(
                            f"no event from job {self.id} in {timeout}s")
                batch = self._events[index:]
                index += len(batch)
                drained = (self.state in JobState.TERMINAL
                           and index >= len(self._events))
            for event in batch:
                yield event
            if drained:
                return

    def to_dict(self) -> dict:
        """A JSON-safe summary (the full result travels separately)."""
        with self._condition:
            result = self.result
            return {
                "id": self.id,
                "key": self.key,
                "state": self.state,
                "cached": self.cached,
                "method": self.spec.method,
                "model": self.spec.model,
                "error": self.error,
                "created_at": self.created_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "best_cost": (result.best_cost
                              if result is not None else None),
                "stopped_early": (result.stopped_early
                                  if result is not None else False),
                "spec": self.spec.to_dict(),
            }


class JobObserver(SearchObserver):
    """Bridge the observer protocol into one job's event stream.

    Also the cancellation seam: :meth:`SearchServer.cancel` calls
    :meth:`~repro.search.callbacks.SearchObserver.request_stop` on it,
    and the session winds down gracefully at the next step boundary --
    the same path ``EarlyStopping`` uses, so the best-so-far solution
    survives into the cancelled job's result.
    """

    def __init__(self, job: Job, progress_every: int = 10) -> None:
        super().__init__()
        if progress_every < 1:
            raise ValueError("progress_every must be >= 1")
        self.job = job
        self.progress_every = progress_every

    def on_step(self, step, cost, best_cost) -> None:
        if step % self.progress_every == 0:
            self.job._emit("step", step=step, cost=cost,
                           best_cost=best_cost)

    def on_improvement(self, step, best_cost, best_assignments) -> None:
        self.job._emit("improvement", step=step, best_cost=best_cost)

    def on_warning(self, kind, detail) -> None:
        self.job._emit("warning", kind=kind, detail=dict(detail))


class SearchServer:
    """Schedule many concurrent search sessions over one warmed pool.

    Args:
        store: The content-addressed result cache (``None`` disables
            caching; submissions always run).
        max_concurrent: Scheduler threads = maximum sessions in flight.
        executor: Pool backend shared by every job -- "serial" (each
            session computes in-process), "thread", "process",
            "chaos", or "distributed"; ``None`` resolves
            ``$REPRO_EXECUTOR``.  Non-serial pools are held
            ``keep_alive`` across jobs and leased per session, so
            workers warm up once and serve all traffic (a distributed
            fleet connects once and serves every job).
        workers: Pool worker count (``None``: ``$REPRO_WORKERS`` / auto).
        nodes: Node-fleet size for the "distributed" executor
            (``None``: ``$REPRO_NODES`` / auto; see
            :class:`~repro.parallel.DistributedBackend` for the
            self-spawned vs ``$REPRO_BIND`` external modes).
        kernel: Cost-model compute kernel for the shared pool
            (``None``: ``$REPRO_KERNEL`` or "batched").  Serial jobs
            resolve their own kernel per spec/env inside the session.
        progress_every: Throttle for per-step job events.
        fault_plan: Deterministic fault-injection plan forwarded to the
            pool (testing; ``None`` defers to ``$REPRO_FAULTS``).

    Use as a context manager (or call :meth:`close`) to stop the
    scheduler threads and shut the pool down.
    """

    def __init__(self, store: Optional[ResultStore] = None,
                 max_concurrent: int = 2,
                 executor: Optional[str] = None,
                 workers: Optional[int] = None,
                 nodes: Optional[int] = None,
                 kernel: Optional[str] = None,
                 progress_every: int = 10,
                 fault_plan=None) -> None:
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        from repro.parallel import ParallelCoordinator

        self.store = store
        self.max_concurrent = max_concurrent
        self.progress_every = progress_every
        if executor is None:
            import os

            executor = os.environ.get("REPRO_EXECUTOR", "serial")
        self.executor = executor
        self.coordinator = None
        if executor != "serial":
            self.coordinator = ParallelCoordinator(
                executor=executor, workers=workers, nodes=nodes,
                keep_alive=True, fault_plan=fault_plan, kernel=kernel)
        self._lock = threading.Lock()
        self._jobs: "Dict[str, Job]" = {}
        self._inflight: Dict[str, Job] = {}
        self._queue: "queue.Queue" = queue.Queue()
        self._ids = itertools.count(1)
        self._closed = False
        #: How many sessions actually ran (cache hits and single-flight
        #: followers do not count) -- what the dedup tests assert on.
        self.executions = 0
        self._threads = [
            threading.Thread(target=self._scheduler_loop,
                             name=f"repro-scheduler-{index}", daemon=True)
            for index in range(max_concurrent)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    def submit(self, spec: SearchSpec, force: bool = False) -> Job:
        """Accept one spec; returns its job immediately.

        Resolution order: in-flight identical job (single-flight, the
        caller attaches to it) -> cache hit (a ``DONE`` job carrying the
        stored result) -> a fresh ``PENDING`` job queued for the
        scheduler.  ``force=True`` skips the first two and always queues
        a fresh run whose result overwrites the cache entry.
        """
        key = result_key(spec)
        with self._lock:
            if self._closed:
                raise RuntimeError("server is closed")
            if not force:
                leader = self._inflight.get(key)
                if leader is not None:
                    return leader
                if self.store is not None:
                    cached = self.store.get(spec)
                    if cached is not None:
                        job = Job(f"j{next(self._ids)}", spec, key)
                        job.cached = True
                        job.result = cached
                        self._jobs[job.id] = job
                        job._set_state(JobState.DONE, cached=True)
                        return job
            job = Job(f"j{next(self._ids)}", spec, key)
            self._jobs[job.id] = job
            self._inflight[key] = job
            self._queue.put(job)
            return job

    def job(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise KeyError(f"unknown job id {job_id!r}") from None

    def jobs(self) -> List[Job]:
        """Every job this server has seen, in submission order."""
        with self._lock:
            return list(self._jobs.values())

    def cancel(self, job_id: str) -> bool:
        """Cancel one job; True if the request had any effect.

        ``PENDING`` jobs are cancelled outright (the scheduler skips
        them); ``RUNNING`` jobs get a graceful stop request and move to
        ``CANCELLED`` when the session winds down, keeping the
        best-so-far result.  Terminal jobs are left alone.
        """
        job = self.job(job_id)
        with self._lock:
            if job.state in JobState.TERMINAL:
                return False
            job._cancel_requested = True
            # A job is only *outright* cancellable before the scheduler
            # claimed it (the claim assigns the observer under this same
            # lock) -- afterwards the graceful-stop path owns it.
            if job.state == JobState.PENDING and job._observer is None:
                self._inflight.pop(job.key, None)
                job._set_state(JobState.CANCELLED)
                return True
        observer = job._observer
        if observer is not None:
            observer.request_stop()
        return True

    def stats(self) -> dict:
        """Scheduler counters plus the cache's, for observability."""
        with self._lock:
            by_state: Dict[str, int] = {}
            for job in self._jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
            stats = {
                "jobs": len(self._jobs),
                "by_state": by_state,
                "inflight": len(self._inflight),
                "executions": self.executions,
                "max_concurrent": self.max_concurrent,
                "executor": self.executor,
                "cache": (self.store.stats()
                          if self.store is not None else None),
            }
        return stats

    # ------------------------------------------------------------------
    def _scheduler_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            try:
                self._run_job(job)
            finally:
                with self._lock:
                    if self._inflight.get(job.key) is job:
                        del self._inflight[job.key]
                self._queue.task_done()

    def _run_job(self, job: Job) -> None:
        with self._lock:
            if job.state != JobState.PENDING or job.cancel_requested:
                if job.state == JobState.PENDING:
                    job._set_state(JobState.CANCELLED)
                return
            observer = JobObserver(job, self.progress_every)
            job._observer = observer
            self.executions += 1
        job._set_state(JobState.RUNNING)
        callbacks: List[SearchObserver] = [observer]
        if self.coordinator is not None:
            callbacks.append(self.coordinator.lease())
        try:
            result = SearchSession(job.spec).run(callbacks=callbacks)
        except Exception as error:  # noqa: BLE001 - job boundary
            job.error = f"{type(error).__name__}: {error}"
            job._set_state(JobState.FAILED, error=job.error)
            return
        job.result = result
        if job.cancel_requested:
            job._set_state(JobState.CANCELLED)
            return
        # Only complete, budget-exhausted runs are cacheable: a result
        # truncated by an observer stop is not the spec's fixed point.
        if self.store is not None and not result.stopped_early:
            self.store.put(job.spec, result)
        job._set_state(JobState.DONE)

    # ------------------------------------------------------------------
    def close(self, wait: bool = True,
              timeout: Optional[float] = None) -> bool:
        """Stop accepting work, stop the scheduler, release the pool.

        Pending *and running* jobs are cancel-requested: running
        sessions get the observer protocol's graceful stop, so they
        wind down at the next step boundary keeping their best-so-far
        result (and land ``CANCELLED``, never cached).  ``wait=True``
        (default) then joins the scheduler threads -- bounded by
        ``timeout`` seconds in total when given, else indefinitely.

        Returns ``True`` when every scheduler thread has stopped (the
        pool is released); ``False`` when the bounded wait expired with
        a session still wedged -- e.g. a hung worker under
        ``task_timeout_s=0``.  In that case the pool is left up (a
        shutdown under a running batch would corrupt the wedged
        session's evaluation); ``close`` is idempotent, so call it
        again -- or let process exit reap the daemon threads.
        """
        running = []
        with self._lock:
            first = not self._closed
            self._closed = True
            for job in self._jobs.values():
                if job.state == JobState.PENDING:
                    job._cancel_requested = True
                elif job.state == JobState.RUNNING:
                    # The fixed bug: a wedged RUNNING job was never
                    # stop-requested, so close(wait=True) joined its
                    # scheduler thread forever.
                    job._cancel_requested = True
                    if job._observer is not None:
                        running.append(job._observer)
        # Stop requests fan out to session machinery; never under the
        # scheduler lock (same discipline as cancel()).
        for observer in running:
            observer.request_stop()
        if first:
            for _ in self._threads:
                self._queue.put(None)
        clean = True
        if wait:
            deadline = (None if timeout is None
                        else time.monotonic() + timeout)
            for thread in self._threads:
                remaining = None
                if deadline is not None:
                    remaining = max(0.0, deadline - time.monotonic())
                thread.join(remaining)
                if thread.is_alive():
                    clean = False
        if self.coordinator is not None and (clean or not wait):
            self.coordinator.close()
        return clean

    def __enter__(self) -> "SearchServer":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
