"""Search-as-a-service: session server, scheduler, result cache.

The library's one-shot :class:`~repro.search.session.SearchSession` gets
a long-lived front end here, in four layers:

* :mod:`repro.service.store` -- a content-addressed on-disk
  :class:`ResultStore`: results are keyed by the SHA-256 of the spec's
  canonical identity (execution-only knobs excluded -- every backend is
  bit-identical, so one result serves all), written atomically, fronted
  by an in-process LRU.  ``$REPRO_CACHE_DIR`` picks the root.
* :mod:`repro.service.server` -- :class:`SearchServer`, the async job
  scheduler: cache-first submission, single-flight dedup of identical
  in-flight specs, ``max_concurrent`` sessions multiplexed over one
  shared ``keep_alive`` worker pool, graceful cancellation, per-job
  event streams.
* :mod:`repro.service.transport` / :mod:`repro.service.client` -- an
  optional line-delimited-JSON TCP protocol plus the matching
  :class:`ServiceClient`, so a second process (or the ``repro serve`` /
  ``submit`` / ``jobs`` / ``cache`` CLI) can drive the server.

The cache contract: submitting an identical spec twice executes one
session; the second response is the stored document, bit-identical to
the first modulo nothing (the wall-clock provenance *is* the original
run's).  ``force=True`` re-executes and overwrites.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.server import Job, JobObserver, JobState, SearchServer
from repro.service.store import (
    ResultStore,
    canonical_identity,
    default_cache_dir,
    result_key,
)
from repro.service.transport import (
    DEFAULT_PORT,
    ServiceTCPServer,
    probe,
    start_transport,
)

__all__ = [
    "DEFAULT_PORT",
    "Job",
    "JobObserver",
    "JobState",
    "ResultStore",
    "SearchServer",
    "ServiceClient",
    "ServiceError",
    "ServiceTCPServer",
    "canonical_identity",
    "default_cache_dir",
    "probe",
    "result_key",
    "start_transport",
]
