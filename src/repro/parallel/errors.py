"""Structured error taxonomy for the parallel execution stack.

Every *infrastructure* failure the execution backends can recover from
-- a worker process dying mid-batch, a batch blowing its deadline, an
injected chaos fault -- derives from :class:`ExecutionError`, so callers
(most importantly the degradation ladder in
:class:`~repro.parallel.backend.ResilientBackend`) can catch the whole
family with one ``except`` and know the failed batch is *retryable*: the
batched kernel is pure, so re-running the same shards on a different
backend produces bit-identical results.

Genuine *kernel* errors (a bug, invalid inputs that slipped past
validation) deliberately stay plain ``RuntimeError``: they are
deterministic, would fail identically on any backend, and must surface
to the caller instead of burning the retry budget.

``ExecutionError`` subclasses ``RuntimeError`` so pre-existing callers
catching ``RuntimeError`` around backend calls keep working unchanged.
"""

from __future__ import annotations

__all__ = [
    "ExecutionError",
    "FaultInjected",
    "TaskTimeoutError",
    "WorkerCrashError",
]


class ExecutionError(RuntimeError):
    """A retryable infrastructure failure in a parallel backend.

    Raised only after the backend's own recovery (respawn + re-dispatch,
    bounded by the retry budget) has been exhausted; catching it and
    re-running the batch elsewhere is always safe because the batched
    kernel is pure and shard-invariant.
    """


class WorkerCrashError(ExecutionError):
    """A worker process died mid-batch and the retry budget ran out.

    Attributes:
        worker_names: Names of the worker processes that died during the
            final attempt (useful for post-mortems; respawned
            incarnations carry a ``-rN`` suffix).
    """

    def __init__(self, message: str, worker_names=()):
        super().__init__(message)
        self.worker_names = tuple(worker_names)


class TaskTimeoutError(ExecutionError):
    """A batch missed its deadline on every attempt.

    Attributes:
        timeout_s: The per-attempt deadline that was exceeded.
    """

    def __init__(self, message: str, timeout_s: float = 0.0):
        super().__init__(message)
        self.timeout_s = timeout_s


class FaultInjected(ExecutionError):
    """An error deliberately injected by a :class:`~repro.parallel
    .faults.FaultPlan` (the ``raise_in_kernel`` fault kind).

    Inside a worker it is forwarded with the dedicated ``"fault"``
    status so the coordinator retries it (exercising the recovery path)
    instead of treating it as a deterministic kernel bug; workers fire
    each entry exactly once, so the retry always succeeds.
    """
